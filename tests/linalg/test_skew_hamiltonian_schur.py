"""Tests for the PVL reduction and the SHH-pencil-to-Hamiltonian conversion."""

import numpy as np
import pytest
import scipy.linalg

from repro.exceptions import ReductionError, StructureError
from repro.linalg.hamiltonian import (
    is_hamiltonian,
    random_hamiltonian,
    random_skew_hamiltonian,
)
from repro.linalg.skew_hamiltonian_schur import (
    pvl_decomposition,
    shh_pencil_to_hamiltonian,
)
from repro.linalg.symplectic import is_orthogonal_symplectic


class TestPvlDecomposition:
    @pytest.mark.parametrize("half", [1, 2, 3, 5, 8, 12])
    def test_reduction_properties(self, half, rng):
        w = random_skew_hamiltonian(half, rng)
        u, t = pvl_decomposition(w)
        assert is_orthogonal_symplectic(u)
        # U^T W U equals the returned form.
        np.testing.assert_allclose(u.T @ w @ u, t, atol=1e-10 * max(1, np.abs(w).max()))
        # Lower-left block annihilated, (2,2) block equals (1,1)^T.
        np.testing.assert_allclose(t[half:, :half], 0.0, atol=1e-10)
        np.testing.assert_allclose(t[half:, half:], t[:half, :half].T, atol=1e-9)

    def test_upper_left_block_is_hessenberg(self, rng):
        half = 6
        w = random_skew_hamiltonian(half, rng)
        _, t = pvl_decomposition(w)
        below = np.tril(t[:half, :half], k=-2)
        np.testing.assert_allclose(below, 0.0, atol=1e-10)

    def test_spectrum_preserved(self, rng):
        w = random_skew_hamiltonian(4, rng)
        _, t = pvl_decomposition(w)
        np.testing.assert_allclose(
            np.sort(np.linalg.eigvals(w).real),
            np.sort(np.linalg.eigvals(t).real),
            atol=1e-8,
        )

    def test_rejects_unstructured_matrix(self, rng):
        with pytest.raises(StructureError):
            pvl_decomposition(rng.standard_normal((6, 6)))

    def test_already_triangular_input(self):
        w = np.block([[np.triu(np.ones((3, 3))), np.zeros((3, 3))],
                      [np.zeros((3, 3)), np.triu(np.ones((3, 3))).T]])
        u, t = pvl_decomposition(w)
        assert is_orthogonal_symplectic(u)
        np.testing.assert_allclose(t[3:, :3], 0.0, atol=1e-12)


class TestShhPencilToHamiltonian:
    @pytest.mark.parametrize("half", [1, 2, 4, 6])
    def test_conversion_properties(self, half, rng):
        w = random_skew_hamiltonian(half, rng) + 3.0 * np.eye(2 * half)
        h = random_hamiltonian(half, rng)
        result = shh_pencil_to_hamiltonian(w, h)
        np.testing.assert_allclose(
            result.left @ w @ result.right, np.eye(2 * half), atol=1e-8
        )
        assert is_hamiltonian(result.hamiltonian)
        assert result.residual < 1e-10

    def test_pencil_eigenvalues_preserved(self, rng):
        half = 4
        w = random_skew_hamiltonian(half, rng) + 4.0 * np.eye(2 * half)
        h = random_hamiltonian(half, rng)
        result = shh_pencil_to_hamiltonian(w, h)
        pencil_eigs = scipy.linalg.eig(h, w, right=False)
        standard_eigs = np.linalg.eigvals(result.hamiltonian)
        np.testing.assert_allclose(
            np.sort(pencil_eigs.real), np.sort(standard_eigs.real), atol=1e-7
        )
        np.testing.assert_allclose(
            np.sort(pencil_eigs.imag), np.sort(standard_eigs.imag), atol=1e-7
        )

    def test_transfer_function_preserved(self, rng):
        """The conversion is a strong equivalence: C (sW - H)^{-1} B is preserved."""
        half = 3
        w = random_skew_hamiltonian(half, rng) + 3.0 * np.eye(2 * half)
        h = random_hamiltonian(half, rng)
        b = rng.standard_normal((2 * half, 2))
        c = rng.standard_normal((2, 2 * half))
        result = shh_pencil_to_hamiltonian(w, h)
        s0 = 0.9 + 1.1j
        original = c @ np.linalg.solve(s0 * w - h, b.astype(complex))
        b_new = result.left @ b
        c_new = c @ result.right
        converted = c_new @ np.linalg.solve(
            s0 * np.eye(2 * half) - result.hamiltonian, b_new.astype(complex)
        )
        np.testing.assert_allclose(converted, original, atol=1e-8)

    def test_singular_w_rejected(self, rng):
        half = 3
        w = random_skew_hamiltonian(half, rng)
        # Make W singular by zeroing a row/column pair symmetrically.
        w[:, 0] = 0.0
        w[0, :] = 0.0
        w[half, :] = 0.0
        w[:, half] = 0.0
        h = random_hamiltonian(half, rng)
        with pytest.raises(ReductionError):
            shh_pencil_to_hamiltonian(w, h, check_structure=False)

    def test_structure_check_rejects_bad_pencil(self, rng):
        with pytest.raises(StructureError):
            shh_pencil_to_hamiltonian(
                rng.standard_normal((6, 6)), random_hamiltonian(3, rng)
            )
