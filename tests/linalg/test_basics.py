"""Tests for repro.linalg.basics."""

import numpy as np
import pytest

from repro.config import DEFAULT_TOLERANCES
from repro.exceptions import DimensionError
from repro.linalg.basics import (
    as_2d_array,
    as_square_array,
    is_hermitian,
    is_negative_semidefinite,
    is_positive_definite,
    is_positive_semidefinite,
    is_skew_symmetric,
    is_symmetric,
    matrix_scale,
    relative_error,
    skew_part,
    symmetric_part,
)


class TestShapeValidation:
    def test_as_2d_array_accepts_matrix(self):
        arr = as_2d_array([[1, 2], [3, 4]])
        assert arr.shape == (2, 2)

    def test_as_2d_array_rejects_vector(self):
        with pytest.raises(DimensionError):
            as_2d_array(np.ones(3))

    def test_as_square_array_rejects_rectangular(self):
        with pytest.raises(DimensionError):
            as_square_array(np.ones((2, 3)))

    def test_integer_input_is_promoted_to_float(self):
        arr = as_2d_array(np.array([[1, 2], [3, 4]], dtype=int))
        assert np.issubdtype(arr.dtype, np.number)


class TestSymmetryPredicates:
    def test_symmetric_matrix_detected(self):
        m = np.array([[1.0, 2.0], [2.0, 3.0]])
        assert is_symmetric(m)
        assert not is_skew_symmetric(m)

    def test_skew_symmetric_matrix_detected(self):
        m = np.array([[0.0, 5.0], [-5.0, 0.0]])
        assert is_skew_symmetric(m)
        assert not is_symmetric(m)

    def test_tolerance_scales_with_magnitude(self):
        m = 1e8 * np.array([[1.0, 2.0], [2.0, 3.0]])
        m[0, 1] += 1e-4  # tiny relative perturbation
        assert is_symmetric(m)

    def test_hermitian_complex_matrix(self):
        m = np.array([[2.0, 1 + 1j], [1 - 1j, 3.0]])
        assert is_hermitian(m)
        assert not is_hermitian(1j * m + m)

    def test_zero_matrix_is_both_symmetric_and_skew(self):
        z = np.zeros((3, 3))
        assert is_symmetric(z)
        assert is_skew_symmetric(z)


class TestDefiniteness:
    def test_identity_is_positive_definite(self):
        assert is_positive_definite(np.eye(4))
        assert is_positive_semidefinite(np.eye(4))

    def test_rank_deficient_gram_matrix_is_psd_not_pd(self):
        v = np.array([[1.0], [2.0]])
        gram = v @ v.T
        assert is_positive_semidefinite(gram)
        assert not is_positive_definite(gram)

    def test_indefinite_matrix_rejected(self):
        m = np.diag([1.0, -1.0])
        assert not is_positive_semidefinite(m)
        assert not is_negative_semidefinite(m)

    def test_negative_semidefinite(self):
        assert is_negative_semidefinite(-np.eye(3))

    def test_nonsymmetric_input_uses_hermitian_part(self):
        # [[1, 10], [-10, 1]] has Hermitian part I which is PD.
        m = np.array([[1.0, 10.0], [-10.0, 1.0]])
        assert is_positive_definite(m)

    def test_empty_matrix_is_psd(self):
        assert is_positive_semidefinite(np.zeros((0, 0)))


class TestParts:
    def test_symmetric_plus_skew_reconstructs(self, rng):
        m = rng.standard_normal((5, 5))
        np.testing.assert_allclose(symmetric_part(m) + skew_part(m), m)

    def test_parts_have_expected_structure(self, rng):
        m = rng.standard_normal((4, 4))
        assert is_symmetric(symmetric_part(m))
        assert is_skew_symmetric(skew_part(m))


class TestScaleHelpers:
    def test_matrix_scale_floor_is_one(self):
        assert matrix_scale(np.zeros((2, 2))) == 1.0
        assert matrix_scale(1e-3 * np.ones((2, 2))) == 1.0

    def test_matrix_scale_tracks_largest_entry(self):
        assert matrix_scale(np.array([[2.0, -7.0]])) == 7.0

    def test_relative_error_zero_for_equal(self):
        m = np.array([[1.0, 2.0]])
        assert relative_error(m, m) == 0.0

    def test_relative_error_normalizes(self):
        assert relative_error(np.array([[2.0]]), np.array([[1.0]])) == pytest.approx(1.0)
