"""Tests for repro.linalg.pencil."""

import numpy as np
import pytest

from repro.exceptions import SingularPencilError
from repro.linalg.pencil import (
    classify_generalized_eigenvalues,
    generalized_eigenvalues,
    is_regular_pencil,
    ordered_qz_finite_first,
    pencil_degree,
)


def _weierstrass_pencil():
    """Pencil with finite eigenvalues {-1, -2} and a 2x2 nilpotent block."""
    e = np.zeros((4, 4))
    e[0, 0] = 1.0
    e[1, 1] = 1.0
    e[2, 3] = 1.0
    a = np.diag([-1.0, -2.0, 1.0, 1.0])
    return e, a


class TestRegularity:
    def test_regular_pencil_detected(self):
        e, a = _weierstrass_pencil()
        assert is_regular_pencil(e, a)

    def test_identity_pencil_is_regular(self):
        assert is_regular_pencil(np.eye(3), np.diag([1.0, 2.0, 3.0]))

    def test_singular_pencil_detected(self):
        # Common null vector of E and A => det(sE - A) == 0 identically.
        e = np.diag([1.0, 0.0])
        a = np.diag([2.0, 0.0])
        assert not is_regular_pencil(e, a)

    def test_empty_pencil_is_regular(self):
        assert is_regular_pencil(np.zeros((0, 0)), np.zeros((0, 0)))


class TestSpectralClassification:
    def test_finite_and_infinite_counts(self):
        e, a = _weierstrass_pencil()
        spectrum = classify_generalized_eigenvalues(e, a)
        assert spectrum.n_infinite == 2
        np.testing.assert_allclose(np.sort(spectrum.finite.real), [-2.0, -1.0], atol=1e-10)
        assert spectrum.is_stable

    def test_unstable_mode_detected(self):
        e = np.eye(2)
        a = np.diag([-1.0, 2.0])
        spectrum = classify_generalized_eigenvalues(e, a)
        assert spectrum.n_unstable == 1
        assert not spectrum.is_stable

    def test_imaginary_axis_mode_detected(self):
        e = np.eye(2)
        a = np.array([[0.0, 1.0], [-1.0, 0.0]])
        spectrum = classify_generalized_eigenvalues(e, a)
        assert spectrum.n_imaginary == 2
        assert not spectrum.is_stable

    def test_generalized_eigenvalue_pairs_shape(self):
        e, a = _weierstrass_pencil()
        alpha, beta = generalized_eigenvalues(e, a)
        assert alpha.shape == beta.shape == (4,)


class TestDegree:
    def test_degree_counts_finite_modes(self):
        e, a = _weierstrass_pencil()
        assert pencil_degree(e, a) == 2

    def test_degree_of_regular_state_space(self):
        assert pencil_degree(np.eye(3), -np.eye(3)) == 3

    def test_degree_of_singular_pencil_raises(self):
        with pytest.raises(SingularPencilError):
            pencil_degree(np.diag([1.0, 0.0]), np.diag([1.0, 0.0]))


class TestOrderedQz:
    def test_finite_block_leads(self, rng):
        e, a = _weierstrass_pencil()
        # Rotate into a dense representation to make the ordering nontrivial.
        q, _ = np.linalg.qr(rng.standard_normal((4, 4)))
        z, _ = np.linalg.qr(rng.standard_normal((4, 4)))
        e_dense = q @ e @ z
        a_dense = q @ a @ z
        aa, ee, qq, zz, n_finite = ordered_qz_finite_first(e_dense, a_dense)
        assert n_finite == 2
        # Transformation property: A = Q aa Z^T.
        np.testing.assert_allclose(qq @ aa @ zz.T, a_dense, atol=1e-10)
        np.testing.assert_allclose(qq @ ee @ zz.T, e_dense, atol=1e-10)
        # Leading 2x2 of ee is nonsingular (finite part), trailing block of ee
        # carries the infinite eigenvalues (nilpotent after scaling).
        assert np.linalg.matrix_rank(ee[:2, :2]) == 2
        leading_eigs = np.linalg.eigvals(np.linalg.solve(ee[:2, :2], aa[:2, :2]))
        np.testing.assert_allclose(np.sort(leading_eigs.real), [-2.0, -1.0], atol=1e-8)

    def test_empty_input(self):
        aa, ee, q, z, n_finite = ordered_qz_finite_first(np.zeros((0, 0)), np.zeros((0, 0)))
        assert n_finite == 0
        assert aa.shape == (0, 0)
