"""Tests for Riccati solvers and invariant-subspace routines."""

import numpy as np
import pytest

from repro.exceptions import ReductionError, StructureError
from repro.linalg.hamiltonian import random_hamiltonian
from repro.linalg.invariant_subspace import (
    hamiltonian_stable_invariant_subspace,
    imaginary_axis_eigenvalues,
    stable_invariant_subspace,
)
from repro.linalg.riccati import (
    positive_real_hamiltonian,
    solve_care,
    solve_positive_real_are,
)


class TestStableInvariantSubspace:
    def test_diagonal_matrix(self):
        a = np.diag([-1.0, 2.0, -3.0, 4.0])
        basis, eigs = stable_invariant_subspace(a)
        assert basis.shape == (4, 2)
        assert set(np.round(eigs.real)) == {-1.0, -3.0}
        # Invariance: A V = V (V^T A V).
        np.testing.assert_allclose(a @ basis, basis @ (basis.T @ a @ basis), atol=1e-10)

    def test_empty_matrix(self):
        basis, eigs = stable_invariant_subspace(np.zeros((0, 0)))
        assert basis.shape == (0, 0)
        assert eigs.size == 0

    def test_imaginary_axis_eigenvalues_detected(self):
        a = np.array([[0.0, 2.0], [-2.0, 0.0]])
        eigs = imaginary_axis_eigenvalues(a)
        assert eigs.size == 2
        np.testing.assert_allclose(np.sort(np.abs(eigs.imag)), [2.0, 2.0])

    def test_no_imaginary_eigenvalues_for_damped_matrix(self):
        a = np.array([[-0.5, 2.0], [-2.0, -0.5]])
        assert imaginary_axis_eigenvalues(a).size == 0


class TestHamiltonianSplitting:
    def test_splitting_of_riccati_hamiltonian(self, rng):
        n = 4
        a = rng.standard_normal((n, n)) - 3 * np.eye(n)
        g = rng.standard_normal((n, n))
        g = g @ g.T
        q = rng.standard_normal((n, n))
        q = q @ q.T
        h = np.block([[a, -g], [-q, -a.T]])
        splitting = hamiltonian_stable_invariant_subspace(h, check_structure=True)
        assert splitting.x1.shape == (n, n)
        assert np.all(splitting.stable_eigenvalues.real < 0)
        basis = splitting.basis
        np.testing.assert_allclose(
            h @ basis, basis @ splitting.stable_block, atol=1e-8
        )
        # Isotropy of the stable subspace: X1^T X2 symmetric.
        sym = splitting.x1.T @ splitting.x2
        np.testing.assert_allclose(sym, sym.T, atol=1e-8)

    def test_imaginary_axis_spectrum_rejected(self):
        # J itself is Hamiltonian with purely imaginary eigenvalues.
        h = np.array([[0.0, 1.0], [-1.0, 0.0]])
        with pytest.raises(ReductionError):
            hamiltonian_stable_invariant_subspace(h)

    def test_structure_check(self, rng):
        with pytest.raises(StructureError):
            hamiltonian_stable_invariant_subspace(np.diag([-1.0, -2.0, 1.0, 2.0]) + rng.standard_normal((4, 4)) * 0.0 + np.triu(np.ones((4, 4)), 1))


class TestCare:
    def test_solution_satisfies_equation(self, rng):
        n, m = 5, 2
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, m))
        q = rng.standard_normal((n, n))
        q = q @ q.T + np.eye(n)
        r = np.eye(m)
        sol = solve_care(a, b, q, r)
        assert sol.residual < 1e-8
        assert np.all(sol.closed_loop_eigenvalues.real < 0)
        assert np.min(np.linalg.eigvalsh(sol.x)) > -1e-8

    def test_scalar_care_analytic(self):
        # a x + x a - x^2 + q = 0 with a=-1, b=1, r=1, q=3: x^2 +2x -3 =0 -> x=1.
        sol = solve_care(np.array([[-1.0]]), np.array([[1.0]]), np.array([[3.0]]), np.eye(1))
        np.testing.assert_allclose(sol.x, [[1.0]], atol=1e-10)

    def test_indefinite_r_rejected(self, rng):
        with pytest.raises(StructureError):
            solve_care(np.eye(2), np.eye(2), np.eye(2), -np.eye(2))


class TestPositiveRealAre:
    def test_passive_symmetric_system_has_psd_solution(self, rng):
        n, m = 5, 2
        a = -np.diag(1.0 + rng.random(n))
        b = rng.standard_normal((n, m))
        c = b.T
        d = np.eye(m)
        sol = solve_positive_real_are(a, b, c, d)
        assert sol.residual < 1e-7
        assert np.min(np.linalg.eigvalsh(sol.x)) > -1e-8

    def test_non_positive_real_system_has_no_stabilizing_solution(self):
        # G(s) = 1 - 3/(s+2): G(0) = -0.5 < 0, not positive real.
        a = np.array([[-2.0]])
        b = np.array([[1.0]])
        c = np.array([[-3.0]])
        d = np.array([[1.0]])
        with pytest.raises(ReductionError):
            solve_positive_real_are(a, b, c, d)

    def test_positive_real_hamiltonian_structure(self, rng):
        n, m = 4, 2
        a = -np.eye(n) + 0.1 * rng.standard_normal((n, n))
        b = rng.standard_normal((n, m))
        c = b.T
        d = np.eye(m)
        h = positive_real_hamiltonian(a, b, c, d)
        from repro.linalg.hamiltonian import is_hamiltonian

        assert is_hamiltonian(h)

    def test_singular_r_rejected(self):
        with pytest.raises(StructureError):
            positive_real_hamiltonian(
                -np.eye(2), np.ones((2, 1)), np.ones((1, 2)), np.zeros((1, 1))
            )
