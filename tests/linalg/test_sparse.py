"""Tests for the sparsity-preserving linear algebra helpers."""

import numpy as np
import pytest
import scipy.sparse

from repro.config import Tolerances
from repro.exceptions import ReductionError
from repro.linalg.sparse import (
    extreme_symmetric_eigenvalue,
    is_sparse_nsd,
    is_sparse_psd,
    is_sparse_symmetric,
    kernel_permutation,
    sparse_nondynamic_deflation,
    sparse_regularity_probe,
    symmetric_spectrum_bounds,
    to_canonical_csr,
    try_sparse_lu,
)


class TestCanonicalCsr:
    def test_dense_and_sparse_inputs_canonicalize_identically(self, rng):
        dense = rng.standard_normal((6, 6))
        dense[np.abs(dense) < 0.8] = 0.0
        a = to_canonical_csr(dense)
        b = to_canonical_csr(scipy.sparse.coo_matrix(dense))
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.data, b.data)

    def test_explicit_zeros_and_duplicates_are_normalized(self):
        rows = [0, 0, 1, 1]
        cols = [0, 0, 1, 1]
        vals = [1.0, 2.0, 0.5, -0.5]
        coo = scipy.sparse.coo_matrix((vals, (rows, cols)), shape=(2, 2))
        canonical = to_canonical_csr(coo)
        # (0,0) duplicates sum to 3, (1,1) duplicates cancel and are dropped.
        assert canonical.nnz == 1
        assert canonical[0, 0] == 3.0


class TestSparseLu:
    def test_solves_match_dense(self, rng):
        matrix = rng.standard_normal((8, 8)) + 8 * np.eye(8)
        lu = try_sparse_lu(scipy.sparse.csc_matrix(matrix))
        rhs = rng.standard_normal((8, 3))
        np.testing.assert_allclose(lu.solve(rhs), np.linalg.solve(matrix, rhs), atol=1e-10)

    def test_singular_matrix_returns_none(self):
        singular = scipy.sparse.csc_matrix(np.array([[1.0, 2.0], [2.0, 4.0]]))
        assert try_sparse_lu(singular) is None

    def test_nearly_singular_matrix_rejected_by_pivot_ratio(self):
        nearly = scipy.sparse.csc_matrix(np.diag([1.0, 1e-14]))
        assert try_sparse_lu(nearly) is None

    def test_empty_matrix_returns_none(self):
        assert try_sparse_lu(scipy.sparse.csc_matrix((0, 0))) is None


class TestRegularityProbe:
    def test_regular_pencil_detected(self):
        e = scipy.sparse.diags([1.0, 0.0])
        a = scipy.sparse.diags([-1.0, -1.0])
        assert sparse_regularity_probe(e, a)

    def test_singular_pencil_detected(self):
        # E and A share a common null vector -> det(sE - A) == 0 identically.
        e = scipy.sparse.csc_matrix(np.diag([1.0, 0.0]))
        a = scipy.sparse.csc_matrix(np.diag([-1.0, 0.0]))
        assert not sparse_regularity_probe(e, a)

    def test_matches_dense_classifier_on_random_pencils(self, rng):
        from repro.linalg.pencil import is_regular_pencil

        for trial in range(5):
            e = rng.standard_normal((7, 7))
            e[:, -2:] = 0.0
            a = rng.standard_normal((7, 7))
            expected = is_regular_pencil(e, a)
            assert sparse_regularity_probe(e, a) == expected


class TestSpectralProbes:
    def test_gershgorin_bounds_contain_spectrum(self, rng):
        matrix = rng.standard_normal((10, 10))
        matrix = 0.5 * (matrix + matrix.T)
        lo, hi = symmetric_spectrum_bounds(matrix)
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert lo <= eigenvalues[0] + 1e-12
        assert hi >= eigenvalues[-1] - 1e-12

    def test_extreme_eigenvalues_match_dense(self, rng):
        matrix = rng.standard_normal((30, 30))
        matrix = 0.5 * (matrix + matrix.T)
        eigenvalues = np.linalg.eigvalsh(matrix)
        assert extreme_symmetric_eigenvalue(matrix, "largest") == pytest.approx(
            eigenvalues[-1], abs=1e-8
        )
        assert extreme_symmetric_eigenvalue(matrix, "smallest") == pytest.approx(
            eigenvalues[0], abs=1e-8
        )

    def test_definiteness_of_circuit_style_laplacian(self):
        # Diagonally dominant conductance Laplacian: Gershgorin certifies both
        # G >= 0 and -(G + small shunt) <= 0 without any eigensolve.
        laplacian = np.array(
            [[2.1, -1.0, -1.0], [-1.0, 2.2, -1.0], [-1.0, -1.0, 2.3]]
        )
        assert is_sparse_psd(scipy.sparse.csr_matrix(laplacian))
        assert is_sparse_nsd(scipy.sparse.csr_matrix(-laplacian))
        assert not is_sparse_nsd(scipy.sparse.csr_matrix(laplacian))

    def test_indefinite_matrix_rejected_by_both(self):
        indefinite = scipy.sparse.diags([1.0, -1.0])
        assert not is_sparse_psd(indefinite)
        assert not is_sparse_nsd(indefinite)

    def test_symmetry_predicate(self):
        symmetric = scipy.sparse.csr_matrix(np.array([[1.0, 2.0], [2.0, 3.0]]))
        askew = scipy.sparse.csr_matrix(np.array([[1.0, 2.0], [-2.0, 3.0]]))
        assert is_sparse_symmetric(symmetric)
        assert not is_sparse_symmetric(askew)


class TestKernelPermutation:
    def test_structural_split(self):
        e = scipy.sparse.csr_matrix(np.diag([1.0, 0.0, 2.0, 0.0]))
        dynamic, kernel = kernel_permutation(e)
        assert dynamic.tolist() == [0, 2]
        assert kernel.tolist() == [1, 3]

    def test_tiny_entries_are_dropped(self):
        e = np.diag([1.0, 1e-16])
        dynamic, kernel = kernel_permutation(e, Tolerances())
        assert kernel.tolist() == [1]


class TestSparseDeflation:
    def test_matches_dense_admissible_reduction(self):
        from repro.circuits import rc_line
        from repro.passivity import admissible_to_state_space

        system = rc_line(6).system
        deflation = sparse_nondynamic_deflation(
            system.sparse_e, system.sparse_a, system.b, system.c, system.d
        )
        dense = admissible_to_state_space(system)
        assert deflation.n_eliminated == system.order - dense.order
        # Same transfer function (the state coordinates differ).
        from repro.descriptor import StateSpace

        reduced = StateSpace(deflation.a, deflation.b, deflation.c, deflation.d)
        for s in (1j * 0.1, 1j * 1.7, 2.0 + 0.5j):
            np.testing.assert_allclose(
                reduced.evaluate(s), system.evaluate(s), atol=1e-9
            )

    def test_nonsingular_e_passes_through(self):
        from repro.descriptor import StateSpace

        a = np.array([[-2.0, 1.0], [0.0, -1.0]])
        b = np.array([[1.0], [1.0]])
        deflation = sparse_nondynamic_deflation(
            np.eye(2), a, b, b.T, np.zeros((1, 1))
        )
        assert deflation.n_eliminated == 0
        np.testing.assert_allclose(deflation.a, a, atol=1e-12)

    def test_impulsive_structure_raises(self):
        # Coordinate kernel states (zero E rows/columns) whose A22 block is
        # singular: the index-2 situation the sparse deflation must refuse.
        e = np.diag([1.0, 0.0, 0.0])
        a = np.array([[-1.0, 0.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 0.0]])
        b = np.array([[1.0], [0.0], [1.0]])
        with pytest.raises(ReductionError, match="impulsive"):
            sparse_nondynamic_deflation(e, a, b, b.T, np.zeros((1, 1)))

    def test_non_coordinate_kernel_raises(self):
        # E is singular but with no zero row/column: the permutation split
        # leaves a singular E11 behind and must refuse.
        e = np.array([[1.0, 1.0], [1.0, 1.0]])
        a = -np.eye(2)
        b = np.ones((2, 1))
        with pytest.raises(ReductionError, match="E11"):
            sparse_nondynamic_deflation(e, a, b, b.T, np.zeros((1, 1)))
