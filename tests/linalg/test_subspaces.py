"""Tests for repro.linalg.subspaces."""

import numpy as np
import pytest

from repro.exceptions import DimensionError
from repro.linalg.subspaces import (
    column_space,
    contains_subspace,
    left_null_space,
    null_space,
    numerical_rank,
    orth_complement,
    orth_complement_within,
    principal_angles,
    project_onto,
    subspace_intersection,
    subspace_sum,
    subspaces_equal,
)


def _is_orthonormal(basis):
    if basis.shape[1] == 0:
        return True
    return np.allclose(basis.T @ basis, np.eye(basis.shape[1]), atol=1e-12)


class TestRankAndBases:
    def test_numerical_rank_of_low_rank_product(self, rng):
        a = rng.standard_normal((8, 3))
        b = rng.standard_normal((3, 8))
        assert numerical_rank(a @ b) == 3

    def test_numerical_rank_with_reference_scale_ignores_noise(self, rng):
        noise = 1e-14 * rng.standard_normal((5, 5))
        assert numerical_rank(noise, reference_scale=1.0) == 0
        # Without a reference the noise looks full rank (documented behaviour).
        assert numerical_rank(noise) == 5

    def test_column_space_is_orthonormal_and_spans(self, rng):
        a = rng.standard_normal((6, 2))
        basis = column_space(np.hstack([a, a @ np.array([[1.0], [2.0]])]))
        assert basis.shape == (6, 2)
        assert _is_orthonormal(basis)

    def test_null_space_annihilates(self, rng):
        a = rng.standard_normal((3, 6))
        kernel = null_space(a)
        assert kernel.shape == (6, 3)
        assert np.allclose(a @ kernel, 0.0, atol=1e-12)

    def test_left_null_space_annihilates_from_left(self, rng):
        a = rng.standard_normal((6, 3))
        left = left_null_space(a)
        assert left.shape == (6, 3)
        assert np.allclose(left.T @ a, 0.0, atol=1e-12)

    def test_null_space_of_full_rank_matrix_is_empty(self, rng):
        a = rng.standard_normal((4, 4)) + 4 * np.eye(4)
        assert null_space(a).shape == (4, 0)

    def test_zero_matrix_kernel_is_everything(self):
        assert null_space(np.zeros((3, 5))).shape == (5, 5)


class TestSetOperations:
    def test_sum_of_orthogonal_lines_is_plane(self):
        e1 = np.array([[1.0], [0.0], [0.0]])
        e2 = np.array([[0.0], [1.0], [0.0]])
        total = subspace_sum(e1, e2)
        assert total.shape[1] == 2

    def test_sum_with_dependent_vectors_does_not_overcount(self):
        e1 = np.array([[1.0], [0.0]])
        assert subspace_sum(e1, 2 * e1).shape[1] == 1

    def test_intersection_of_planes_in_r3_is_line(self):
        plane_a = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
        plane_b = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        meet = subspace_intersection(plane_a, plane_b)
        assert meet.shape[1] == 1
        # The intersection is the y-axis.
        assert abs(abs(meet[1, 0]) - 1.0) < 1e-10

    def test_intersection_with_trivial_subspace_is_trivial(self):
        plane = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 0.0]])
        assert subspace_intersection(plane, np.zeros((3, 0))).shape[1] == 0

    def test_intersection_requires_same_ambient_dimension(self):
        with pytest.raises(DimensionError):
            subspace_intersection(np.eye(3), np.eye(4))

    def test_orth_complement_dimensions(self, rng):
        basis = column_space(rng.standard_normal((7, 3)))
        comp = orth_complement(basis)
        assert comp.shape == (7, 4)
        assert np.allclose(comp.T @ basis, 0.0, atol=1e-12)

    def test_orth_complement_of_empty_basis_is_identity(self):
        comp = orth_complement(np.zeros((4, 0)), ambient_dim=4)
        assert comp.shape == (4, 4)

    def test_orth_complement_within(self):
        full = np.eye(3)[:, :2]  # span{e1, e2}
        sub = np.array([[1.0], [0.0], [0.0]])
        rest = orth_complement_within(sub, full)
        assert rest.shape[1] == 1
        assert abs(abs(rest[1, 0]) - 1.0) < 1e-10

    def test_projection_is_idempotent(self, rng):
        basis = column_space(rng.standard_normal((6, 2)))
        vectors = rng.standard_normal((6, 3))
        proj = project_onto(basis, vectors)
        np.testing.assert_allclose(project_onto(basis, proj), proj, atol=1e-12)


class TestComparisons:
    def test_contains_and_equality(self, rng):
        basis = column_space(rng.standard_normal((5, 3)))
        sub = basis[:, :2]
        assert contains_subspace(basis, sub)
        assert not contains_subspace(sub, basis)
        rotated = basis @ np.linalg.qr(rng.standard_normal((3, 3)))[0]
        assert subspaces_equal(basis, rotated)

    def test_principal_angles_orthogonal_subspaces(self):
        a = np.array([[1.0], [0.0], [0.0]])
        b = np.array([[0.0], [1.0], [0.0]])
        angles = principal_angles(a, b)
        np.testing.assert_allclose(angles, [np.pi / 2], atol=1e-12)

    def test_principal_angles_identical_subspaces(self, rng):
        basis = column_space(rng.standard_normal((5, 2)))
        np.testing.assert_allclose(principal_angles(basis, basis), 0.0, atol=1e-7)
