"""Tests for the Lyapunov / Sylvester / coupled generalized Sylvester solvers."""

import numpy as np
import pytest

from repro.exceptions import DimensionError, ReductionError
from repro.linalg.lyapunov import solve_continuous_lyapunov, solve_sylvester
from repro.linalg.sylvester import (
    block_diagonalize_pencil,
    solve_generalized_coupled_sylvester,
)


def _stable(rng, n):
    m = rng.standard_normal((n, n))
    return m - (np.abs(np.linalg.eigvals(m).real).max() + 0.5) * np.eye(n)


class TestSylvester:
    def test_residual_small(self, rng):
        a = _stable(rng, 6)
        b = rng.standard_normal((4, 4)) + 3 * np.eye(4)
        c = rng.standard_normal((6, 4))
        x = solve_sylvester(a, b, c)
        np.testing.assert_allclose(a @ x + x @ b, c, atol=1e-9)

    def test_known_diagonal_solution(self):
        a = np.diag([1.0, 2.0])
        b = np.diag([3.0, 4.0])
        c = np.array([[4.0, 5.0], [5.0, 6.0]])
        x = solve_sylvester(a, b, c)
        expected = c / (np.array([[1.0], [2.0]]) + np.array([[3.0, 4.0]]))
        np.testing.assert_allclose(x, expected, atol=1e-12)

    def test_real_inputs_give_real_solution(self, rng):
        x = solve_sylvester(_stable(rng, 5), _stable(rng, 3).T + 6 * np.eye(3),
                            rng.standard_normal((5, 3)))
        assert np.isrealobj(x)

    def test_singular_equation_rejected(self):
        a = np.diag([1.0, 2.0])
        b = np.diag([-1.0, -5.0])  # shares eigenvalue with -A
        with pytest.raises(ReductionError):
            solve_sylvester(a, b, np.ones((2, 2)))

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(DimensionError):
            solve_sylvester(np.eye(3), np.eye(2), np.ones((2, 3)))


class TestLyapunov:
    def test_residual_small(self, rng):
        a = _stable(rng, 7)
        q = rng.standard_normal((7, 7))
        q = q + q.T
        y = solve_continuous_lyapunov(a, q)
        np.testing.assert_allclose(a @ y + y @ a.T + q, 0.0, atol=1e-9)

    def test_symmetric_rhs_gives_symmetric_solution(self, rng):
        a = _stable(rng, 5)
        q = rng.standard_normal((5, 5))
        q = q @ q.T
        y = solve_continuous_lyapunov(a, q)
        np.testing.assert_allclose(y, y.T, atol=1e-9)

    def test_gramian_of_stable_system_is_psd(self, rng):
        a = _stable(rng, 5)
        b = rng.standard_normal((5, 2))
        gram = solve_continuous_lyapunov(a, b @ b.T)
        assert np.min(np.linalg.eigvalsh(0.5 * (gram + gram.T))) >= -1e-10

    def test_dimension_check(self):
        with pytest.raises(DimensionError):
            solve_continuous_lyapunov(np.eye(3), np.eye(2))


class TestCoupledGeneralizedSylvester:
    def test_residuals(self, rng):
        n1, n2 = 6, 3
        a11 = rng.standard_normal((n1, n1))
        a22 = rng.standard_normal((n2, n2)) + 6 * np.eye(n2)
        b11 = rng.standard_normal((n1, n1))
        b22 = rng.standard_normal((n2, n2))
        a12 = rng.standard_normal((n1, n2))
        b12 = rng.standard_normal((n1, n2))
        r, l = solve_generalized_coupled_sylvester(a11, a22, a12, b11, b22, b12)
        np.testing.assert_allclose(a11 @ r - l @ a22, -a12, atol=1e-8)
        np.testing.assert_allclose(b11 @ r - l @ b22, -b12, atol=1e-8)

    def test_empty_blocks(self):
        r, l = solve_generalized_coupled_sylvester(
            np.zeros((0, 0)), np.eye(2), np.zeros((0, 2)),
            np.zeros((0, 0)), np.eye(2), np.zeros((0, 2)),
        )
        assert r.shape == (0, 2)
        assert l.shape == (0, 2)

    def test_block_diagonalize_pencil(self, rng):
        # Build an upper block-triangular pencil with disjoint spectra:
        # leading block has finite eigenvalues, trailing block infinite ones.
        a = np.triu(rng.standard_normal((6, 6))) + 4 * np.eye(6)
        e = np.triu(rng.standard_normal((6, 6)))
        e[:3, :3] += 5 * np.eye(3)
        e[3:, 3:] = np.triu(rng.standard_normal((3, 3)), k=1)  # nilpotent block
        left, right = block_diagonalize_pencil(a, e, split=3)
        a_new = left @ a @ right
        e_new = left @ e @ right
        np.testing.assert_allclose(a_new[:3, 3:], 0.0, atol=1e-8)
        np.testing.assert_allclose(e_new[:3, 3:], 0.0, atol=1e-8)
        # The transformations are unit upper triangular (perfectly conditioned
        # to apply) and leave the diagonal blocks untouched.
        np.testing.assert_allclose(a_new[:3, :3], a[:3, :3], atol=1e-10)
        np.testing.assert_allclose(e_new[3:, 3:], e[3:, 3:], atol=1e-10)
