"""Tests for repro.linalg.hamiltonian."""

import numpy as np
import pytest

from repro.exceptions import DimensionError, StructureError
from repro.linalg.hamiltonian import (
    eigenvalue_pairing_defect,
    hamiltonian_blocks,
    hamiltonian_part,
    is_hamiltonian,
    is_shh_pencil,
    is_skew_hamiltonian,
    make_hamiltonian,
    make_skew_hamiltonian,
    random_hamiltonian,
    random_skew_hamiltonian,
    skew_hamiltonian_blocks,
    skew_hamiltonian_part,
    symplectic_identity,
)


class TestSymplecticIdentity:
    def test_structure(self):
        j = symplectic_identity(2)
        expected = np.array(
            [
                [0, 0, 1, 0],
                [0, 0, 0, 1],
                [-1, 0, 0, 0],
                [0, -1, 0, 0],
            ],
            dtype=float,
        )
        np.testing.assert_allclose(j, expected)

    def test_j_squared_is_minus_identity(self):
        j = symplectic_identity(3)
        np.testing.assert_allclose(j @ j, -np.eye(6))

    def test_negative_dimension_rejected(self):
        with pytest.raises(DimensionError):
            symplectic_identity(-1)


class TestStructurePredicates:
    def test_random_hamiltonian_satisfies_definition(self, rng):
        h = random_hamiltonian(4, rng)
        j = symplectic_identity(4)
        np.testing.assert_allclose(j @ h, (j @ h).T, atol=1e-12)
        assert is_hamiltonian(h)
        assert not is_skew_hamiltonian(h + np.eye(8))

    def test_random_skew_hamiltonian_satisfies_definition(self, rng):
        w = random_skew_hamiltonian(4, rng)
        j = symplectic_identity(4)
        np.testing.assert_allclose(j @ w, -(j @ w).T, atol=1e-12)
        assert is_skew_hamiltonian(w)

    def test_identity_is_skew_hamiltonian_not_hamiltonian(self):
        assert is_skew_hamiltonian(np.eye(6))
        assert not is_hamiltonian(np.eye(6))

    def test_odd_dimension_is_never_structured(self):
        assert not is_hamiltonian(np.eye(3))
        assert not is_skew_hamiltonian(np.eye(3))

    def test_shh_pencil_predicate(self, rng):
        w = random_skew_hamiltonian(3, rng)
        h = random_hamiltonian(3, rng)
        assert is_shh_pencil(w, h)
        assert not is_shh_pencil(h, w)


class TestBlockAccessors:
    def test_round_trip_hamiltonian(self, rng):
        a = rng.standard_normal((3, 3))
        r = rng.standard_normal((3, 3))
        r = r + r.T
        q = rng.standard_normal((3, 3))
        q = q + q.T
        h = make_hamiltonian(a, r, q)
        a2, r2, q2 = hamiltonian_blocks(h)
        np.testing.assert_allclose(a2, a)
        np.testing.assert_allclose(r2, r)
        np.testing.assert_allclose(q2, q)
        np.testing.assert_allclose(h[3:, 3:], -a.T)

    def test_round_trip_skew_hamiltonian(self, rng):
        a = rng.standard_normal((2, 2))
        r = rng.standard_normal((2, 2))
        r = r - r.T
        q = rng.standard_normal((2, 2))
        q = q - q.T
        w = make_skew_hamiltonian(a, r, q)
        a2, r2, q2 = skew_hamiltonian_blocks(w)
        np.testing.assert_allclose(a2, a)
        np.testing.assert_allclose(w[2:, 2:], a.T)

    def test_make_hamiltonian_rejects_nonsymmetric_blocks(self, rng):
        a = rng.standard_normal((3, 3))
        bad = rng.standard_normal((3, 3))
        with pytest.raises(StructureError):
            make_hamiltonian(a, bad, np.eye(3))

    def test_make_skew_hamiltonian_rejects_symmetric_blocks(self, rng):
        a = rng.standard_normal((3, 3))
        with pytest.raises(StructureError):
            make_skew_hamiltonian(a, np.eye(3), np.zeros((3, 3)))

    def test_mismatched_block_shapes_rejected(self):
        with pytest.raises(DimensionError):
            make_hamiltonian(np.eye(2), np.eye(3), np.eye(2))


class TestDecompositionAndSpectrum:
    def test_every_matrix_splits_into_h_plus_w(self, rng):
        m = rng.standard_normal((6, 6))
        h = hamiltonian_part(m)
        w = skew_hamiltonian_part(m)
        np.testing.assert_allclose(h + w, m, atol=1e-12)
        assert is_hamiltonian(h)
        assert is_skew_hamiltonian(w)

    def test_hamiltonian_part_of_hamiltonian_is_itself(self, rng):
        h = random_hamiltonian(3, rng)
        np.testing.assert_allclose(hamiltonian_part(h), h, atol=1e-12)

    def test_hamiltonian_spectrum_is_plus_minus_symmetric(self, rng):
        h = random_hamiltonian(5, rng)
        assert eigenvalue_pairing_defect(h) < 1e-8

    def test_generic_matrix_breaks_pairing(self, rng):
        m = rng.standard_normal((6, 6)) + 3 * np.diag(np.arange(6, dtype=float))
        assert eigenvalue_pairing_defect(m) > 1e-3
