"""Stacked kernels must match a per-slice Python loop bit for bit."""

import numpy as np
import pytest

from repro.linalg.batched import (
    batched_eigvals,
    batched_eigvalsh,
    batched_hermitian_min_eig,
    group_by_shape,
    state_space_hermitian_min_eigs,
)


@pytest.fixture
def rng():
    return np.random.default_rng(20060724)


class TestBatchedEig:
    def test_eigvalsh_matches_loop_bitwise(self, rng):
        stack = rng.standard_normal((7, 12, 12))
        stack = 0.5 * (stack + np.swapaxes(stack, -1, -2))
        batched = batched_eigvalsh(stack)
        for k in range(stack.shape[0]):
            loop = np.linalg.eigvalsh(stack[k])
            assert np.array_equal(batched[k], loop)

    def test_eigvals_matches_loop_bitwise(self, rng):
        stack = rng.standard_normal((5, 9, 9))
        batched = batched_eigvals(stack)
        for k in range(stack.shape[0]):
            assert np.array_equal(batched[k], np.linalg.eigvals(stack[k]))

    def test_empty_stacks(self):
        assert batched_eigvalsh(np.zeros((0, 4, 4))).shape == (0, 4)
        assert batched_eigvals(np.zeros((0, 4, 4))).shape == (0, 4)
        assert batched_hermitian_min_eig(np.zeros((0, 4, 4))).shape == (0,)

    def test_hermitian_min_eig_matches_scalar(self, rng):
        stack = rng.standard_normal((6, 4, 4)) + 1j * rng.standard_normal((6, 4, 4))
        batched = batched_hermitian_min_eig(stack)
        for k in range(stack.shape[0]):
            hermitian = 0.5 * (stack[k] + stack[k].conj().T)
            scalar = float(np.min(np.linalg.eigvalsh(hermitian)))
            assert batched[k] == scalar


class TestStateSpaceGrid:
    def test_matches_per_point_evaluation(self, rng):
        n, p = 8, 2
        a = rng.standard_normal((n, n)) - 3.0 * np.eye(n)
        b = rng.standard_normal((n, p))
        c = rng.standard_normal((p, n))
        d = np.eye(p)
        omegas = np.logspace(-2, 2, 17)
        batched = state_space_hermitian_min_eigs(a, b, c, d, omegas)
        for k, omega in enumerate(omegas):
            shifted = 1j * omega * np.eye(n) - a
            value = d + c @ np.linalg.solve(shifted, b.astype(complex))
            hermitian = 0.5 * (value + value.conj().T)
            assert batched[k] == float(np.min(np.linalg.eigvalsh(hermitian)))

    def test_order_zero_uses_feedthrough_only(self):
        d = np.array([[2.0, 0.0], [0.0, 3.0]])
        result = state_space_hermitian_min_eigs(
            np.zeros((0, 0)), np.zeros((0, 2)), np.zeros((2, 0)), d, [0.1, 1.0]
        )
        assert np.allclose(result, 2.0)

    def test_singular_probe_raises(self):
        # A pole exactly on the probe frequency: j*1 is an eigenvalue of A.
        a = np.array([[0.0, 1.0], [-1.0, 0.0]])
        b = np.eye(2)
        c = np.eye(2)
        d = np.zeros((2, 2))
        with pytest.raises(np.linalg.LinAlgError):
            state_space_hermitian_min_eigs(a, b, c, d, [1.0])


class TestGroupByShape:
    def test_groups_preserve_first_seen_order(self):
        arrays = [np.zeros((2, 2)), np.zeros((3, 3)), np.ones((2, 2))]
        groups = group_by_shape(arrays)
        assert groups == {(2, 2): [0, 2], (3, 3): [1]}
