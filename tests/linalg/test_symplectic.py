"""Tests for repro.linalg.symplectic and repro.linalg.elementary."""

import numpy as np
import pytest

from repro.linalg.elementary import (
    apply_givens_left,
    apply_givens_right,
    apply_householder_left,
    apply_householder_right,
    givens_rotation,
    householder_vector,
)
from repro.linalg.hamiltonian import (
    is_hamiltonian,
    is_skew_hamiltonian,
    random_hamiltonian,
    random_skew_hamiltonian,
    symplectic_identity,
)
from repro.linalg.symplectic import (
    apply_double_householder_similarity,
    apply_symplectic_givens_similarity,
    is_orthogonal,
    is_orthogonal_symplectic,
    is_symplectic,
    random_orthogonal_symplectic,
    symplectic_from_givens,
)


class TestElementaryTransformations:
    def test_householder_zeroes_tail(self, rng):
        x = rng.standard_normal(6)
        v, beta = householder_vector(x)
        h = np.eye(6) - beta * np.outer(v, v)
        y = h @ x
        np.testing.assert_allclose(y[1:], 0.0, atol=1e-12)
        assert abs(abs(y[0]) - np.linalg.norm(x)) < 1e-12

    def test_householder_on_aligned_vector_is_identity(self):
        x = np.array([3.0, 0.0, 0.0])
        _, beta = householder_vector(x)
        assert beta == 0.0

    def test_householder_application_matches_dense(self, rng):
        m = rng.standard_normal((5, 5))
        x = rng.standard_normal(3)
        v, beta = householder_vector(x)
        h = np.eye(3) - beta * np.outer(v, v)
        rows = np.arange(1, 4)
        expected = m.copy()
        expected[rows, :] = h @ expected[rows, :]
        actual = m.copy()
        apply_householder_left(actual, v, beta, rows)
        np.testing.assert_allclose(actual, expected, atol=1e-12)
        expected_cols = m.copy()
        expected_cols[:, rows] = expected_cols[:, rows] @ h
        actual_cols = m.copy()
        apply_householder_right(actual_cols, v, beta, rows)
        np.testing.assert_allclose(actual_cols, expected_cols, atol=1e-12)

    def test_givens_zeroes_second_component(self):
        c, s = givens_rotation(3.0, 4.0)
        rotation = np.array([[c, s], [-s, c]])
        y = rotation @ np.array([3.0, 4.0])
        assert abs(y[1]) < 1e-12
        assert abs(y[0] - 5.0) < 1e-12

    def test_givens_similarity_is_orthogonal(self, rng):
        m = rng.standard_normal((4, 4))
        original_eigs = np.sort_complex(np.linalg.eigvals(m))
        c, s = givens_rotation(1.0, 2.0)
        work = m.copy()
        apply_givens_left(work, c, s, 0, 2)
        apply_givens_right(work, c, s, 0, 2)
        np.testing.assert_allclose(
            np.sort_complex(np.linalg.eigvals(work)), original_eigs, atol=1e-10
        )


class TestSymplecticPredicates:
    def test_symplectic_identity_matrix_is_symplectic(self):
        j = symplectic_identity(3)
        assert is_symplectic(j)
        assert is_orthogonal(j)

    def test_random_orthogonal_symplectic(self, rng):
        q = random_orthogonal_symplectic(4, rng)
        assert is_orthogonal_symplectic(q)

    def test_plain_orthogonal_is_not_necessarily_symplectic(self, rng):
        q, _ = np.linalg.qr(rng.standard_normal((6, 6)))
        # A generic orthogonal matrix of even size is not symplectic.
        assert not is_symplectic(q) or is_orthogonal_symplectic(q)

    def test_symplectic_from_givens_is_orthogonal_symplectic(self):
        c, s = givens_rotation(1.0, 1.0)
        g = symplectic_from_givens(3, c, s, 1)
        assert is_orthogonal_symplectic(g)


class TestStructurePreservation:
    def test_double_householder_preserves_structure(self, rng):
        w = random_skew_hamiltonian(4, rng)
        h = random_hamiltonian(4, rng)
        v, beta = householder_vector(rng.standard_normal(3))
        acc = np.eye(8)
        for matrix, checker in ((w.copy(), is_skew_hamiltonian), (h.copy(), is_hamiltonian)):
            work = matrix.copy()
            apply_double_householder_similarity(work, acc, v, beta, 1)
            assert checker(work)

    def test_symplectic_givens_preserves_structure_and_accumulates(self, rng):
        w = random_skew_hamiltonian(3, rng)
        work = w.copy()
        acc = np.eye(6)
        c, s = givens_rotation(0.3, -1.2)
        apply_symplectic_givens_similarity(work, acc, c, s, 1)
        assert is_skew_hamiltonian(work)
        assert is_orthogonal_symplectic(acc)
        np.testing.assert_allclose(acc.T @ w @ acc, work, atol=1e-12)

    def test_accumulator_consistency_for_householder(self, rng):
        w = random_skew_hamiltonian(4, rng)
        work = w.copy()
        acc = np.eye(8)
        v, beta = householder_vector(rng.standard_normal(3))
        apply_double_householder_similarity(work, acc, v, beta, 1)
        np.testing.assert_allclose(acc.T @ w @ acc, work, atol=1e-12)
