"""Tests for the Table 1 / Figure 2 benchmark harness."""

import pytest

from repro.bench import (
    PAPER_TABLE1,
    BenchmarkRow,
    figure2_series,
    format_table1,
    run_single_model,
    table1_rows,
)
from repro.circuits import paper_benchmark_model


class TestPaperReference:
    def test_paper_table_has_all_orders(self):
        assert set(PAPER_TABLE1) == {20, 40, 60, 80, 100, 200, 400}

    def test_nil_entries_match_paper(self):
        for order in (80, 100, 200, 400):
            assert PAPER_TABLE1[order]["lmi"] is None
        for order in (20, 40, 60):
            assert PAPER_TABLE1[order]["lmi"] is not None

    def test_paper_values_spot_check(self):
        assert PAPER_TABLE1[60]["lmi"] == pytest.approx(1550.25)
        assert PAPER_TABLE1[400]["proposed"] == pytest.approx(155.1875)


class TestHarnessFunctions:
    def test_run_single_model_unknown_method(self):
        system = paper_benchmark_model(15).system
        with pytest.raises(ValueError):
            run_single_model(system, methods=("nonsense",))

    def test_method_names_validated_before_any_timing(self):
        # A typo anywhere in the method list must fail *before* the valid
        # methods are run, so no timing work is wasted on a doomed sweep.
        from repro.engine import DecompositionCache, UnknownMethodError

        system = paper_benchmark_model(15).system
        cache = DecompositionCache()
        with pytest.raises(UnknownMethodError, match="nonsense"):
            run_single_model(
                system, methods=("proposed", "weierstrass", "nonsense"), cache=cache
            )
        assert cache.stats.misses == 0  # nothing was computed

    def test_registry_aliases_accepted(self):
        # "shh" (canonical) and "proposed" (the paper's Table-1 label) both
        # dispatch through the engine registry; results keep the caller's key.
        system = paper_benchmark_model(15).system
        results = run_single_model(system, methods=("shh",), lmi_order_limit=None)
        assert results["shh"]["passive"] is True

    def test_registry_order_limits_become_nil_entries(self):
        # Any registered method refused by its order limit reports NIL
        # (None/None), exactly like the LMI column — not a non-passive False.
        from repro.engine import MethodRegistry, MethodSpec
        from repro.engine.registry import DEFAULT_REGISTRY
        from repro.passivity.result import PassivityReport

        def never_runs(system, tol, cache, **options):  # pragma: no cover
            raise AssertionError("order limit should have skipped this")

        registry = MethodRegistry()
        registry.register(DEFAULT_REGISTRY.resolve("shh"))
        registry.register(
            MethodSpec(name="tiny", runner=never_runs, description="", order_limit=1)
        )
        system = paper_benchmark_model(15).system
        results = run_single_model(
            system, methods=("proposed", "tiny"), lmi_order_limit=None,
            registry=registry,
        )
        assert results["proposed"]["passive"] is True
        assert results["tiny"] == {"seconds": None, "passive": None}

    def test_methods_share_a_decomposition_cache(self):
        from repro.engine import DecompositionCache

        system = paper_benchmark_model(15).system
        cache = DecompositionCache()
        run_single_model(
            system, methods=("proposed", "gare"), lmi_order_limit=None, cache=cache
        )
        # The GARE admissibility pre-screen reused the SHH chain analysis.
        assert cache.stats.misses_for("chain_data") == 1
        assert cache.stats.hits_for("chain_data") >= 1

    def test_lmi_skip_behaviour(self):
        system = paper_benchmark_model(20).system
        results = run_single_model(system, methods=("lmi",), lmi_order_limit=15)
        assert results["lmi"]["seconds"] is None
        assert results["lmi"]["passive"] is None

    def test_figure2_series_alignment(self):
        series = figure2_series(orders=(15, 20), lmi_order_limit=0)
        assert series["order"] == [15, 20]
        assert len(series["proposed"]) == 2
        assert len(series["weierstrass"]) == 2
        assert series["lmi"] == [None, None]

    def test_format_table1_renders_nil_and_paper_columns(self):
        row = BenchmarkRow(order=80, paper_seconds=PAPER_TABLE1[80])
        row.seconds = {"lmi": None, "proposed": 0.5, "weierstrass": 0.6}
        text = format_table1([row])
        assert "NIL" in text
        assert "80" in text
        assert "0.5000" in text
        assert "0.5547" in text  # paper's proposed entry for order 80
