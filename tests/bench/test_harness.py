"""Tests for the Table 1 / Figure 2 benchmark harness."""

import pytest

from repro.bench import (
    PAPER_TABLE1,
    BenchmarkRow,
    figure2_series,
    format_table1,
    run_single_model,
    table1_rows,
)
from repro.circuits import paper_benchmark_model


class TestPaperReference:
    def test_paper_table_has_all_orders(self):
        assert set(PAPER_TABLE1) == {20, 40, 60, 80, 100, 200, 400}

    def test_nil_entries_match_paper(self):
        for order in (80, 100, 200, 400):
            assert PAPER_TABLE1[order]["lmi"] is None
        for order in (20, 40, 60):
            assert PAPER_TABLE1[order]["lmi"] is not None

    def test_paper_values_spot_check(self):
        assert PAPER_TABLE1[60]["lmi"] == pytest.approx(1550.25)
        assert PAPER_TABLE1[400]["proposed"] == pytest.approx(155.1875)


class TestHarnessFunctions:
    def test_run_single_model_unknown_method(self):
        system = paper_benchmark_model(15).system
        with pytest.raises(ValueError):
            run_single_model(system, methods=("nonsense",))

    def test_lmi_skip_behaviour(self):
        system = paper_benchmark_model(20).system
        results = run_single_model(system, methods=("lmi",), lmi_order_limit=15)
        assert results["lmi"]["seconds"] is None
        assert results["lmi"]["passive"] is None

    def test_figure2_series_alignment(self):
        series = figure2_series(orders=(15, 20), lmi_order_limit=0)
        assert series["order"] == [15, 20]
        assert len(series["proposed"]) == 2
        assert len(series["weierstrass"]) == 2
        assert series["lmi"] == [None, None]

    def test_format_table1_renders_nil_and_paper_columns(self):
        row = BenchmarkRow(order=80, paper_seconds=PAPER_TABLE1[80])
        row.seconds = {"lmi": None, "proposed": 0.5, "weierstrass": 0.6}
        text = format_table1([row])
        assert "NIL" in text
        assert "80" in text
        assert "0.5000" in text
        assert "0.5547" in text  # paper's proposed entry for order 80
