"""Unit tests of the span tracer: nesting, serialization, disabled mode."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    JobTrace,
    METRICS,
    Span,
    current_trace,
    obs_enabled,
    record_span,
    set_enabled,
    trace_span,
    use_trace,
)


@pytest.fixture(autouse=True)
def _clean_plane():
    """Each test starts with the plane on and a fresh registry."""
    previous = set_enabled(True)
    METRICS.reset()
    yield
    set_enabled(previous)
    METRICS.reset()


class TestSpanTree:
    def test_spans_nest_under_the_enclosing_span(self):
        trace = JobTrace()
        with use_trace(trace):
            with trace_span("outer"):
                with trace_span("inner.a"):
                    pass
                with trace_span("inner.b"):
                    pass
        assert len(trace.spans) == 1
        outer = trace.spans[0]
        assert outer.name == "outer"
        assert [child.name for child in outer.children] == ["inner.a", "inner.b"]
        assert trace.span_names() == ["outer", "inner.a", "inner.b"]

    def test_span_records_wall_cpu_and_attrs(self):
        trace = JobTrace()
        with use_trace(trace):
            with trace_span("stage", order=12) as span:
                span.set(outcome="computed")
        span = trace.spans[0]
        assert span.wall >= 0.0
        assert span.cpu >= 0.0
        assert span.started_at > 0.0
        assert span.attrs == {"order": 12, "outcome": "computed"}

    def test_exception_sets_the_error_attribute(self):
        trace = JobTrace()
        with use_trace(trace):
            with pytest.raises(RuntimeError):
                with trace_span("doomed"):
                    raise RuntimeError("boom")
        assert trace.spans[0].attrs["error"] == "RuntimeError"

    def test_no_active_trace_still_feeds_the_stage_histogram(self):
        with trace_span("orphan.stage"):
            pass
        assert current_trace() is None
        quantiles = METRICS.stage_quantiles()
        assert quantiles["orphan.stage"]["count"] == 1.0

    def test_use_trace_restores_the_previous_trace(self):
        outer_trace, inner_trace = JobTrace(), JobTrace()
        with use_trace(outer_trace):
            with trace_span("outer.stage"):
                with use_trace(inner_trace):
                    assert current_trace() is inner_trace
                    with trace_span("inner.stage"):
                        pass
                assert current_trace() is outer_trace
        assert outer_trace.span_names() == ["outer.stage"]
        assert inner_trace.span_names() == ["inner.stage"]

    def test_traces_are_thread_local(self):
        trace = JobTrace()
        seen_on_thread = []

        def worker():
            seen_on_thread.append(current_trace())
            with trace_span("thread.stage"):
                pass

        with use_trace(trace):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen_on_thread == [None]
        assert trace.span_names() == []


class TestSerialization:
    def test_jsonable_round_trip_preserves_the_tree(self):
        trace = JobTrace()
        with use_trace(trace):
            with trace_span("root", order=5) as span:
                span.set(outcome="computed")
                with trace_span("child"):
                    pass
        documents = trace.to_jsonable()
        rebuilt = JobTrace.from_jsonable(documents)
        assert rebuilt.span_names() == trace.span_names()
        root = rebuilt.spans[0]
        assert root.attrs == {"order": 5, "outcome": "computed"}
        assert root.wall == pytest.approx(trace.spans[0].wall)
        assert root.children[0].name == "child"

    def test_from_jsonable_tolerates_none_and_empty(self):
        assert JobTrace.from_jsonable(None).span_names() == []
        assert JobTrace.from_jsonable([]).span_names() == []

    def test_merge_grafts_roots(self):
        parent = JobTrace([Span("queue.wait", wall=0.5)])
        worker = JobTrace([Span("engine.dispatch", wall=0.1)])
        parent.merge(worker)
        assert parent.span_names() == ["queue.wait", "engine.dispatch"]
        assert len(parent) == 2
        parent.merge(None)  # tolerated no-op
        assert len(parent) == 2


class TestRecordSpan:
    def test_record_span_lands_in_the_given_trace_and_histogram(self):
        trace = JobTrace()
        span = record_span("queue.wait", 0.25, trace=trace, position=3)
        assert span is not None
        assert trace.span_names() == ["queue.wait"]
        assert trace.spans[0].wall == 0.25
        assert trace.spans[0].attrs == {"position": 3}
        assert METRICS.stage_quantiles()["queue.wait"]["count"] == 1.0

    def test_record_span_uses_the_active_trace_by_default(self):
        trace = JobTrace()
        with use_trace(trace):
            record_span("queue.wait", 0.1)
        assert trace.span_names() == ["queue.wait"]


class TestDisabledMode:
    def test_disabled_plane_records_nothing(self):
        set_enabled(False)
        assert not obs_enabled()
        trace = JobTrace()
        with use_trace(trace):
            with trace_span("stage") as span:
                span.set(outcome="ignored")  # null span swallows attrs
            assert record_span("queue.wait", 0.1, trace=trace) is None
        assert trace.span_names() == []
        assert METRICS.stage_quantiles() == {}

    def test_set_enabled_returns_the_prior_state(self):
        assert set_enabled(False) is True
        assert set_enabled(True) is False
