"""Unit tests of the metrics registry: families, quantiles, merge, render."""

from __future__ import annotations

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    JobTrace,
    MetricsRegistry,
    Span,
    STAGE_HISTOGRAM,
    observe_span_tree,
)


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        histogram = Histogram((0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 2.0):
            histogram.observe(value)
        # <=0.1 gets 0.05 and the boundary 0.1; <=1.0 gets 0.5; +Inf gets 2.0
        assert histogram.bucket_counts == [2, 1, 1]
        assert histogram.count == 4
        assert histogram.total == pytest.approx(2.65)

    def test_quantile_interpolates_within_the_bucket(self):
        histogram = Histogram((1.0, 2.0))
        for _ in range(10):
            histogram.observe(1.5)
        p50 = histogram.quantile(0.5)
        assert 1.0 <= p50 <= 2.0

    def test_quantile_of_empty_histogram_is_zero(self):
        assert Histogram().quantile(0.99) == 0.0

    def test_merge_requires_identical_bounds(self):
        histogram = Histogram((0.1, 1.0))
        with pytest.raises(ValueError):
            histogram.merge(Histogram((0.5,)).to_jsonable())

    def test_merge_adds_counts_and_sums(self):
        left, right = Histogram((1.0,)), Histogram((1.0,))
        left.observe(0.5)
        right.observe(2.0)
        left.merge(right.to_jsonable())
        assert left.count == 2
        assert left.bucket_counts == [1, 1]
        assert left.total == pytest.approx(2.5)


class TestRegistry:
    def test_counter_accumulates_and_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total")
        registry.counter("jobs_total", 2.0)
        registry.gauge("depth", 5.0)
        registry.gauge("depth", 3.0)
        assert registry.counter_value("jobs_total") == 3.0
        assert registry.gauge_value("depth") == 3.0

    def test_type_conflicts_fail_loudly(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x", 1.0)

    def test_labels_key_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("hits", stage="a")
        registry.counter("hits", stage="b")
        registry.counter("hits", stage="a")
        assert registry.counter_value("hits", stage="a") == 2.0
        assert registry.counter_value("hits", stage="b") == 1.0

    def test_observe_stage_fast_path_matches_generic_observe(self):
        fast, generic = MetricsRegistry(), MetricsRegistry()
        for value in (0.001, 0.05, 3.0):
            fast.observe_stage("qz.ordered", value)
            generic.observe(STAGE_HISTOGRAM, value, stage="qz.ordered")
        assert (
            fast.snapshot()["histograms"] == generic.snapshot()["histograms"]
        )

    def test_stage_quantiles_shape(self):
        registry = MetricsRegistry()
        for _ in range(20):
            registry.observe_stage("riccati.solve", 0.01)
        quantiles = registry.stage_quantiles()
        entry = quantiles["riccati.solve"]
        assert entry["count"] == 20.0
        assert set(entry) == {"count", "p50", "p95", "p99"}
        assert 0.0 < entry["p50"] <= 0.025

    def test_snapshot_merges_associatively(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("jobs", 1.0)
        a.observe_stage("stage.x", 0.2)
        b.counter("jobs", 2.0)
        b.observe_stage("stage.x", 0.4)
        b.gauge("depth", 7.0)
        a.merge_snapshot(b.snapshot())
        assert a.counter_value("jobs") == 3.0
        assert a.gauge_value("depth") == 7.0
        assert a.stage_quantiles()["stage.x"]["count"] == 2.0

    def test_reset_clears_everything_including_the_stage_cache(self):
        registry = MetricsRegistry()
        registry.observe_stage("stage.x", 0.1)
        registry.reset()
        assert registry.stage_quantiles() == {}
        registry.observe_stage("stage.x", 0.2)  # stale-cache write would hide
        assert registry.stage_quantiles()["stage.x"]["count"] == 1.0


class TestPrometheusRender:
    def test_render_contains_types_help_and_series(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", 3, help="jobs ever accepted")
        registry.gauge("repro_queue_depth", 2.0)
        registry.observe_stage("qz.ordered", 0.004)
        text = registry.render_prometheus()
        assert "# HELP repro_jobs_total jobs ever accepted" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert "repro_jobs_total 3" in text
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 2" in text
        assert f"# TYPE {STAGE_HISTOGRAM} histogram" in text
        assert f'{STAGE_HISTOGRAM}_bucket{{stage="qz.ordered",le="+Inf"}} 1' in text
        assert f'{STAGE_HISTOGRAM}_count{{stage="qz.ordered"}} 1' in text
        assert text.endswith("\n")

    def test_bucket_ladder_is_cumulative(self):
        registry = MetricsRegistry()
        registry.observe("lat", 0.0001, buckets=(0.001, 0.01))
        registry.observe("lat", 0.005, buckets=(0.001, 0.01))
        registry.observe("lat", 5.0, buckets=(0.001, 0.01))
        lines = registry.render_prometheus().splitlines()
        buckets = [line for line in lines if line.startswith("lat_bucket")]
        assert buckets == [
            'lat_bucket{le="0.001"} 1',
            'lat_bucket{le="0.01"} 2',
            'lat_bucket{le="+Inf"} 3',
        ]

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", stage='we"ird\\name')
        text = registry.render_prometheus()
        assert 'stage="we\\"ird\\\\name"' in text


class TestObserveSpanTree:
    def test_replays_every_span_once(self):
        registry = MetricsRegistry()
        tree = JobTrace(
            [
                Span(
                    "engine.dispatch",
                    wall=0.2,
                    children=[Span("riccati.solve", wall=0.15)],
                )
            ]
        )
        observe_span_tree(registry, tree)
        quantiles = registry.stage_quantiles()
        assert quantiles["engine.dispatch"]["count"] == 1.0
        assert quantiles["riccati.solve"]["count"] == 1.0

    def test_none_is_a_no_op(self):
        registry = MetricsRegistry()
        observe_span_tree(registry, None)
        assert registry.stage_quantiles() == {}

    def test_default_buckets_cover_the_latency_range(self):
        assert DEFAULT_BUCKETS[0] <= 1e-4
        assert DEFAULT_BUCKETS[-1] >= 10.0
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
