"""Unit tests of the structured JSON logger and the slow-op threshold."""

from __future__ import annotations

import io
import json
import logging
import time

import pytest

from repro.obs import (
    JobTrace,
    METRICS,
    set_enabled,
    set_slow_op_threshold,
    slow_op_threshold,
    trace_span,
    use_trace,
)
from repro.obs.log import configure, get_logger


@pytest.fixture()
def captured():
    """Re-point the repro logger at a buffer; restore defaults after."""
    stream = io.StringIO()
    configure(stream=stream, level=logging.DEBUG)
    yield stream
    configure(level=logging.INFO)


def _records(stream: io.StringIO):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestStructuredLogger:
    def test_one_json_object_per_line(self, captured):
        log = get_logger("repro.test")
        log.info("job_finished", job_id="j-1", wall=0.25)
        log.warning("pool_restart", restarts=2)
        records = _records(captured)
        assert [r["event"] for r in records] == ["job_finished", "pool_restart"]
        first = records[0]
        assert first["level"] == "info"
        assert first["logger"] == "repro.test"
        assert first["job_id"] == "j-1"
        assert first["wall"] == 0.25
        assert isinstance(first["ts"], float)

    def test_non_jsonable_fields_degrade_to_repr(self, captured):
        get_logger("repro.test").info("weird", payload=object())
        (record,) = _records(captured)
        assert "object object" in record["payload"]

    def test_debug_is_silent_at_info_level(self, captured):
        configure(stream=captured, level=logging.INFO)
        log = get_logger("repro.test")
        log.debug("hidden")
        log.error("shown")
        assert [r["event"] for r in _records(captured)] == ["shown"]
        assert _records(captured)[0]["level"] == "error"


class TestSlowOpLogging:
    def test_threshold_env_and_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_OP_SECONDS", "0.125")
        set_slow_op_threshold(None)  # drop the cache, re-read the env
        assert slow_op_threshold() == 0.125
        set_slow_op_threshold(2.5)
        assert slow_op_threshold() == 2.5
        set_slow_op_threshold(None)
        monkeypatch.setenv("REPRO_SLOW_OP_SECONDS", "not-a-number")
        assert slow_op_threshold() == 1.0  # malformed falls back
        set_slow_op_threshold(None)

    def test_slow_span_emits_a_slow_op_warning(self, captured):
        previous = set_enabled(True)
        set_slow_op_threshold(0.01)
        try:
            with use_trace(JobTrace()):
                with trace_span("slow.stage", order=7):
                    time.sleep(0.02)
            records = [r for r in _records(captured) if r["event"] == "slow_op"]
            assert len(records) == 1
            record = records[0]
            assert record["level"] == "warning"
            assert record["stage"] == "slow.stage"
            assert record["order"] == 7
            assert record["wall"] >= 0.01
        finally:
            set_slow_op_threshold(None)
            set_enabled(previous)
            METRICS.reset()

    def test_fast_span_stays_quiet(self, captured):
        previous = set_enabled(True)
        try:
            with trace_span("fast.stage"):
                pass
            assert all(r["event"] != "slow_op" for r in _records(captured))
        finally:
            set_enabled(previous)
            METRICS.reset()
