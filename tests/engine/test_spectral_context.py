"""Compute-once SpectralContext: correctness, cache plumbing, QZ counting.

The headline guarantee of the spectral-context refactor is pinned here with a
monkeypatch counter around ``scipy.linalg.qz``/``scipy.linalg.ordqz``: with a
persistent cache, ``check_passivity(system, method="auto")`` performs at most
**one** ordered QZ factorization per (system, tolerances) across profile,
method and reduction, and a second call performs **zero**.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import QZCounter
from repro.circuits import paper_benchmark_model, rlc_grid
from repro.config import DEFAULT_TOLERANCES
from repro.descriptor import DescriptorSystem
from repro.descriptor.weierstrass import separate_finite_infinite, weierstrass_form
from repro.engine import (
    PENCIL_SPECTRUM,
    BatchRunner,
    CacheStats,
    DecompositionCache,
    SpectralContext,
    check_passivity,
    compute_spectral_context,
    profile_system,
)
from repro.exceptions import SingularPencilError
from repro.linalg.pencil import classify_generalized_eigenvalues


def singular_pencil_system() -> DescriptorSystem:
    """``E`` and ``A`` share a common kernel: det(s E - A) == 0 identically."""
    e = np.diag([1.0, 0.0])
    a = np.diag([-1.0, 0.0])
    b = np.ones((2, 1))
    return DescriptorSystem(e, a, b, b.T)


class TestSpectralContext:
    def test_context_of_regular_system(self, small_rlc_ladder):
        context = compute_spectral_context(
            small_rlc_ladder.e, small_rlc_ladder.a
        )
        assert context.is_regular
        assert context.spectrum is not None
        reference = classify_generalized_eigenvalues(
            small_rlc_ladder.e, small_rlc_ladder.a
        )
        assert context.n_finite == reference.finite.size
        assert context.spectrum.n_infinite == reference.n_infinite
        assert context.spectrum.n_stable == reference.n_stable
        assert context.spectrum.n_unstable == reference.n_unstable
        assert context.is_stable == reference.is_stable

    def test_ordered_qz_reconstructs_the_pencil(self, small_impulsive_ladder):
        system = small_impulsive_ladder
        context = compute_spectral_context(system.e, system.a)
        aa, ee, q, z, n_finite = context.ordered_qz()
        assert np.allclose(q @ aa @ z.T, system.a, atol=1e-10)
        assert np.allclose(q @ ee @ z.T, system.e, atol=1e-10)
        assert 0 < n_finite < system.order

    def test_singular_pencil_context(self):
        system = singular_pencil_system()
        context = compute_spectral_context(system.e, system.a)
        assert not context.is_regular
        assert context.aa is None
        with pytest.raises(SingularPencilError):
            context.ordered_qz()
        with pytest.raises(SingularPencilError):
            context.classified_spectrum()
        assert not context.is_stable

    def test_injectable_into_system_queries(self, small_rc_line):
        context = compute_spectral_context(small_rc_line.e, small_rc_line.a)
        assert small_rc_line.is_regular(context=context)
        assert small_rc_line.is_stable(context=context)
        spectrum = small_rc_line.spectrum(context=context)
        reference = small_rc_line.spectrum()
        assert np.allclose(
            np.sort_complex(spectrum.finite), np.sort_complex(reference.finite)
        )

    def test_separation_with_context_matches_without(self, mixed_passive_system):
        system = mixed_passive_system
        context = compute_spectral_context(system.e, system.a)
        with_ctx = separate_finite_infinite(system, context=context)
        without = separate_finite_infinite(system)
        assert with_ctx.n_finite == without.n_finite
        for s in (0.3 + 0.7j, 2.0 - 1.0j):
            a = with_ctx.finite_system.evaluate(s) + with_ctx.infinite_system.evaluate(s)
            b = without.finite_system.evaluate(s) + without.infinite_system.evaluate(s)
            assert np.allclose(a, b, atol=1e-9)

    def test_weierstrass_form_accepts_context(self, mixed_passive_system):
        system = mixed_passive_system
        context = compute_spectral_context(system.e, system.a)
        form = weierstrass_form(system, context=context)
        assert form.a_p.shape[0] == context.n_finite

    def test_separation_with_singular_context_raises(self):
        system = singular_pencil_system()
        context = compute_spectral_context(system.e, system.a)
        with pytest.raises(SingularPencilError):
            separate_finite_infinite(system, context=context)


class TestCachePlumbing:
    def test_spectral_is_a_cache_kind(self, small_rlc_ladder):
        cache = DecompositionCache()
        first = cache.spectral(small_rlc_ladder)
        second = cache.spectral(small_rlc_ladder)
        assert first is second
        assert cache.stats.misses_for(PENCIL_SPECTRUM) == 1
        assert cache.stats.hits_for(PENCIL_SPECTRUM) == 1
        assert cache.stats.factorizations_for(PENCIL_SPECTRUM) == 1

    def test_profile_shares_the_spectral_context(self, small_rc_line):
        cache = DecompositionCache()
        profile = profile_system(small_rc_line, cache=cache)
        assert profile.is_admissible
        # The profile's spectral analysis is itself a cache entry: fetching
        # the context afterwards is a hit, not a second factorization.
        cache.spectral(small_rc_line)
        assert cache.stats.factorizations_for(PENCIL_SPECTRUM) == 1
        assert cache.stats.hits_for(PENCIL_SPECTRUM) >= 1

    def test_weierstrass_accessor_reuses_the_context(self, small_impulsive_ladder):
        cache = DecompositionCache()
        cache.spectral(small_impulsive_ladder)
        cache.weierstrass(small_impulsive_ladder)
        assert cache.stats.factorizations_for(PENCIL_SPECTRUM) == 1
        assert cache.stats.hits_for(PENCIL_SPECTRUM) == 1

    def test_seed_makes_lookups_hit_without_factorizations(self, small_rlc_ladder):
        context = compute_spectral_context(
            small_rlc_ladder.e, small_rlc_ladder.a, DEFAULT_TOLERANCES
        )
        cache = DecompositionCache()
        cache.seed(small_rlc_ladder, PENCIL_SPECTRUM, context)
        assert cache.spectral(small_rlc_ladder) is context
        assert cache.stats.factorizations == 0
        assert cache.stats.misses_for(PENCIL_SPECTRUM) == 0
        assert cache.stats.hits_for(PENCIL_SPECTRUM) == 1

    def test_factorization_counter_in_merge_and_minus(self):
        left = CacheStats()
        left.record("a", hit=False)
        left.record_factorization("a")
        right = CacheStats()
        right.record_factorization("a")
        right.record_factorization("b")
        left.merge(right)
        assert left.factorizations == 3
        assert left.factorizations_for("a") == 2
        assert left.factorizations_for("b") == 1
        baseline = left.snapshot()
        left.record_factorization("a")
        delta = left.minus(baseline)
        assert delta.factorizations == 1
        assert delta.factorizations_for("a") == 1
        assert delta.factorizations_for("b") == 0


class TestEngineDiagnosticsSchema:
    """All three check_passivity exits emit the same engine payload."""

    SCHEMA = {"method", "auto", "cached", "skipped", "factorizations", "incremental"}

    def test_success_exit(self, small_rc_line):
        report = check_passivity(small_rc_line, method="auto")
        engine = report.diagnostics["engine"]
        assert set(engine) == self.SCHEMA
        assert engine["skipped"] is False
        assert engine["cached"] is False
        assert engine["factorizations"] > 0

    def test_order_limit_exit(self, small_rlc_ladder):
        cache = DecompositionCache()
        report = check_passivity(
            small_rlc_ladder, method="lmi", cache=cache, order_limit=2
        )
        engine = report.diagnostics["engine"]
        assert set(engine) == self.SCHEMA
        assert engine["skipped"] is True
        assert engine["cached"] is True

    def test_admissibility_refusal_exit(self, small_impulsive_ladder):
        report = check_passivity(small_impulsive_ladder, method="gare")
        engine = report.diagnostics["engine"]
        assert set(engine) == self.SCHEMA
        assert engine["skipped"] is False
        assert report.is_passive is False

    def test_warm_cache_reports_zero_factorizations(self, small_rc_line):
        cache = DecompositionCache()
        check_passivity(small_rc_line, method="auto", cache=cache)
        warm = check_passivity(small_rc_line, method="auto", cache=cache)
        assert warm.diagnostics["engine"]["factorizations"] == 0


class TestSingleFactorizationGuarantee:
    """QZ calls on the auto path, counted by the shared repro.bench.QZCounter."""

    @pytest.fixture()
    def counter(self):
        with QZCounter() as active:
            yield active

    @pytest.mark.parametrize(
        "make_system",
        [
            lambda: rlc_grid(6, 6, sparse=False).system,  # admissible -> gare
            lambda: paper_benchmark_model(24, n_impulsive_stubs=2).system,  # shh
        ],
        ids=["admissible-gare", "impulsive-shh"],
    )
    def test_auto_path_is_one_qz_then_zero(self, counter, make_system):
        system = make_system()
        cache = DecompositionCache()
        counter.reset()
        report = check_passivity(system, method="auto", cache=cache)
        assert report.is_passive, report.failure_reason
        assert counter.ordqz <= 1
        assert counter.total <= 1, (
            f"first call performed {counter.total} QZ factorizations "
            f"(qz={counter.qz}, ordqz={counter.ordqz})"
        )
        counter.reset()
        second = check_passivity(system, method="auto", cache=cache)
        assert second.is_passive
        assert counter.total == 0, (
            f"warm-cache call performed {counter.total} QZ factorizations"
        )

    def test_tolerance_bundle_is_part_of_the_key(self, counter):
        from repro.config import Tolerances

        system = rlc_grid(5, 5, sparse=False).system
        cache = DecompositionCache()
        check_passivity(system, method="auto", cache=cache)
        counter.reset()
        loose = Tolerances(rank_rtol=1e-8)
        check_passivity(system, method="auto", tol=loose, cache=cache)
        # A different tolerance bundle is a different cache entry: exactly
        # one new factorization, not zero and not several.
        assert counter.total == 1

    def test_explicit_methods_share_the_single_context(self, counter):
        system = paper_benchmark_model(24, n_impulsive_stubs=2).system
        cache = DecompositionCache()
        counter.reset()
        check_passivity(system, method="shh", cache=cache)
        assert counter.total <= 1
        ordqz_after_shh = counter.ordqz
        check_passivity(system, method="weierstrass", cache=cache)
        # The Weierstrass route reuses the cached ordered QZ; its only
        # additional QZ work is the Sylvester solver's small sub-block
        # reduction, never a second full-pencil ordqz.
        assert counter.ordqz == ordqz_after_shh


class TestBatchRunnerContextSharing:
    def test_duplicate_systems_share_one_factorization(self):
        system = rlc_grid(5, 5, sparse=False).system
        runner = BatchRunner(backend="serial")
        outcome = runner.run([system, system], methods=("auto",))
        assert all(r.is_passive for r in outcome.results)
        assert outcome.cache_stats.factorizations_for(PENCIL_SPECTRUM) == 1

    def test_thread_backend_shares_the_precomputed_context(self):
        system = rlc_grid(5, 5, sparse=False).system
        runner = BatchRunner(backend="thread", max_workers=2)
        outcome = runner.run([system, system], methods=("auto", "weierstrass"))
        assert outcome.cache_stats.factorizations_for(PENCIL_SPECTRUM) == 1

    def test_process_workers_are_seeded(self):
        pytest.importorskip("multiprocessing")
        system = rlc_grid(5, 5, sparse=False).system
        runner = BatchRunner(backend="process", max_workers=2)
        try:
            outcome = runner.run([system, system], methods=("auto",))
        except (OSError, PermissionError):
            pytest.skip("process pool unavailable in this environment")
        if outcome.backend != "process":
            pytest.skip("process pool unavailable in this environment")
        assert all(r.is_passive for r in outcome.results if r.ok)
        # One parent-side factorization; the seeded workers only record hits.
        assert outcome.cache_stats.factorizations_for(PENCIL_SPECTRUM) == 1

    def test_precompute_can_be_disabled(self):
        system = rlc_grid(5, 5, sparse=False).system
        runner = BatchRunner(backend="serial", precompute_spectral=False)
        outcome = runner.run([system], methods=("auto",))
        assert outcome.results[0].is_passive
        # The cell still computes (and caches) its own context.
        assert outcome.cache_stats.factorizations_for(PENCIL_SPECTRUM) == 1

    def test_sparse_systems_are_not_densified_by_precompute(self):
        from repro.circuits import rc_grid

        system = rc_grid(18, 18, sparse=True).system
        runner = BatchRunner(backend="serial")
        contexts = runner._spectral_contexts([system, system], ("auto",), {})
        assert contexts == {}
        assert "e" not in system.__dict__
        assert "a" not in system.__dict__

    def test_unique_cold_system_is_left_to_its_worker(self):
        # A single cold system gains nothing from a parent-side QZ (it would
        # serialize work the worker could do in parallel): no precompute.
        system = rlc_grid(5, 5, sparse=False).system
        runner = BatchRunner(backend="serial")
        assert runner._spectral_contexts([system], ("auto",), {}) == {}
        # ...but once a sweep has cached it, shipping is free and happens.
        runner.run([system], methods=("auto",))
        contexts = runner._spectral_contexts([system], ("auto",), {})
        assert 0 in contexts and contexts[0].is_regular

    def test_no_precompute_when_no_method_reads_the_context(self):
        # A pure-LMI sweep never consults the spectral cache, and neither
        # does a spectral method that the engine will refuse on its order
        # limit — both must not trigger a parent-side factorization.
        system = rlc_grid(5, 5, sparse=False).system
        runner = BatchRunner(backend="serial")
        assert runner._spectral_contexts([system, system], ("lmi",), {}) == {}
        assert (
            runner._spectral_contexts(
                [system, system], ("shh",), {"shh": {"order_limit": 2}}
            )
            == {}
        )
        assert runner.cache.stats.factorizations == 0

    def test_pickled_context_roundtrip(self):
        import pickle

        system = rlc_grid(5, 5, sparse=False).system
        context = compute_spectral_context(system.e, system.a)
        clone = pickle.loads(pickle.dumps(context))
        assert isinstance(clone, SpectralContext)
        assert clone.is_regular and clone.n_finite == context.n_finite
        assert np.allclose(clone.aa, context.aa)
