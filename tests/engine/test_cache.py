"""Tests for the fingerprint-keyed decomposition cache."""

import numpy as np
import pytest

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.descriptor import DescriptorSystem
from repro.engine import DecompositionCache, fingerprint_system, profile_system
from repro.exceptions import NotAdmissibleError


def perturbed(system, eps=1e-12):
    return DescriptorSystem(
        system.e, system.a + eps, system.b, system.c, system.d
    )


class TestFingerprint:
    def test_deterministic(self, small_rlc_ladder):
        assert fingerprint_system(small_rlc_ladder) == fingerprint_system(
            small_rlc_ladder
        )

    def test_sensitive_to_matrix_perturbation(self, small_rlc_ladder):
        assert fingerprint_system(small_rlc_ladder) != fingerprint_system(
            perturbed(small_rlc_ladder)
        )

    def test_sensitive_to_tolerances(self, small_rlc_ladder):
        loose = Tolerances(rank_rtol=1e-6)
        assert fingerprint_system(small_rlc_ladder) != fingerprint_system(
            small_rlc_ladder, loose
        )
        assert fingerprint_system(small_rlc_ladder) == fingerprint_system(
            small_rlc_ladder, DEFAULT_TOLERANCES
        )


class TestHitMissAccounting:
    def test_miss_then_hit(self, small_rlc_ladder):
        cache = DecompositionCache()
        calls = []

        def compute():
            calls.append(1)
            return "payload"

        first = cache.get_or_compute(small_rlc_ladder, "thing", compute)
        second = cache.get_or_compute(small_rlc_ladder, "thing", compute)
        assert first == second == "payload"
        assert len(calls) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses_for("thing") == 1
        assert cache.stats.hits_for("thing") == 1

    def test_kinds_are_independent_entries(self, small_rlc_ladder):
        cache = DecompositionCache()
        cache.get_or_compute(small_rlc_ladder, "alpha", lambda: 1)
        cache.get_or_compute(small_rlc_ladder, "beta", lambda: 2)
        assert cache.get_or_compute(small_rlc_ladder, "alpha", lambda: -1) == 1
        assert cache.get_or_compute(small_rlc_ladder, "beta", lambda: -2) == 2
        assert cache.stats.misses == 2
        assert cache.stats.hits == 2

    def test_different_systems_do_not_collide(
        self, small_rlc_ladder, small_rc_line
    ):
        cache = DecompositionCache()
        cache.get_or_compute(small_rlc_ladder, "thing", lambda: "ladder")
        assert (
            cache.get_or_compute(small_rc_line, "thing", lambda: "line") == "line"
        )
        assert cache.stats.misses == 2

    def test_chain_data_shared(self, small_impulsive_ladder):
        cache = DecompositionCache()
        first = cache.chain_data(small_impulsive_ladder)
        second = cache.chain_data(small_impulsive_ladder)
        assert first is second
        assert cache.stats.misses_for("chain_data") == 1
        assert cache.stats.hits_for("chain_data") == 1

    def test_weierstrass_shared(self, small_impulsive_ladder):
        cache = DecompositionCache()
        assert cache.weierstrass(small_impulsive_ladder) is cache.weierstrass(
            small_impulsive_ladder
        )
        assert cache.stats.misses_for("weierstrass_form") == 1

    def test_stats_merge(self):
        from repro.engine import CacheStats

        left = CacheStats()
        left.record("a", hit=False)
        right = CacheStats()
        right.record("a", hit=True)
        right.record("b", hit=False)
        left.merge(right)
        assert left.hits == 1 and left.misses == 2
        assert left.hits_for("a") == 1 and left.misses_for("b") == 1


class TestEviction:
    def test_lru_eviction_bounds_size(self, small_rlc_ladder):
        cache = DecompositionCache(maxsize=2)
        for kind in ("one", "two", "three"):
            cache.get_or_compute(small_rlc_ladder, kind, lambda kind=kind: kind)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # "one" was evicted, "three" survived.
        assert (
            cache.get_or_compute(small_rlc_ladder, "three", lambda: "fresh")
            == "three"
        )
        assert (
            cache.get_or_compute(small_rlc_ladder, "one", lambda: "fresh") == "fresh"
        )

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            DecompositionCache(maxsize=0)


class TestNegativeCaching:
    def test_gare_refusal_cached(self, small_impulsive_ladder, monkeypatch):
        cache = DecompositionCache()
        with pytest.raises(NotAdmissibleError):
            cache.gare_state_space(small_impulsive_ladder)
        # Second lookup re-raises from the cache without recomputing.
        import repro.engine.cache as cache_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("refusal should come from the cache")

        monkeypatch.setattr(cache_module, "admissible_to_state_space", boom)
        with pytest.raises(NotAdmissibleError):
            cache.gare_state_space(small_impulsive_ladder)
        assert cache.stats.misses_for("gare_state_space") == 1
        assert cache.stats.hits_for("gare_state_space") == 1

    def test_unexpected_errors_not_cached(self, small_rlc_ladder):
        cache = DecompositionCache()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return "ok"

        with pytest.raises(RuntimeError):
            cache.get_or_compute(small_rlc_ladder, "flaky", flaky)
        assert cache.get_or_compute(small_rlc_ladder, "flaky", flaky) == "ok"
        assert len(calls) == 2


class TestSystemProfile:
    def test_profile_of_admissible_system(self, small_rc_line):
        profile = profile_system(small_rc_line)
        assert profile.is_regular
        assert profile.is_stable
        assert profile.is_impulse_free
        assert profile.is_admissible
        assert profile.order == small_rc_line.order

    def test_profile_of_impulsive_system(self, small_impulsive_ladder):
        profile = profile_system(small_impulsive_ladder)
        assert profile.n_impulsive_chains > 0
        assert not profile.is_impulse_free
        assert not profile.is_admissible

    def test_profile_cached_and_shares_chain_data(self, small_impulsive_ladder):
        cache = DecompositionCache()
        profile_system(small_impulsive_ladder, cache=cache)
        profile_system(small_impulsive_ladder, cache=cache)
        assert cache.stats.misses_for("system_profile") == 1
        assert cache.stats.hits_for("system_profile") == 1
        # The chain analysis behind the profile is itself a cache entry.
        cache.chain_data(small_impulsive_ladder)
        assert cache.stats.misses_for("chain_data") == 1
        assert cache.stats.hits_for("chain_data") == 1

    def test_higher_grade_flagged(self, s_squared_system):
        profile = profile_system(s_squared_system)
        assert profile.has_higher_grade
