"""Tests for the fingerprint-keyed decomposition cache."""

import numpy as np
import pytest

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.descriptor import DescriptorSystem
from repro.engine import DecompositionCache, fingerprint_system, profile_system
from repro.exceptions import NotAdmissibleError


def perturbed(system, eps=1e-12):
    return DescriptorSystem(
        system.e, system.a + eps, system.b, system.c, system.d
    )


class TestFingerprint:
    def test_deterministic(self, small_rlc_ladder):
        assert fingerprint_system(small_rlc_ladder) == fingerprint_system(
            small_rlc_ladder
        )

    def test_sensitive_to_matrix_perturbation(self, small_rlc_ladder):
        assert fingerprint_system(small_rlc_ladder) != fingerprint_system(
            perturbed(small_rlc_ladder)
        )

    def test_sensitive_to_tolerances(self, small_rlc_ladder):
        loose = Tolerances(rank_rtol=1e-6)
        assert fingerprint_system(small_rlc_ladder) != fingerprint_system(
            small_rlc_ladder, loose
        )
        assert fingerprint_system(small_rlc_ladder) == fingerprint_system(
            small_rlc_ladder, DEFAULT_TOLERANCES
        )


class TestSparseFingerprintRegression:
    """Fingerprints are representation independent and pattern sensitive."""

    def test_equal_sparse_and_dense_representations_share_a_fingerprint(self):
        from repro.circuits import rc_grid

        dense = rc_grid(4, 4, sparse=False).system
        sparse = rc_grid(4, 4, sparse=True).system
        assert fingerprint_system(dense) == fingerprint_system(sparse)

    def test_equal_representations_hit_the_same_cache_entry(self):
        from repro.circuits import rc_grid

        cache = DecompositionCache()
        dense = rc_grid(4, 4, sparse=False).system
        sparse = rc_grid(4, 4, sparse=True).system
        first = cache.get_or_compute(dense, "thing", lambda: "dense-computed")
        second = cache.get_or_compute(sparse, "thing", lambda: "sparse-computed")
        assert first == second == "dense-computed"
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_sparse_fingerprint_does_not_densify(self):
        import scipy.sparse

        from repro.circuits import rc_grid

        system = rc_grid(6, 6, sparse=True).system
        fingerprint_system(system)
        # The lazy dense view must still be un-materialized afterwards.
        assert "e" not in system.__dict__
        assert "a" not in system.__dict__
        assert scipy.sparse.issparse(system.sparse_e)

    def test_structurally_different_patterns_never_collide(self):
        import scipy.sparse

        from repro.descriptor import DescriptorSystem

        def make(pattern_entry):
            e = scipy.sparse.csr_matrix(np.diag([1.0, 1.0, 0.0]))
            rows, cols, vals = zip(*pattern_entry)
            a = scipy.sparse.coo_matrix(
                (vals, (rows, cols)), shape=(3, 3)
            ).tocsr() + scipy.sparse.diags([-2.0, -2.0, -2.0])
            b = np.ones((3, 1))
            return DescriptorSystem(e, a, b, b.T)

        # Same stored values, different positions: the index arrays are part
        # of the digest, so the fingerprints must differ.
        first = make([(0, 1, 0.5)])
        second = make([(1, 0, 0.5)])
        third = make([(0, 2, 0.5)])
        prints = {fingerprint_system(s) for s in (first, second, third)}
        assert len(prints) == 3

    def test_explicit_zeros_do_not_change_the_fingerprint(self):
        import scipy.sparse

        from repro.descriptor import DescriptorSystem

        e_plain = scipy.sparse.csr_matrix(np.diag([1.0, 0.0]))
        e_padded = scipy.sparse.csr_matrix(
            ([1.0, 0.0], ([0, 1], [0, 1])), shape=(2, 2)
        )
        a = -np.eye(2)
        b = np.ones((2, 1))
        plain = DescriptorSystem(e_plain, a, b, b.T)
        padded = DescriptorSystem(e_padded, a, b, b.T)
        assert fingerprint_system(plain) == fingerprint_system(padded)

    def test_value_perturbation_changes_sparse_fingerprint(self):
        from repro.circuits import rc_grid

        base = rc_grid(4, 4, sparse=True).system
        from repro.descriptor import DescriptorSystem

        bumped = DescriptorSystem(
            base.sparse_e * (1.0 + 1e-12), base.sparse_a, base.b, base.c, base.d
        )
        assert fingerprint_system(base) != fingerprint_system(bumped)


class TestHitMissAccounting:
    def test_miss_then_hit(self, small_rlc_ladder):
        cache = DecompositionCache()
        calls = []

        def compute():
            calls.append(1)
            return "payload"

        first = cache.get_or_compute(small_rlc_ladder, "thing", compute)
        second = cache.get_or_compute(small_rlc_ladder, "thing", compute)
        assert first == second == "payload"
        assert len(calls) == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses_for("thing") == 1
        assert cache.stats.hits_for("thing") == 1

    def test_kinds_are_independent_entries(self, small_rlc_ladder):
        cache = DecompositionCache()
        cache.get_or_compute(small_rlc_ladder, "alpha", lambda: 1)
        cache.get_or_compute(small_rlc_ladder, "beta", lambda: 2)
        assert cache.get_or_compute(small_rlc_ladder, "alpha", lambda: -1) == 1
        assert cache.get_or_compute(small_rlc_ladder, "beta", lambda: -2) == 2
        assert cache.stats.misses == 2
        assert cache.stats.hits == 2

    def test_different_systems_do_not_collide(
        self, small_rlc_ladder, small_rc_line
    ):
        cache = DecompositionCache()
        cache.get_or_compute(small_rlc_ladder, "thing", lambda: "ladder")
        assert (
            cache.get_or_compute(small_rc_line, "thing", lambda: "line") == "line"
        )
        assert cache.stats.misses == 2

    def test_chain_data_shared(self, small_impulsive_ladder):
        cache = DecompositionCache()
        first = cache.chain_data(small_impulsive_ladder)
        second = cache.chain_data(small_impulsive_ladder)
        assert first is second
        assert cache.stats.misses_for("chain_data") == 1
        assert cache.stats.hits_for("chain_data") == 1

    def test_weierstrass_shared(self, small_impulsive_ladder):
        cache = DecompositionCache()
        assert cache.weierstrass(small_impulsive_ladder) is cache.weierstrass(
            small_impulsive_ladder
        )
        assert cache.stats.misses_for("weierstrass_form") == 1

    def test_stats_merge(self):
        from repro.engine import CacheStats

        left = CacheStats()
        left.record("a", hit=False)
        right = CacheStats()
        right.record("a", hit=True)
        right.record("b", hit=False)
        left.merge(right)
        assert left.hits == 1 and left.misses == 2
        assert left.hits_for("a") == 1 and left.misses_for("b") == 1


class TestEviction:
    def test_lru_eviction_bounds_size(self, small_rlc_ladder):
        cache = DecompositionCache(maxsize=2)
        for kind in ("one", "two", "three"):
            cache.get_or_compute(small_rlc_ladder, kind, lambda kind=kind: kind)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        # "one" was evicted, "three" survived.
        assert (
            cache.get_or_compute(small_rlc_ladder, "three", lambda: "fresh")
            == "three"
        )
        assert (
            cache.get_or_compute(small_rlc_ladder, "one", lambda: "fresh") == "fresh"
        )

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            DecompositionCache(maxsize=0)


class TestNegativeCaching:
    def test_gare_refusal_cached(self, small_impulsive_ladder, monkeypatch):
        cache = DecompositionCache()
        with pytest.raises(NotAdmissibleError):
            cache.gare_state_space(small_impulsive_ladder)
        # Second lookup re-raises from the cache without recomputing.
        import repro.engine.cache as cache_module

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("refusal should come from the cache")

        monkeypatch.setattr(cache_module, "admissible_to_state_space", boom)
        with pytest.raises(NotAdmissibleError):
            cache.gare_state_space(small_impulsive_ladder)
        assert cache.stats.misses_for("gare_state_space") == 1
        assert cache.stats.hits_for("gare_state_space") == 1

    def test_unexpected_errors_not_cached(self, small_rlc_ladder):
        cache = DecompositionCache()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return "ok"

        with pytest.raises(RuntimeError):
            cache.get_or_compute(small_rlc_ladder, "flaky", flaky)
        assert cache.get_or_compute(small_rlc_ladder, "flaky", flaky) == "ok"
        assert len(calls) == 2


class TestSystemProfile:
    def test_profile_of_admissible_system(self, small_rc_line):
        profile = profile_system(small_rc_line)
        assert profile.is_regular
        assert profile.is_stable
        assert profile.is_impulse_free
        assert profile.is_admissible
        assert profile.order == small_rc_line.order

    def test_profile_of_impulsive_system(self, small_impulsive_ladder):
        profile = profile_system(small_impulsive_ladder)
        assert profile.n_impulsive_chains > 0
        assert not profile.is_impulse_free
        assert not profile.is_admissible

    def test_profile_cached_and_shares_chain_data(self, small_impulsive_ladder):
        cache = DecompositionCache()
        profile_system(small_impulsive_ladder, cache=cache)
        profile_system(small_impulsive_ladder, cache=cache)
        assert cache.stats.misses_for("system_profile") == 1
        assert cache.stats.hits_for("system_profile") == 1
        # The chain analysis behind the profile is itself a cache entry.
        cache.chain_data(small_impulsive_ladder)
        assert cache.stats.misses_for("chain_data") == 1
        assert cache.stats.hits_for("chain_data") == 1

    def test_higher_grade_flagged(self, s_squared_system):
        profile = profile_system(s_squared_system)
        assert profile.has_higher_grade
