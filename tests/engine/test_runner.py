"""Tests for the parallel batch runner."""

import time

import pytest

from repro.circuits import paper_benchmark_model
from repro.engine import (
    BatchRunner,
    DecompositionCache,
    MethodRegistry,
    MethodSpec,
    UnknownMethodError,
)
from repro.engine.registry import DEFAULT_REGISTRY
from repro.passivity.result import PassivityReport


@pytest.fixture(scope="module")
def batch_systems():
    # Mixed sizes, biggest first, so parallel completion order differs from
    # submission order and the ordering guarantee is actually exercised.
    return [
        paper_benchmark_model(order, n_impulsive_stubs=1).system
        for order in (24, 16, 12)
    ]


def _expected_cells(systems, methods):
    return [(si, m) for si in range(len(systems)) for m in methods]


class TestOrderingAndBackends:
    def test_thread_results_ordered(self, batch_systems):
        runner = BatchRunner(backend="thread", max_workers=4)
        outcome = runner.run(batch_systems, methods=("proposed", "weierstrass"))
        cells = [(r.system_index, r.method) for r in outcome.results]
        assert cells == _expected_cells(batch_systems, ("proposed", "weierstrass"))
        assert all(r.ok for r in outcome.results)
        assert all(r.is_passive for r in outcome.results)
        assert outcome.backend == "thread"

    def test_serial_matches_thread_verdicts(self, batch_systems):
        methods = ("proposed", "weierstrass")
        serial = BatchRunner(backend="serial").run(batch_systems, methods=methods)
        threaded = BatchRunner(backend="thread", max_workers=4).run(
            batch_systems, methods=methods
        )
        assert serial.verdicts() == threaded.verdicts()

    def test_auto_backend_completes_with_ordering(self, batch_systems):
        # "auto" prefers a process pool and silently degrades to serial when
        # the environment forbids one; either way the contract holds.
        runner = BatchRunner(backend="auto", max_workers=2)
        outcome = runner.run(batch_systems, methods=("proposed",))
        cells = [(r.system_index, r.method) for r in outcome.results]
        assert cells == _expected_cells(batch_systems, ("proposed",))
        assert all(r.is_passive for r in outcome.results)
        assert outcome.backend in ("process", "serial")

    def test_process_backend_merges_worker_cache_stats(self, batch_systems):
        try:
            outcome = BatchRunner(backend="process", max_workers=2).run(
                batch_systems, methods=("auto", "proposed")
            )
        except (OSError, PermissionError) as error:  # pragma: no cover
            pytest.skip(f"process pool unavailable: {error}")
        assert all(r.is_passive for r in outcome.results)
        # Per system: the auto profile computes the chain data once and the
        # two SHH runs reuse it inside the worker-local cache.
        assert outcome.cache_stats.misses_for("chain_data") == len(batch_systems)
        assert outcome.cache_stats.hits_for("chain_data") >= len(batch_systems)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(backend="carrier-pigeon")

    def test_duplicate_methods_keep_distinct_cells(self, batch_systems):
        # Each occurrence in the method list is its own cell, on every backend.
        for backend in ("serial", "auto"):
            outcome = BatchRunner(backend=backend, max_workers=2).run(
                batch_systems[:1], methods=("proposed", "weierstrass", "proposed")
            )
            assert [r.method for r in outcome.results] == [
                "proposed", "weierstrass", "proposed",
            ]

    def test_order_limit_skip_reported_as_none(self):
        from repro.circuits import rc_line

        big = rc_line(70).system  # above the LMI order limit
        outcome = BatchRunner(backend="serial").run([big], methods=("lmi",))
        result = outcome.results[0]
        assert result.ok
        assert result.skipped
        assert result.is_passive is None  # NIL, not "non-passive"


class TestValidation:
    def test_methods_validated_before_any_work(self, batch_systems):
        runner = BatchRunner(backend="serial")
        with pytest.raises(UnknownMethodError, match="nonsense"):
            runner.run(batch_systems, methods=("proposed", "nonsense"))
        # Nothing was computed for the valid method either.
        assert runner.cache.stats.misses == 0

    def test_method_options_reach_aliases(self, batch_systems):
        # Options keyed by the canonical name ("shh") must reach a sweep
        # that requested the alias ("proposed").
        captured = {}

        def spy(system, tol, cache, **options):
            captured.update(options)
            return PassivityReport(is_passive=True, method="shh")

        registry = MethodRegistry()
        registry.register(
            MethodSpec(name="shh", runner=spy, description="", aliases=("proposed",))
        )
        BatchRunner(backend="serial", registry=registry).run(
            batch_systems[:1],
            methods=("proposed",),
            method_options={"shh": {"check_stability": False}},
        )
        assert captured == {"check_stability": False}

    def test_method_options_for_unknown_method_rejected(self, batch_systems):
        runner = BatchRunner(backend="serial")
        with pytest.raises(ValueError, match="method_options"):
            runner.run(
                batch_systems,
                methods=("proposed",),
                method_options={"nonsense": {}},
            )


def _failing_runner(system, tol, cache, **options):
    raise RuntimeError("synthetic failure")


def _slow_runner(system, tol, cache, **options):
    time.sleep(options.get("duration", 1.0))
    return PassivityReport(is_passive=True, method="slow")


def _custom_registry():
    registry = MethodRegistry()
    registry.register(DEFAULT_REGISTRY.resolve("shh"))
    registry.register(
        MethodSpec(name="failing", runner=_failing_runner, description="boom")
    )
    registry.register(
        MethodSpec(name="slow", runner=_slow_runner, description="sleeps")
    )
    return registry


class TestFailureIsolationAndTimeouts:
    def test_one_failing_cell_does_not_kill_the_sweep(self, batch_systems):
        runner = BatchRunner(backend="serial", registry=_custom_registry())
        outcome = runner.run(batch_systems[:2], methods=("shh", "failing"))
        by_method = {(r.system_index, r.method): r for r in outcome.results}
        for si in range(2):
            assert by_method[(si, "shh")].ok
            failed = by_method[(si, "failing")]
            assert not failed.ok
            assert "synthetic failure" in failed.error
        assert outcome.n_failed == 2

    def test_timeout_does_not_block_the_sweep(self, batch_systems):
        runner = BatchRunner(
            backend="thread",
            max_workers=2,
            task_timeout=0.05,
            registry=_custom_registry(),
        )
        start = time.perf_counter()
        outcome = runner.run(
            batch_systems[:1],
            methods=("slow",),
            method_options={"slow": {"duration": 3.0}},
        )
        # run() must return at the timeout, not after the 3 s sleep.
        assert time.perf_counter() - start < 2.0
        assert outcome.results[0].timed_out

    def test_thread_task_timeout_marks_cell(self, batch_systems):
        runner = BatchRunner(
            backend="thread",
            max_workers=2,
            task_timeout=0.05,
            registry=_custom_registry(),
        )
        outcome = runner.run(
            batch_systems[:1],
            methods=("slow",),
            method_options={"slow": {"duration": 0.6}},
        )
        assert outcome.n_timed_out == 1
        assert outcome.results[0].timed_out
        assert outcome.results[0].is_passive is None


class TestCacheSharingAcrossCells:
    def test_serial_sweep_shares_decompositions(self, batch_systems):
        cache = DecompositionCache()
        runner = BatchRunner(backend="serial", cache=cache)
        methods = ("auto", "proposed", "weierstrass")
        outcome = runner.run(batch_systems, methods=methods)
        assert all(r.is_passive for r in outcome.results)
        n_systems = len(batch_systems)
        # One chain analysis and one Weierstrass form per system...
        assert outcome.cache_stats.misses_for("chain_data") == n_systems
        assert outcome.cache_stats.misses_for("weierstrass_form") == n_systems
        # ...reused by the auto profile and the two SHH runs.
        assert outcome.cache_stats.hits_for("chain_data") == 2 * n_systems

    def test_outcome_stats_are_per_sweep(self, batch_systems):
        runner = BatchRunner(backend="serial")
        first = runner.run(batch_systems, methods=("proposed",))
        second = runner.run(batch_systems, methods=("proposed",))
        n_systems = len(batch_systems)
        # The first sweep computed everything; the second ran fully warm and
        # its outcome must not inherit the first sweep's counters (nor mutate
        # the first outcome retroactively).
        assert first.cache_stats.misses_for("chain_data") == n_systems
        assert second.cache_stats.misses_for("chain_data") == 0
        assert second.cache_stats.hits_for("chain_data") == n_systems
        assert first.cache_stats.misses_for("chain_data") == n_systems
