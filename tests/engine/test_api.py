"""Tests for the engine's top-level ``check_passivity`` API.

Includes the PR's acceptance checks: every registered method runs end-to-end
through the engine, cached and uncached SHH verdicts agree on the seed RLC
workloads, and a batch sweep over a Table-1-style order grid performs strictly
fewer Weierstrass/chain-data computations than ``methods x systems``.
"""

import pytest

from repro.circuits import (
    impulsive_rlc_ladder,
    paper_benchmark_model,
    rc_line,
    rlc_ladder,
)
from repro.engine import (
    BatchRunner,
    DecompositionCache,
    MethodRegistry,
    MethodSpec,
    UnknownMethodError,
    check_passivity,
    select_method,
)
from repro.passivity import shh_passivity_test
from repro.passivity.result import PassivityReport


class TestExplicitDispatch:
    @pytest.mark.parametrize("method", ["shh", "proposed", "lmi", "weierstrass", "gare"])
    def test_all_registered_methods_run_end_to_end(self, method):
        # rlc_ladder(3) is admissible and passive, so even the restricted
        # GARE test and the marginally-feasible LMI test reach a verdict.
        system = rlc_ladder(3).system
        report = check_passivity(system, method=method, cache=DecompositionCache())
        assert isinstance(report, PassivityReport)
        assert report.is_passive, (method, report.failure_reason)

    def test_proposed_alias_reports_shh(self, small_impulsive_ladder):
        report = check_passivity(small_impulsive_ladder, method="proposed")
        assert report.method == "shh"
        assert report.is_passive

    def test_unknown_method_raises(self, small_rc_line):
        with pytest.raises(UnknownMethodError):
            check_passivity(small_rc_line, method="nonsense")

    def test_nonpassive_system_rejected(self, nonpassive_proper_system):
        report = check_passivity(nonpassive_proper_system, method="shh")
        assert not report.is_passive

    def test_engine_diagnostics_recorded(self, small_rc_line):
        report = check_passivity(small_rc_line, method="weierstrass")
        assert report.diagnostics["engine"]["method"] == "weierstrass"
        assert report.diagnostics["engine"]["auto"] is False


class TestSparseAutoSelection:
    def test_auto_selects_shh_sparse_for_large_sparse_mna_systems(self):
        from repro.circuits import rc_grid
        from repro.engine import SPARSE_AUTO_MIN_ORDER, select_method

        system = rc_grid(16, 16, sparse=True).system
        assert system.order >= SPARSE_AUTO_MIN_ORDER
        assert select_method(system).name == "shh-sparse"
        report = check_passivity(system, method="auto")
        assert report.method == "shh-sparse"
        assert report.is_passive, report.failure_reason
        assert report.diagnostics["engine"]["auto"] is True

    def test_auto_does_not_densify_large_sparse_systems(self):
        from repro.circuits import rc_grid

        system = rc_grid(16, 16, sparse=True).system
        check_passivity(system, method="auto")
        # The dense views were never materialized by profiling or dispatch.
        assert "e" not in system.__dict__
        assert "a" not in system.__dict__

    def test_small_sparse_systems_keep_the_dense_dispatch(self):
        from repro.circuits import rc_grid
        from repro.engine import SPARSE_AUTO_MIN_ORDER, select_method

        system = rc_grid(4, 4, sparse=True).system
        assert system.order < SPARSE_AUTO_MIN_ORDER
        assert select_method(system).name in ("shh", "gare")

    def test_dense_systems_keep_the_dense_dispatch_at_any_order(self):
        from repro.circuits import rc_line

        system = rc_line(12).system
        assert not system.is_sparse
        from repro.engine import select_method

        assert select_method(system).name in ("shh", "gare")

    def test_auto_falls_back_when_sparse_method_unregistered(self):
        from repro.circuits import rc_grid
        from repro.engine import DEFAULT_REGISTRY, select_method

        registry = MethodRegistry()
        for name in DEFAULT_REGISTRY.names():
            if name != "shh-sparse":
                registry.register(DEFAULT_REGISTRY.resolve(name))
        system = rc_grid(16, 16, sparse=True).system
        assert select_method(system, registry=registry).name in ("shh", "gare")


class TestBatchRunnerSparseWiring:
    def test_sparse_method_in_a_batch_sweep(self):
        from repro.circuits import random_coupled_bus, rc_grid

        systems = [
            rc_grid(4, 4, sparse=True).system,
            random_coupled_bus(10, seed=3, sparse=True).system,
        ]
        runner = BatchRunner(backend="serial", cache=DecompositionCache())
        outcome = runner.run(systems, methods=("shh-sparse", "shh"))
        verdicts = outcome.verdicts()
        for index in range(len(systems)):
            assert verdicts[(index, "shh-sparse")] is True
            assert verdicts[(index, "shh-sparse")] == verdicts[(index, "shh")]

    def test_sparse_systems_survive_the_process_backend(self):
        # Sparse-backed DescriptorSystems must pickle across the pool.
        from repro.circuits import rc_grid

        systems = [rc_grid(4, 4, sparse=True).system]
        runner = BatchRunner(backend="process", max_workers=2)
        outcome = runner.run(systems, methods=("shh-sparse",))
        assert outcome.results[0].is_passive is True


class TestIrregularSystems:
    @pytest.fixture
    def singular_pencil_system(self):
        import numpy as np
        from repro.descriptor import DescriptorSystem

        return DescriptorSystem(
            np.zeros((1, 1)), np.zeros((1, 1)), np.ones((1, 1)), np.ones((1, 1))
        )

    @pytest.mark.parametrize("method", ["shh", "weierstrass"])
    def test_cache_does_not_change_failure_mode(self, singular_pencil_system, method):
        # A singular pencil must yield the test's graceful validation report,
        # with and without a cache — the cached decomposition must not leak
        # SingularPencilError through check_passivity.
        bare = check_passivity(singular_pencil_system, method=method)
        cached = check_passivity(
            singular_pencil_system, method=method, cache=DecompositionCache()
        )
        assert bare.is_passive is cached.is_passive is False
        assert bare.failure_reason == cached.failure_reason


class TestAutoSelection:
    def test_impulsive_system_uses_shh(self, small_impulsive_ladder):
        cache = DecompositionCache()
        assert select_method(small_impulsive_ladder, cache=cache).name == "shh"
        report = check_passivity(small_impulsive_ladder, method="auto", cache=cache)
        assert report.method == "shh"
        assert report.is_passive

    def test_admissible_system_uses_gare(self, small_rc_line):
        cache = DecompositionCache()
        assert select_method(small_rc_line, cache=cache).name == "gare"
        report = check_passivity(small_rc_line, method="auto", cache=cache)
        assert report.method == "gare"
        assert report.is_passive

    def test_auto_without_gare_falls_back_to_shh(self, small_rc_line):
        from repro.engine.registry import DEFAULT_REGISTRY

        registry = MethodRegistry()
        registry.register(DEFAULT_REGISTRY.resolve("shh"))
        report = check_passivity(small_rc_line, method="auto", registry=registry)
        assert report.method == "shh"
        assert report.is_passive


class TestOrderLimits:
    def test_lmi_refused_above_order_limit(self):
        system = rc_line(70).system  # order > 60, far beyond the LMI limit
        report = check_passivity(system, method="lmi")
        assert not report.is_passive
        assert "order limit" in report.failure_reason
        assert report.diagnostics["engine"]["skipped"] is True
        # The refusal is instantaneous — the SDP never started.
        assert report.elapsed_seconds < 0.5

    def test_explicit_order_limit_overrides_spec(self, small_rc_line):
        def instant(system, tol, cache, **options):
            return PassivityReport(is_passive=True, method="instant")

        registry = MethodRegistry()
        registry.register(
            MethodSpec(
                name="instant", runner=instant, description="", order_limit=1
            )
        )
        refused = check_passivity(small_rc_line, method="instant", registry=registry)
        assert not refused.is_passive
        forced = check_passivity(
            small_rc_line, method="instant", registry=registry, order_limit=None
        )
        assert forced.is_passive

    def test_order_limit_is_engine_level_for_every_method(self, small_rc_line):
        # The documented override must work on methods whose runner has no
        # order_limit parameter (it is consumed by the engine, not forwarded).
        report = check_passivity(small_rc_line, method="shh", order_limit=None)
        assert report.is_passive
        tightened = check_passivity(small_rc_line, method="shh", order_limit=1)
        assert not tightened.is_passive
        assert tightened.diagnostics["engine"]["skipped"] is True


class TestAdmissibilityPrescreen:
    def test_gare_prescreen_reuses_profile(self, small_impulsive_ladder):
        cache = DecompositionCache()
        report = check_passivity(small_impulsive_ladder, method="gare", cache=cache)
        assert not report.is_passive
        assert "admissible" in report.failure_reason
        # The refusal came from the cached chain analysis, not a fresh
        # spectral admissibility check.
        assert cache.stats.misses_for("chain_data") == 1
        assert cache.stats.misses_for("gare_state_space") == 0

    def test_gare_without_cache_matches_direct_test(self, small_impulsive_ladder):
        from repro.passivity import gare_passivity_test

        direct = gare_passivity_test(small_impulsive_ladder)
        engine = check_passivity(small_impulsive_ladder, method="gare")
        assert engine.is_passive == direct.is_passive is False


class TestCachedUncachedAgreement:
    """Acceptance: cached and uncached SHH verdicts agree on seed workloads."""

    @pytest.mark.parametrize(
        "make_system",
        [
            lambda: rc_line(5).system,
            lambda: rlc_ladder(4).system,
            lambda: impulsive_rlc_ladder(4, 1).system,
            lambda: impulsive_rlc_ladder(
                3, 1, series_port_inductor=0.5
            ).system,
            lambda: paper_benchmark_model(12, n_impulsive_stubs=1).system,
        ],
    )
    def test_shh_verdict_unchanged_by_caching(self, make_system):
        system = make_system()
        uncached = shh_passivity_test(system)
        cache = DecompositionCache()
        warm = check_passivity(system, method="shh", cache=cache)
        hot = check_passivity(system, method="shh", cache=cache)
        assert warm.is_passive == uncached.is_passive
        assert hot.is_passive == uncached.is_passive
        assert warm.failure_reason == uncached.failure_reason
        # The second run reused the chain analysis.
        assert cache.stats.hits_for("chain_data") >= 1
        assert cache.stats.misses_for("chain_data") == 1


class TestBatchCacheAcceptance:
    """Acceptance: a cached sweep over the Table-1 order grid performs strictly
    fewer Weierstrass/chain-data computations than methods x systems."""

    def test_sweep_shares_decompositions(self):
        orders = (12, 16, 20)
        systems = [
            paper_benchmark_model(order, n_impulsive_stubs=1).system
            for order in orders
        ]
        methods = ("auto", "proposed", "weierstrass")
        runner = BatchRunner(backend="serial", cache=DecompositionCache())
        outcome = runner.run(systems, methods=methods)
        assert all(r.is_passive for r in outcome.results)

        stats = outcome.cache_stats
        n_expensive = stats.misses_for("chain_data") + stats.misses_for(
            "weierstrass_form"
        )
        assert n_expensive < len(methods) * len(systems)
        assert stats.hits_for("chain_data") > 0
