"""Tests for the perturbation-aware incremental re-certification tier.

Covers the structured delta fingerprint, the nearest-ancestor lookup, the
certified update engine (:func:`attempt_incremental` hit, fallback and
provenance accounting), the persisted update lineage, and the headline
QZ regression the ISSUE pins: an N-corner sweep costs one cold QZ
factorization plus at most one per counted fallback.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.bench import QZCounter
from repro.circuits import perturb_system, rlc_grid, rlc_grid_corners
from repro.engine import (
    BatchRunner,
    DEFAULT_INCREMENTAL_CONFIG,
    DecompositionCache,
    DeltaFingerprint,
    IncrementalConfig,
    UpdateLineage,
    attempt_incremental,
    check_passivity,
    delta_distance,
    structured_delta,
)
from repro.engine.cache import (
    GARE_RICCATI,
    GARE_STATE_SPACE,
    PENCIL_SPECTRUM,
    SYSTEM_PROFILE,
)
from repro.engine.incremental import (
    _instance_form,
    _reuse_form,
    _spectral_norm_bound,
)
from repro.store import DecompositionStore


def _damped_grid(rows=4, cols=4):
    """Dense admissible grid model with comfortable passivity margins."""
    return rlc_grid(
        rows, cols, series_resistance=0.8, shunt_conductance=0.1, sparse=False
    ).system


@pytest.fixture(scope="module")
def nominal():
    return _damped_grid()


@pytest.fixture(scope="module")
def corner(nominal):
    return perturb_system(nominal, 2e-4, seed=7, pattern="a")


class TestDeltaFingerprint:
    def test_identical_systems_have_zero_distance(self, nominal):
        delta = structured_delta(nominal, nominal)
        assert isinstance(delta, DeltaFingerprint)
        assert delta.distance == 0.0
        assert all(d.norm == 0.0 and d.nnz == 0 for d in delta.deltas.values())
        assert delta.ancestor_fingerprint == delta.child_fingerprint

    def test_a_only_perturbation_localizes_to_a(self, nominal, corner):
        delta = structured_delta(nominal, corner)
        assert set(delta.deltas) == {"E", "A", "B", "C", "D"}
        assert delta.deltas["A"].norm > 0.0
        assert delta.deltas["A"].nnz > 0
        for name in ("E", "B", "C", "D"):
            assert delta.deltas[name].norm == 0.0
            assert delta.deltas[name].rank == 0
        assert delta.distance == pytest.approx(delta.deltas["A"].rel_norm)
        assert delta.ancestor_fingerprint != delta.child_fingerprint

    def test_pattern_signature_recognizes_sweep_families(self, nominal):
        # Same touched entries, different magnitudes -> same signature.
        small = structured_delta(nominal, perturb_system(nominal, 1e-4, seed=3))
        large = structured_delta(nominal, perturb_system(nominal, 1e-2, seed=3))
        other = structured_delta(nominal, perturb_system(nominal, 1e-4, pattern="b"))
        assert small.pattern_signature == large.pattern_signature
        assert small.pattern_signature != other.pattern_signature

    def test_ranks_false_skips_the_rank_svd(self, nominal, corner):
        delta = structured_delta(nominal, corner, ranks=False)
        assert delta.deltas["A"].rank == -1
        assert delta.deltas["E"].rank == 0  # untouched matrices stay exact

    def test_delta_distance_matches_fingerprint_distance(self, nominal, corner):
        assert delta_distance(nominal, corner) == pytest.approx(
            structured_delta(nominal, corner).distance
        )

    def test_distance_scales_with_perturbation(self, nominal):
        near = perturb_system(nominal, 1e-5, seed=1)
        far = perturb_system(nominal, 1e-2, seed=1)
        assert delta_distance(nominal, near) < delta_distance(nominal, far)


class TestSpectralNormBound:
    def test_upper_bounds_the_exact_two_norm(self, rng):
        for _ in range(20):
            matrix = rng.standard_normal((12, 9))
            assert _spectral_norm_bound(matrix) >= np.linalg.norm(matrix, 2) - 1e-12

    def test_zero_matrix(self):
        assert _spectral_norm_bound(np.zeros((5, 5))) == 0.0

    def test_tight_on_sparse_perturbations(self, rng):
        # The min(Frobenius, Hoelder) bound must stay within a small factor
        # on the sweep workload's delta shape (sparse entrywise noise), or
        # every corner would trip the safety gate and fall back.
        matrix = rng.standard_normal((30, 30))
        matrix[np.abs(matrix) < 1.0] = 0.0
        exact = np.linalg.norm(matrix, 2)
        assert _spectral_norm_bound(matrix) <= 6.0 * exact


class TestReuseForm:
    def test_e_unchanged_reuse_matches_fresh_form(self, nominal, corner):
        from repro.config import DEFAULT_TOLERANCES

        fresh = _instance_form(corner, DEFAULT_TOLERANCES)
        reused = _reuse_form(
            corner, _instance_form(nominal, DEFAULT_TOLERANCES), DEFAULT_TOLERANCES
        )
        assert reused.rank == fresh.rank
        # Both are valid SVD-coordinate forms of the same system: the
        # transformed pencils agree up to the (orthogonal) basis choice, and
        # reconstructing through the reused factors recovers the child.
        left, right = reused.left, reused.right
        assert np.allclose(left.T @ corner.e @ right, reused.system.e)
        assert np.allclose(left.T @ corner.a @ right, reused.system.a)


class TestNearestAncestor:
    def test_nearest_prefers_the_closest_registered_ancestor(self, nominal):
        cache = DecompositionCache()
        near = perturb_system(nominal, 1e-4, seed=11)
        far = perturb_system(nominal, 5e-2, seed=12)
        cache.spectral(nominal)
        cache.spectral(far)
        child = perturb_system(nominal, 2e-4, seed=13)
        found = cache.nearest(child, kinds=(PENCIL_SPECTRUM,))
        assert found is not None
        ancestor, distance = found
        assert delta_distance(ancestor, child) == pytest.approx(distance)
        assert distance == pytest.approx(delta_distance(nominal, child))
        assert near is not ancestor  # near was never cached

    def test_max_distance_filters_every_candidate(self, nominal):
        cache = DecompositionCache()
        cache.spectral(nominal)
        child = perturb_system(nominal, 1e-3, seed=3)
        assert cache.nearest(child, max_distance=1e-12) is None

    def test_empty_cache_has_no_ancestor(self, nominal):
        assert DecompositionCache().nearest(nominal) is None


class TestAttemptIncremental:
    def _warm_cache(self, nominal):
        cache = DecompositionCache()
        cold = check_passivity(nominal, method="gare", cache=cache)
        assert cold.is_passive, cold.failure_reason
        return cache

    def test_hit_matches_cold_verdict_and_counts(self, nominal, corner):
        cache = self._warm_cache(nominal)
        report = attempt_incremental(corner, nominal, cache)
        assert report is not None
        cold = check_passivity(corner, method="gare")
        assert report.is_passive == cold.is_passive
        assert cache.stats.incremental_hits == 1
        assert cache.stats.incremental_fallbacks == 0
        assert cache.stats.update_residual_max >= 0.0
        provenance = report.diagnostics["incremental"]
        assert provenance["mechanism"].startswith("spectral")
        assert provenance["distance"] > 0.0

    def test_hit_seeds_certified_intermediates_and_lineage(self, nominal, corner):
        cache = self._warm_cache(nominal)
        assert attempt_incremental(corner, nominal, cache) is not None
        for kind in (GARE_STATE_SPACE, GARE_RICCATI, SYSTEM_PROFILE):
            assert cache.contains(corner, kind)
        lineage = cache.update_lineage(corner)
        assert isinstance(lineage, UpdateLineage)
        assert lineage.certified
        assert lineage.delta_norms["A"] > 0.0
        assert lineage.ancestor_fingerprint != lineage.child_fingerprint

    def test_distance_gate_counts_a_fallback(self, nominal, corner):
        cache = self._warm_cache(nominal)
        tight = dataclasses.replace(DEFAULT_INCREMENTAL_CONFIG, max_distance=1e-12)
        assert attempt_incremental(corner, nominal, cache, config=tight) is None
        assert cache.stats.incremental_fallbacks == 1
        assert cache.stats.incremental_hits == 0

    def test_uncached_ancestor_counts_a_fallback(self, nominal, corner):
        cache = DecompositionCache()  # ancestor never factorized
        assert attempt_incremental(corner, nominal, cache) is None
        assert cache.stats.incremental_fallbacks == 1

    def test_identical_system_is_not_an_update(self, nominal):
        cache = self._warm_cache(nominal)
        assert attempt_incremental(nominal, nominal, cache) is None
        assert cache.stats.incremental_hits == 0
        assert cache.stats.incremental_fallbacks == 0

    def test_auto_with_empty_cache_is_silent(self, nominal, corner):
        cache = DecompositionCache()
        assert attempt_incremental(corner, "auto", cache) is None
        assert cache.stats.incremental_fallbacks == 0

    def test_auto_resolves_the_registered_ancestor(self, nominal, corner):
        cache = self._warm_cache(nominal)
        report = attempt_incremental(corner, "auto", cache)
        assert report is not None
        assert cache.stats.incremental_hits == 1

    def test_bad_ancestor_string_raises(self, nominal, corner):
        with pytest.raises(ValueError, match="auto"):
            attempt_incremental(corner, "nearest", DecompositionCache())


class TestCheckPassivityAncestor:
    def test_ancestor_verdict_agrees_and_reports_incremental(self, nominal, corner):
        cache = DecompositionCache()
        cold_root = check_passivity(nominal, method="gare", cache=cache)
        warm = check_passivity(corner, method="gare", cache=cache, ancestor=nominal)
        cold = check_passivity(corner, method="gare")
        assert warm.is_passive == cold.is_passive == cold_root.is_passive
        assert warm.diagnostics["engine"]["incremental"] is True
        assert warm.diagnostics["engine"]["factorizations"] == 0
        assert "incremental" in warm.diagnostics

    def test_fallback_goes_cold_with_identical_verdict(self, nominal, corner):
        cache = DecompositionCache()
        check_passivity(nominal, method="gare", cache=cache)
        tight = dataclasses.replace(DEFAULT_INCREMENTAL_CONFIG, max_distance=1e-12)
        warm = check_passivity(
            corner,
            method="gare",
            cache=cache,
            ancestor=nominal,
            incremental_config=tight,
        )
        cold = check_passivity(corner, method="gare")
        assert warm.is_passive == cold.is_passive
        assert warm.diagnostics["engine"]["incremental"] is False
        assert cache.stats.incremental_fallbacks == 1


class TestLineagePersistence:
    def test_lineage_survives_a_store_restart(self, tmp_path, nominal, corner):
        store_path = tmp_path / "store"
        cache = DecompositionCache(store=DecompositionStore(store_path))
        check_passivity(nominal, method="gare", cache=cache)
        warm = check_passivity(corner, method="gare", cache=cache, ancestor=nominal)
        assert warm.diagnostics["engine"]["incremental"] is True
        original = cache.update_lineage(corner)
        assert original is not None

        # A fresh cache on the same store rehydrates the lineage through the
        # update_lineage codec (meta-only entry).
        reopened = DecompositionCache(store=DecompositionStore(store_path))
        lineage = reopened.update_lineage(corner)
        assert isinstance(lineage, UpdateLineage)
        assert lineage.mechanism == original.mechanism
        assert lineage.distance == pytest.approx(original.distance)
        assert lineage.delta_norms == pytest.approx(original.delta_norms)
        assert lineage.newton_steps == original.newton_steps
        assert lineage.certified is True

    def test_plain_seed_stays_in_l1(self, tmp_path, nominal):
        store_path = tmp_path / "store"
        cache = DecompositionCache(store=DecompositionStore(store_path))
        context = DecompositionCache().spectral(nominal)
        cache.seed(nominal, PENCIL_SPECTRUM, context)  # persist defaults False
        reopened = DecompositionCache(store=DecompositionStore(store_path))
        assert not reopened.contains(nominal, PENCIL_SPECTRUM)


class TestSweepQZRegression:
    """ISSUE acceptance: N-corner sweep => 1 cold QZ + <= fallback recomputes."""

    def test_serial_sweep_is_one_cold_qz(self):
        family = rlc_grid_corners(4, 4, n_corners=8, scale=2e-4, seed=0, pattern="a")
        runner = BatchRunner(backend="serial", incremental="sweep")
        with QZCounter() as counter:
            outcome = runner.run(family, methods=("gare",))
        assert all(r.ok for r in outcome.results)
        assert all(r.is_passive for r in outcome.results)
        assert outcome.n_chains == 1
        assert outcome.n_chained_jobs == len(family)
        fallbacks = outcome.cache_stats.incremental_fallbacks
        assert outcome.cache_stats.incremental_hits == len(family) - 1 - fallbacks
        assert counter.total <= 1 + fallbacks, (
            f"sweep performed {counter.total} QZ factorizations "
            f"(expected 1 cold + <= {fallbacks} fallback recomputes)"
        )

    def test_sweep_verdicts_match_cold_mode(self):
        family = rlc_grid_corners(4, 4, n_corners=6, scale=2e-4, seed=5, pattern="a")
        warm = BatchRunner(backend="serial", incremental="sweep").run(
            family, methods=("gare",)
        )
        cold = BatchRunner(backend="serial").run(family, methods=("gare",))
        assert warm.verdicts() == cold.verdicts()
        assert cold.cache_stats.incremental_hits == 0

    def test_off_mode_plans_no_chains(self):
        family = rlc_grid_corners(4, 4, n_corners=3, scale=2e-4, seed=0)
        outcome = BatchRunner(backend="serial").run(family, methods=("gare",))
        assert outcome.n_chains == 0
        assert outcome.n_chained_jobs == 0

    def test_thread_sweep_matches_serial(self):
        family = rlc_grid_corners(4, 4, n_corners=6, scale=2e-4, seed=9)
        threaded = BatchRunner(
            backend="thread", max_workers=4, incremental="sweep"
        ).run(family, methods=("gare",))
        serial = BatchRunner(backend="serial", incremental="sweep").run(
            family, methods=("gare",)
        )
        assert threaded.verdicts() == serial.verdicts()
        assert threaded.n_chains == 1
