"""Micro-batch execution and shared-memory transport of the process backend.

Verdicts must be independent of policy and transport: a batched shm sweep, a
batched pickle sweep and a serial sweep of the same fleet agree cell for
cell.  The telemetry (transport label, chunk counts, occupancy, shm bytes)
and the exactness of the merged cache counters under batching are pinned
here too.
"""

import os

import numpy as np
import pytest

from repro.circuits import rlc_ladder
from repro.engine.runner import BatchRunner
from repro.engine.shm import SHM_PREFIX, shm_available

SHM_DIR = "/dev/shm"


def repro_segments():
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(SHM_PREFIX))


def small_fleet(count=8, orders=(2, 3, 4)):
    return [rlc_ladder(orders[k % len(orders)]).system for k in range(count)]


def assert_same_verdicts(outcome, reference):
    assert outcome.verdicts() == reference.verdicts()
    for got, want in zip(outcome.results, reference.results):
        assert (got.system_index, got.method) == (want.system_index, want.method)
        assert got.error == want.error
        assert got.timed_out == want.timed_out


class TestMicroBatching:
    def test_forced_batching_matches_serial(self):
        systems = small_fleet(6)
        reference = BatchRunner(backend="serial").run(systems, methods=("gare",))
        runner = BatchRunner(
            backend="process", batch_small_systems=True, batch_size=3
        )
        outcome = runner.run(systems, methods=("gare",))
        assert_same_verdicts(outcome, reference)
        assert outcome.n_batches == 2
        assert outcome.n_batched_jobs == 6
        assert outcome.batch_occupancy == 3.0

    def test_auto_policy_stays_off_for_tiny_sweeps(self):
        systems = small_fleet(3)
        outcome = BatchRunner(backend="process").run(systems, methods=("gare",))
        assert outcome.n_batches == 0
        assert outcome.n_batched_jobs == 0
        assert outcome.batch_occupancy == 0.0

    def test_auto_policy_engages_on_large_small_system_fleets(self):
        workers = BatchRunner(backend="process", max_workers=1)
        threshold = max(8, 2 * 1)
        systems = small_fleet(threshold)
        outcome = workers.run(systems, methods=("gare",))
        assert outcome.n_batches >= 1
        assert outcome.n_batched_jobs == threshold

    def test_large_systems_stay_on_per_system_path(self):
        systems = small_fleet(8)
        runner = BatchRunner(
            backend="process", batch_small_systems=True, small_system_order=1
        )
        reference = BatchRunner(backend="serial").run(systems, methods=("gare",))
        outcome = runner.run(systems, methods=("gare",))
        # Every order here exceeds the (artificially tiny) small-system limit.
        assert outcome.n_batches == 0
        assert_same_verdicts(outcome, reference)

    def test_chunk_merges_stats_once_keeping_counters_exact(self):
        # Five copies of one system in a single chunk share the chunk's
        # worker-local cache: the sweep must account exactly one
        # factorization chain, not one per job.
        system = rlc_ladder(3).system
        runner = BatchRunner(
            backend="process",
            batch_small_systems=True,
            batch_size=5,
            precompute_spectral=False,
        )
        outcome = runner.run([system] * 5, methods=("proposed",))
        assert outcome.n_batches == 1
        assert outcome.n_batched_jobs == 5
        serial = BatchRunner(backend="serial", precompute_spectral=False)
        reference = serial.run([system] * 5, methods=("proposed",))
        assert_same_verdicts(outcome, reference)
        # One shared cache on both paths: identical factorization counts.
        assert (
            outcome.cache_stats.factorizations
            == reference.cache_stats.factorizations
        )
        assert outcome.cache_stats.hits == reference.cache_stats.hits
        assert outcome.cache_stats.misses == reference.cache_stats.misses

    def test_chunk_wait_scales_with_chunk_size(self, monkeypatch):
        # task_timeout budgets one system; a chunk of k systems must be
        # waited on for k * task_timeout, or callers with per-system
        # timeouts tuned near real job cost would see whole chunks
        # spuriously timed out after enabling batching.
        from concurrent.futures import Future

        captured = []
        original = Future.result

        def spy(self, timeout=None):
            captured.append(timeout)
            return original(self, timeout=timeout)

        monkeypatch.setattr(Future, "result", spy)
        runner = BatchRunner(
            backend="process",
            batch_small_systems=True,
            batch_size=3,
            task_timeout=120.0,
        )
        outcome = runner.run(small_fleet(6), methods=("gare",))
        assert outcome.n_timed_out == 0
        assert captured == [360.0, 360.0]

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            BatchRunner(batch_small_systems="yes")
        with pytest.raises(ValueError):
            BatchRunner(transport="carrier-pigeon")


class TestTransport:
    @pytest.mark.skipif(
        not shm_available() or not os.path.isdir(SHM_DIR),
        reason="POSIX shared memory not usable here",
    )
    def test_shm_transport_ships_batches_and_leaves_no_segments(self):
        # Order-76 systems: big enough that a 3-job chunk clears the arena's
        # inline threshold and actually rides a segment.
        before = repro_segments()
        systems = small_fleet(6, orders=(25,))
        runner = BatchRunner(
            backend="process",
            transport="shm",
            batch_small_systems=True,
            batch_size=3,
        )
        reference = BatchRunner(backend="serial").run(systems, methods=("gare",))
        outcome = runner.run(systems, methods=("gare",))
        assert outcome.transport == "shm"
        assert outcome.shm_bytes > 0
        assert_same_verdicts(outcome, reference)
        assert repro_segments() == before

    def test_pickle_transport_forced(self):
        systems = small_fleet(6)
        runner = BatchRunner(
            backend="process",
            transport="pickle",
            batch_small_systems=True,
            batch_size=3,
        )
        outcome = runner.run(systems, methods=("gare",))
        assert outcome.transport == "pickle"
        assert outcome.shm_bytes == 0

    def test_disable_env_degrades_shm_to_pickle(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        systems = small_fleet(6)
        runner = BatchRunner(
            backend="process",
            transport="shm",
            batch_small_systems=True,
            batch_size=3,
        )
        reference = BatchRunner(backend="serial").run(systems, methods=("gare",))
        outcome = runner.run(systems, methods=("gare",))
        assert outcome.transport == "pickle"
        assert outcome.shm_bytes == 0
        assert_same_verdicts(outcome, reference)

    def test_local_backends_report_no_transport(self):
        systems = small_fleet(2)
        outcome = BatchRunner(backend="serial").run(systems, methods=("gare",))
        assert outcome.transport == "none"
        assert outcome.shm_bytes == 0

    @pytest.mark.skipif(
        not shm_available() or not os.path.isdir(SHM_DIR),
        reason="POSIX shared memory not usable here",
    )
    def test_precomputed_contexts_ride_shm(self):
        # Duplicated systems make the spectral hoist fire; with shm the
        # context bundle must travel by segment, not down the pipe.
        system = rlc_ladder(40).system
        runner = BatchRunner(backend="process", transport="shm")
        outcome = runner.run([system, system], methods=("proposed",))
        assert outcome.transport == "shm"
        assert outcome.shm_bytes > 0
        verdicts = set(outcome.verdicts().values())
        assert verdicts == {True}
