"""Lifecycle tests for the shared-memory array transport.

The critical property is *no leaked segments*: every test that creates
shm-backed shipments sweeps ``/dev/shm`` for names carrying the engine's
``repro-shm-`` prefix afterwards — on normal release, on arena close, on
forgotten arenas cleaned by the atexit hook, and when a worker that mapped a
segment crashes hard.
"""

import gc
import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.config import DEFAULT_TOLERANCES
from repro.engine.cache import PENCIL_SPECTRUM
from repro.engine.shm import (
    SHM_PREFIX,
    ArrayArena,
    ArrayShipment,
    load_context,
    load_entry,
    ship_context,
    ship_entry,
    shm_available,
)
from repro.linalg.pencil import compute_spectral_context

SHM_DIR = "/dev/shm"

needs_shm = pytest.mark.skipif(
    not shm_available() or not os.path.isdir(SHM_DIR),
    reason="POSIX shared memory not usable here",
)


def repro_segments():
    """Names of live engine-owned segments, by /dev/shm sweep."""
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(SHM_PREFIX))


@pytest.fixture
def arrays():
    rng = np.random.default_rng(7)
    return {
        "q": rng.standard_normal((40, 40)),
        "alpha": rng.standard_normal(40) + 1j * rng.standard_normal(40),
        "header": np.array([1, 2, 3], dtype=np.int64),
    }


@pytest.fixture(autouse=True)
def no_leaks_after_test():
    before = repro_segments()
    yield
    assert repro_segments() == before, "test leaked shared-memory segments"


class TestShipmentRoundTrip:
    @needs_shm
    def test_shm_round_trip_is_bitwise(self, arrays):
        with ArrayArena(min_bytes=0) as arena:
            shipment = arena.ship(arrays, meta={"tag": "t"})
            assert shipment.via_shm
            assert shipment.wire_bytes == 0
            assert arena.active_segments == 1
            # The descriptor, not the data, crosses the pipe.
            assert len(pickle.dumps(shipment)) < 2_000
            loaded = pickle.loads(pickle.dumps(shipment)).load()
            for key, value in arrays.items():
                assert np.array_equal(loaded[key], value)
                assert not loaded[key].flags.writeable
            copied = shipment.load(copy=True)
            assert copied["q"].flags.writeable
            arena.release(shipment)
            assert arena.active_segments == 0

    def test_inline_below_min_bytes(self, arrays):
        with ArrayArena(min_bytes=1 << 30) as arena:
            shipment = arena.ship(arrays)
            assert not shipment.via_shm
            assert shipment.wire_bytes > 0
            loaded = pickle.loads(pickle.dumps(shipment)).load()
            for key, value in arrays.items():
                assert np.array_equal(loaded[key], value)
            arena.release(shipment)  # no-op, must not raise

    def test_env_kill_switch_forces_inline(self, arrays, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        with ArrayArena(min_bytes=0) as arena:
            shipment = arena.ship(arrays)
            assert not shipment.via_shm
            assert arena.active_segments == 0

    @needs_shm
    def test_attachment_closes_when_views_die(self, arrays):
        # A zero-copy load must not pin the mapping for process lifetime:
        # in a persistent pool worker that would leak one fd (and keep the
        # unlinked segment's pages resident) per dispatch.  The fd must
        # close once the last view is collected.
        def segment_fds(name):
            fds = []
            for fd in os.listdir("/proc/self/fd"):
                try:
                    target = os.readlink(f"/proc/self/fd/{fd}")
                except OSError:
                    continue
                if name in target:
                    fds.append(fd)
            return fds

        with ArrayArena(min_bytes=0) as arena:
            shipment = arena.ship(arrays)
            owner_fds = len(segment_fds(shipment.segment))
            loaded = pickle.loads(pickle.dumps(shipment)).load()
            # The attach holds extra fds (SharedMemory's fd + mmap's dup)...
            assert len(segment_fds(shipment.segment)) > owner_fds
            del loaded
            gc.collect()
            # ...all returned once the views are gone.
            assert len(segment_fds(shipment.segment)) == owner_fds
            arena.release(shipment)

    @needs_shm
    def test_concurrent_arenas_never_collide_on_names(self, arrays):
        # Two live arenas in one process (service arena + in-process runner)
        # must not race for the same segment name — a collision silently
        # degrades the loser to inline pickle.
        with ArrayArena(min_bytes=0) as first, ArrayArena(min_bytes=0) as second:
            a = first.ship(arrays)
            b = second.ship(arrays)
            assert a.via_shm and b.via_shm
            assert a.segment != b.segment
            first.release(a)
            second.release(b)

    @needs_shm
    def test_refcounted_fanout(self, arrays):
        with ArrayArena(min_bytes=0) as arena:
            shipment = arena.ship(arrays)
            arena.retain(shipment)
            arena.release(shipment)
            assert arena.active_segments == 1  # one reference still out
            arena.release(shipment)
            assert arena.active_segments == 0
            arena.release(shipment)  # double release is a no-op


class TestKindAwareHelpers:
    @needs_shm
    def test_spectral_context_ships_zero_copy(self):
        rng = np.random.default_rng(11)
        n = 30
        context = compute_spectral_context(
            np.eye(n), rng.standard_normal((n, n)), DEFAULT_TOLERANCES
        )
        with ArrayArena(min_bytes=0) as arena:
            shipment = ship_context(arena, context)
            assert shipment.via_shm
            rebuilt = load_context(pickle.loads(pickle.dumps(shipment)))
            reference = context.to_arrays()
            for key, value in rebuilt.to_arrays().items():
                assert np.array_equal(value, reference[key])
            arena.release(shipment)

    @needs_shm
    def test_cache_entry_ships_via_store_codec(self):
        rng = np.random.default_rng(13)
        n = 20
        context = compute_spectral_context(
            np.eye(n), rng.standard_normal((n, n)), DEFAULT_TOLERANCES
        )
        with ArrayArena(min_bytes=0) as arena:
            shipment = ship_entry(arena, PENCIL_SPECTRUM, ("value", context))
            kind, (tag, payload) = load_entry(pickle.loads(pickle.dumps(shipment)))
            assert kind == PENCIL_SPECTRUM
            assert tag == "value"
            assert np.array_equal(payload.alpha, context.alpha)
            assert np.array_equal(payload.beta, context.beta)
            arena.release(shipment)


class TestCleanup:
    @needs_shm
    def test_atexit_unlinks_forgotten_arena(self):
        # A child process ships and exits *without* closing the arena; the
        # module atexit hook must unlink its segments.
        code = (
            "import numpy as np\n"
            "from repro.engine.shm import ArrayArena, SHM_PREFIX\n"
            "arena = ArrayArena(min_bytes=0)\n"
            "s = arena.ship({'x': np.ones((64, 64))})\n"
            "assert s.via_shm\n"
            "print(s.segment)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd="/root/repo",
        )
        name = result.stdout.strip()
        assert name.startswith(SHM_PREFIX)
        assert name not in repro_segments()

    @needs_shm
    def test_worker_crash_does_not_leak(self):
        # Parent ships, a worker maps the segment and dies with os._exit
        # (no atexit, no cleanup); the parent's release must still unlink,
        # and the crashed attachment must not have unlinked it early.
        with ArrayArena(min_bytes=0) as arena:
            shipment = arena.ship({"x": np.arange(65536, dtype=float)})
            blob = pickle.dumps(shipment).hex()
            code = (
                "import os, pickle, numpy as np\n"
                f"s = pickle.loads(bytes.fromhex('{blob}'))\n"
                "a = s.load()\n"
                "assert float(a['x'][-1]) == 65535.0\n"
                "os._exit(17)\n"
            )
            result = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True,
                env={**os.environ, "PYTHONPATH": "src"},
                cwd="/root/repo",
            )
            assert result.returncode == 17, result.stderr
            # Crash must not have torn the segment down under the parent.
            assert shipment.segment in repro_segments()
            again = shipment.load(copy=True)
            assert float(again["x"][0]) == 0.0
            arena.release(shipment)
        assert shipment.segment not in repro_segments()

    @needs_shm
    def test_unlink_while_attached_keeps_mapping_valid(self):
        with ArrayArena(min_bytes=0) as arena:
            shipment = arena.ship({"x": np.full((256, 256), 3.5)})
            view = shipment.load()["x"]
            arena.release(shipment)  # POSIX: mapping survives the unlink
            assert shipment.segment not in repro_segments()
            assert float(view[128, 128]) == 3.5
