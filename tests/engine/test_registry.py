"""Tests for the passivity-method registry."""

import pytest

from repro.engine import (
    COST_CUBIC,
    COST_SDP,
    DEFAULT_REGISTRY,
    MethodRegistry,
    MethodSpec,
    UnknownMethodError,
    check_passivity,
)
from repro.passivity.result import PassivityReport


def _toy_runner(system, tol, cache, **options):
    report = PassivityReport(is_passive=True, method="toy")
    report.diagnostics["options"] = dict(options)
    return report


def make_toy_spec(**overrides):
    fields = dict(
        name="toy",
        runner=_toy_runner,
        description="always-passive stub",
        cost=COST_CUBIC,
        aliases=("stub",),
    )
    fields.update(overrides)
    return MethodSpec(**fields)


class TestRegistryRoundTrip:
    def test_register_and_lookup(self):
        registry = MethodRegistry()
        spec = registry.register(make_toy_spec())
        assert registry.resolve("toy") is spec
        assert registry.resolve("stub") is spec
        assert "toy" in registry
        assert "stub" in registry
        assert registry.names() == ("toy",)
        assert len(registry) == 1

    def test_metadata_round_trip(self):
        registry = MethodRegistry()
        registry.register(
            make_toy_spec(cost=COST_SDP, order_limit=42, requires_admissible=True)
        )
        spec = registry.resolve("toy")
        assert spec.cost == COST_SDP
        assert spec.order_limit == 42
        assert spec.requires_admissible

    def test_unknown_method_error(self):
        registry = MethodRegistry()
        registry.register(make_toy_spec())
        with pytest.raises(UnknownMethodError, match="nonsense"):
            registry.resolve("nonsense")
        # The error lists the registered names and stays a ValueError for
        # backwards compatibility with the old if/elif dispatch.
        with pytest.raises(ValueError, match="toy"):
            registry.resolve("nonsense")

    def test_duplicate_registration_rejected(self):
        registry = MethodRegistry()
        registry.register(make_toy_spec())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(make_toy_spec())

    def test_alias_collision_rejected(self):
        registry = MethodRegistry()
        registry.register(make_toy_spec())
        with pytest.raises(ValueError, match="already registered"):
            registry.register(make_toy_spec(name="other", aliases=("stub",)))

    def test_replace_under_a_former_alias_name_wins(self):
        # Registering a new spec whose canonical name was previously an alias
        # of another spec must not leave the old alias mapping shadowing it.
        registry = MethodRegistry()
        registry.register(make_toy_spec(name="x", aliases=("y",)))
        replacement = make_toy_spec(name="y", aliases=())
        registry.register(replacement, replace=True)
        assert registry.resolve("y") is replacement

    def test_alias_cannot_shadow_another_canonical_name(self):
        registry = MethodRegistry()
        registry.register(make_toy_spec(name="x", aliases=()))
        with pytest.raises(ValueError, match="shadow"):
            registry.register(
                make_toy_spec(name="z", aliases=("x",)), replace=True
            )

    def test_replace_drops_stale_aliases(self):
        registry = MethodRegistry()
        registry.register(make_toy_spec(aliases=("old_alias",)))
        registry.register(make_toy_spec(aliases=("new_alias",)), replace=True)
        assert registry.resolve("new_alias").name == "toy"
        with pytest.raises(UnknownMethodError):
            registry.resolve("old_alias")

    def test_unregister_removes_aliases(self):
        registry = MethodRegistry()
        registry.register(make_toy_spec())
        registry.unregister("toy")
        assert "toy" not in registry
        assert "stub" not in registry

    def test_unregister_keeps_reassigned_aliases(self):
        # A replace=True registration took over "stub"; removing the original
        # spec must not delete the alias from its new owner.
        registry = MethodRegistry()
        registry.register(make_toy_spec(name="a", aliases=("stub",)))
        taker = make_toy_spec(name="b", aliases=("stub",))
        registry.register(taker, replace=True)
        registry.unregister("a")
        assert registry.resolve("stub") is taker


class TestDefaultRegistry:
    def test_builtin_methods_present(self):
        assert set(DEFAULT_REGISTRY.names()) == {
            "shh", "lmi", "weierstrass", "gare", "shh-sparse", "sampling",
        }

    def test_proposed_alias_maps_to_shh(self):
        assert DEFAULT_REGISTRY.resolve("proposed").name == "shh"

    def test_capability_metadata(self):
        assert DEFAULT_REGISTRY.resolve("lmi").cost == COST_SDP
        assert DEFAULT_REGISTRY.resolve("lmi").order_limit == 60
        assert DEFAULT_REGISTRY.resolve("gare").requires_admissible
        assert DEFAULT_REGISTRY.resolve("shh").order_limit is None
        assert not DEFAULT_REGISTRY.resolve("shh").requires_admissible

    def test_shh_sparse_registration_and_metadata(self):
        from repro.engine import COST_SPARSE

        spec = DEFAULT_REGISTRY.resolve("shh-sparse")
        assert spec.cost == COST_SPARSE
        assert spec.order_limit is None
        assert not spec.requires_admissible
        assert DEFAULT_REGISTRY.resolve("sparse") is spec

    def test_shh_sparse_does_not_shadow_shh_aliases(self):
        # Registering the sparse method must leave the dense SHH lookups (its
        # canonical name and the paper's "proposed" alias) untouched.
        assert DEFAULT_REGISTRY.resolve("shh").name == "shh"
        assert DEFAULT_REGISTRY.resolve("proposed").name == "shh"
        assert DEFAULT_REGISTRY.resolve("shh-sparse").name == "shh-sparse"
        assert DEFAULT_REGISTRY.resolve("shh-sparse") is not DEFAULT_REGISTRY.resolve("shh")


class TestRegisterErrorMessages:
    """Direct tests of the alias-shadowing error message paths."""

    def test_duplicate_canonical_name_message_names_the_offender(self):
        registry = MethodRegistry()
        registry.register(make_toy_spec(name="shh-like", aliases=()))
        with pytest.raises(ValueError, match=r"'shh-like' is already registered"):
            registry.register(make_toy_spec(name="shh-like", aliases=()))

    def test_duplicate_alias_message_names_the_alias(self):
        registry = MethodRegistry()
        registry.register(make_toy_spec(name="a", aliases=("fast",)))
        with pytest.raises(ValueError, match=r"'fast' is already registered"):
            registry.register(make_toy_spec(name="b", aliases=("fast",)))

    def test_alias_shadowing_message_points_at_the_shadowed_method(self):
        registry = MethodRegistry()
        registry.register(make_toy_spec(name="victim", aliases=()))
        with pytest.raises(
            ValueError,
            match=r"alias 'victim' would shadow the registered method 'victim'",
        ):
            registry.register(
                make_toy_spec(name="attacker", aliases=("victim",)), replace=True
            )

    def test_alias_shadowing_message_suggests_unregistering(self):
        registry = MethodRegistry()
        registry.register(make_toy_spec(name="victim", aliases=()))
        with pytest.raises(ValueError, match="unregister it first"):
            registry.register(
                make_toy_spec(name="attacker", aliases=("victim",)), replace=True
            )

    def test_sparse_spec_cannot_take_shh_alias(self):
        # The scenario the shh-sparse registration must avoid: an alias that
        # would shadow the dense method's canonical name is rejected even
        # with replace=True.
        registry = MethodRegistry()
        registry.register(make_toy_spec(name="shh", aliases=("proposed",)))
        with pytest.raises(ValueError, match="shadow"):
            registry.register(
                make_toy_spec(name="shh-sparse", aliases=("shh",)), replace=True
            )
        # A disjoint alias set registers cleanly and leaves "shh" resolvable.
        registry.register(make_toy_spec(name="shh-sparse", aliases=("sparse",)))
        assert registry.resolve("shh").name == "shh"
        assert registry.resolve("proposed").name == "shh"
        assert registry.resolve("sparse").name == "shh-sparse"


class TestCustomRegistryDispatch:
    def test_check_passivity_uses_custom_registry(self, small_rc_line):
        registry = MethodRegistry()
        registry.register(make_toy_spec())
        report = check_passivity(small_rc_line, method="stub", registry=registry)
        assert report.method == "toy"
        assert report.is_passive

    def test_options_forwarded_to_runner(self, small_rc_line):
        registry = MethodRegistry()
        registry.register(make_toy_spec())
        report = check_passivity(
            small_rc_line, method="toy", registry=registry, flavour="vanilla"
        )
        assert report.diagnostics["options"] == {"flavour": "vanilla"}
