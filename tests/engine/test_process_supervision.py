"""Pool-rebuild supervision of the process backend's collection loop.

A SIGKILLed worker breaks the whole ``ProcessPoolExecutor`` — every
in-flight future raises ``BrokenProcessPool``.  The runner must rebuild
the pool mid-sweep and resubmit each interrupted task once, so a single
worker crash costs a retry, not the remainder of the fleet.
"""

from __future__ import annotations

import multiprocessing
import os
import signal

import pytest

from repro.circuits import rlc_ladder
from repro.engine import BatchRunner, MethodRegistry, MethodSpec
from repro.passivity.result import PassivityReport

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=True) not in (None, "fork"),
    reason="supervision tests pickle test-module runners by reference (fork only)",
)


def _crash_once_runner(system, tol, cache, marker="", **options):
    """SIGKILL the worker on first run; succeed once the marker exists."""
    if marker and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return PassivityReport(is_passive=True, method="crash-once")


def _crash_always_runner(system, tol, cache, **options):
    """SIGKILL the worker on every run: defeats the one-retry budget."""
    os.kill(os.getpid(), signal.SIGKILL)


def _registry() -> MethodRegistry:
    registry = MethodRegistry()
    registry.register(
        MethodSpec(
            name="crash-once",
            runner=_crash_once_runner,
            description="kills its worker once",
            uses_spectral_cache=False,
        )
    )
    registry.register(
        MethodSpec(
            name="crash-always",
            runner=_crash_always_runner,
            description="kills its worker every time",
            uses_spectral_cache=False,
        )
    )
    return registry


class TestPoolRebuild:
    def test_worker_crash_rebuilds_pool_and_retries_tasks(self, tmp_path):
        marker = tmp_path / "crashed-once"
        runner = BatchRunner(
            registry=_registry(),
            backend="process",
            max_workers=2,
            batch_small_systems=False,
        )
        systems = [rlc_ladder(order).system for order in (3, 4, 5, 6)]
        outcome = runner.run(
            systems,
            methods=("crash-once",),
            method_options={"crash-once": {"marker": str(marker)}},
        )
        # Exactly one pool died (the marker serializes the crash), and
        # every cell of the sweep still produced a verdict on the retry.
        assert outcome.pool_restarts == 1
        assert len(outcome.results) == len(systems)
        for result in outcome.results:
            assert result.error is None
            assert result.report.is_passive

    def test_persistent_crasher_fails_its_cells_not_the_sweep(self):
        runner = BatchRunner(
            registry=_registry(),
            backend="process",
            max_workers=1,
            batch_small_systems=False,
        )
        systems = [rlc_ladder(order).system for order in (3, 4)]
        outcome = runner.run(systems, methods=("crash-always",))
        # The sweep returns (no exception escapes), the rebuilds are
        # counted, and each cell reports the broken-pool error.
        assert outcome.pool_restarts >= 1
        assert len(outcome.results) == len(systems)
        for result in outcome.results:
            assert result.error is not None
            assert "Broken" in result.error
            assert not result.timed_out
