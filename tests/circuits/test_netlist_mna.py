"""Tests for netlist construction and MNA assembly."""

import numpy as np
import pytest

from repro.circuits import Netlist, assemble_mna
from repro.exceptions import DimensionError
from repro.linalg.basics import is_negative_semidefinite, is_positive_semidefinite


def _rc_divider():
    netlist = Netlist()
    netlist.add_port("p", "in")
    netlist.add_resistor("r1", "in", "out", 2.0)
    netlist.add_capacitor("c1", "out", "0", 0.5)
    return netlist


class TestNetlist:
    def test_node_bookkeeping(self):
        netlist = _rc_divider()
        assert netlist.node_names == ["in", "out"]
        assert netlist.n_nodes == 2
        assert netlist.n_states == 2  # no inductors

    def test_states_include_inductor_currents(self):
        netlist = _rc_divider()
        netlist.add_inductor("l1", "out", "0", 1.0)
        assert netlist.n_states == 3

    def test_element_validation(self):
        netlist = Netlist()
        with pytest.raises(DimensionError):
            netlist.add_resistor("r", "a", "a", 1.0)
        with pytest.raises(DimensionError):
            netlist.add_capacitor("c", "a", "b", -1.0)

    def test_validate_requires_port(self):
        netlist = Netlist()
        netlist.add_resistor("r1", "a", "0", 1.0)
        with pytest.raises(DimensionError):
            netlist.validate()

    def test_validate_rejects_duplicate_names(self):
        netlist = _rc_divider()
        netlist.add_resistor("r1", "out", "0", 1.0)
        with pytest.raises(DimensionError):
            netlist.validate()


class TestMnaAssembly:
    def test_rc_divider_impedance(self):
        # Z(s) = R + 1/(sC) is the driving-point impedance of the series RC.
        model = assemble_mna(_rc_divider())
        s0 = 0.3 + 1.1j
        expected = 2.0 + 1.0 / (s0 * 0.5)
        np.testing.assert_allclose(model.system.evaluate(s0), [[expected]], atol=1e-10)

    def test_structural_passivity_properties(self, small_impulsive_ladder):
        # E symmetric PSD, A + A^T NSD, C = B^T, D = 0: the passive-by-
        # construction MNA structure.
        sys = small_impulsive_ladder
        assert is_positive_semidefinite(sys.e)
        np.testing.assert_allclose(sys.e, sys.e.T, atol=1e-12)
        assert is_negative_semidefinite(sys.a + sys.a.T)
        np.testing.assert_allclose(sys.c, sys.b.T)
        np.testing.assert_allclose(sys.d, 0.0)

    def test_grounded_inductor_dc_short(self):
        netlist = Netlist()
        netlist.add_port("p", "a")
        netlist.add_resistor("r", "a", "0", 5.0)
        netlist.add_inductor("l", "a", "0", 2.0)
        model = assemble_mna(netlist)
        # At DC the inductor shorts the port: Z(0) = 0.
        np.testing.assert_allclose(model.system.evaluate(0.0), [[0.0]], atol=1e-12)
        # At high frequency the resistor dominates: Z -> 5.
        np.testing.assert_allclose(model.system.evaluate(1e6j), [[5.0]], atol=1e-3)

    def test_node_and_inductor_indices(self):
        netlist = _rc_divider()
        netlist.add_inductor("l1", "out", "0", 1.0)
        model = assemble_mna(netlist)
        assert set(model.node_index) == {"in", "out"}
        assert model.inductor_index["l1"] == 2

    def test_two_port_model_is_square(self):
        netlist = _rc_divider()
        netlist.add_port("p2", "out")
        model = assemble_mna(netlist)
        assert model.system.n_inputs == 2
        assert model.system.n_outputs == 2
        # Reciprocal network: symmetric impedance matrix.
        z = model.system.evaluate(1.0j)
        np.testing.assert_allclose(z, z.T, atol=1e-12)


class TestSparseAssembly:
    def test_sparse_path_matches_dense_bitwise(self):
        netlist = _rc_divider()
        netlist.add_inductor("l1", "out", "0", 1.0)
        dense = assemble_mna(netlist, sparse=False)
        sparse = assemble_mna(netlist, sparse=True)
        assert sparse.is_sparse and not dense.is_sparse
        for name in "eabcd":
            assert np.array_equal(
                getattr(dense.system, name), getattr(sparse.system, name)
            ), name

    def test_sparse_model_keeps_csr_stamps(self):
        import scipy.sparse

        model = assemble_mna(_rc_divider(), sparse=True)
        assert scipy.sparse.issparse(model.system.sparse_e)
        assert scipy.sparse.issparse(model.system.sparse_a)
        # The dense view has not been materialized by assembly itself.
        assert "e" not in model.system.__dict__

    def test_sparse_assembly_is_structurally_passive(self):
        netlist = _rc_divider()
        netlist.add_inductor("l1", "out", "0", 1.0)
        system = assemble_mna(netlist, sparse=True).system
        assert is_positive_semidefinite(system.e)
        assert is_negative_semidefinite(system.a + system.a.T)
        np.testing.assert_allclose(system.c, system.b.T)

    def test_duplicate_stamps_summed_identically(self):
        # Two resistors in parallel at the same nodes create duplicate
        # triplets; both paths must sum them in the same order.
        netlist = _rc_divider()
        netlist.add_resistor("r2", "in", "out", 3.0)
        netlist.add_resistor("r3", "in", "out", 7.0)
        dense = assemble_mna(netlist, sparse=False).system
        sparse = assemble_mna(netlist, sparse=True).system
        assert np.array_equal(dense.a, sparse.a)
