"""Tests for the parametric circuit generators."""

import numpy as np
import pytest

from repro.circuits import (
    coupled_line_bus,
    feedthrough_perturbation,
    impulsive_rlc_ladder,
    negative_resistor_perturbation,
    paper_benchmark_model,
    perturb_system,
    random_coupled_bus,
    random_passive_descriptor,
    rc_grid,
    rc_line,
    rlc_grid,
    rlc_grid_corners,
    rlc_ladder,
)
from repro.descriptor import count_modes, first_markov_parameter
from repro.exceptions import DimensionError


class TestLadders:
    def test_rlc_ladder_order_formula(self):
        for n in (1, 3, 6):
            assert rlc_ladder(n).system.order == 3 * n + 1

    def test_rlc_ladder_is_stable_regular_descriptor(self):
        sys = rlc_ladder(5).system
        modes = count_modes(sys)
        assert modes.is_stable
        assert modes.n_nondynamic > 0  # singular E: true descriptor system
        assert modes.n_impulsive == 0

    def test_rc_line_is_impulse_free(self):
        modes = count_modes(rc_line(7).system)
        assert modes.n_impulsive == 0
        assert modes.is_stable

    def test_impulsive_ladder_has_impulsive_modes(self):
        modes = count_modes(impulsive_rlc_ladder(4, 2).system)
        assert modes.n_impulsive >= 2

    def test_port_inductor_controls_m1(self):
        with_l = impulsive_rlc_ladder(3, 0, series_port_inductor=0.7).system
        np.testing.assert_allclose(first_markov_parameter(with_l), [[0.7]], atol=1e-8)
        without_l = impulsive_rlc_ladder(3, 1, series_port_inductor=None).system
        np.testing.assert_allclose(first_markov_parameter(without_l), [[0.0]], atol=1e-8)

    def test_stub_count_validation(self):
        with pytest.raises(DimensionError):
            impulsive_rlc_ladder(2, 5)

    def test_invalid_section_count(self):
        with pytest.raises(DimensionError):
            rlc_ladder(0)


class TestPaperBenchmarkModel:
    @pytest.mark.parametrize("order", [12, 20, 35, 40, 61, 100])
    def test_exact_order(self, order):
        model = paper_benchmark_model(order)
        assert model.system.order == order

    def test_model_is_passive_workload(self):
        sys = paper_benchmark_model(30).system
        modes = count_modes(sys)
        assert modes.is_stable
        assert modes.n_impulsive >= 1

    def test_minimum_order_enforced(self):
        with pytest.raises(DimensionError):
            paper_benchmark_model(8)

    def test_seed_changes_padding_values_not_structure(self):
        a = paper_benchmark_model(25, seed=0).system
        b = paper_benchmark_model(25, seed=1).system
        assert a.order == b.order
        assert not np.allclose(a.a, b.a)


class TestRandomPassiveDescriptor:
    def test_structural_properties(self):
        sys = random_passive_descriptor(12, n_ports=3, rank_deficiency=4, seed=2)
        assert sys.order == 12
        assert sys.n_inputs == 3
        assert sys.rank_e() == 8
        np.testing.assert_allclose(sys.c, sys.b.T)
        assert count_modes(sys).is_stable

    def test_rank_deficiency_validation(self):
        with pytest.raises(DimensionError):
            random_passive_descriptor(5, rank_deficiency=5)

    def test_reproducible_with_seed(self):
        a = random_passive_descriptor(8, seed=11)
        b = random_passive_descriptor(8, seed=11)
        np.testing.assert_allclose(a.a, b.a)


class TestPerturbations:
    def test_negative_resistor_changes_only_a(self):
        model = rlc_ladder(3)
        bad = negative_resistor_perturbation(model, 0.3, node="n1")
        np.testing.assert_allclose(bad.e, model.system.e)
        assert not np.allclose(bad.a, model.system.a)

    def test_negative_resistor_unknown_node_rejected(self):
        with pytest.raises(DimensionError):
            negative_resistor_perturbation(rlc_ladder(2), 0.1, node="does_not_exist")

    def test_feedthrough_perturbation_shifts_response(self, small_rlc_ladder):
        bad = feedthrough_perturbation(small_rlc_ladder, 0.25)
        omega = 1.0
        np.testing.assert_allclose(
            bad.evaluate(1j * omega),
            small_rlc_ladder.evaluate(1j * omega) - 0.25 * np.eye(1),
            atol=1e-12,
        )


class TestGridGenerators:
    def test_rc_grid_shape_and_structure(self):
        model = rc_grid(4, 5, n_ports=2, sparse=True)
        system = model.system
        assert system.order == 20
        assert system.n_inputs == 2
        assert system.is_sparse
        # Port corners carry no capacitor: E stays singular (descriptor form).
        assert system.rank_e() < system.order

    def test_rc_grid_validation(self):
        with pytest.raises(DimensionError):
            rc_grid(1, 5)
        with pytest.raises(DimensionError):
            rc_grid(3, 3, n_ports=5)

    def test_rlc_grid_counts_inductor_states(self):
        rows, cols = 3, 4
        model = rlc_grid(rows, cols, sparse=True)
        assert model.system.order == rows * cols + (rows - 1) * cols
        assert len(model.inductor_index) == (rows - 1) * cols

    def test_grids_are_passive(self):
        from repro.passivity import shh_passivity_test

        for system in (
            rc_grid(3, 4, sparse=False).system,
            rlc_grid(3, 3, sparse=False).system,
        ):
            assert shh_passivity_test(system).is_passive


class TestCoupledLineBus:
    def test_shape_and_ports(self):
        model = coupled_line_bus(3, 2, sparse=True)
        assert model.system.n_inputs == 3
        assert model.system.order == 3 * (3 * 2 + 1)

    def test_coupling_makes_e_nondiagonal(self):
        system = coupled_line_bus(2, 2, sparse=True).system
        nodal = system.sparse_e.toarray()
        off_diagonal = nodal - np.diag(np.diag(nodal))
        assert np.any(off_diagonal != 0.0)

    def test_validation(self):
        with pytest.raises(DimensionError):
            coupled_line_bus(1, 3)
        with pytest.raises(DimensionError):
            coupled_line_bus(2, 0)


class TestRandomCoupledBus:
    def test_reproducible_and_passive(self):
        from repro.passivity import shh_passivity_test

        first = random_coupled_bus(15, seed=42, sparse=True)
        second = random_coupled_bus(15, seed=42, sparse=True)
        assert np.array_equal(
            first.system.sparse_a.toarray(), second.system.sparse_a.toarray()
        )
        assert shh_passivity_test(first.system).is_passive

    def test_validation(self):
        with pytest.raises(DimensionError):
            random_coupled_bus(1)
        with pytest.raises(DimensionError):
            random_coupled_bus(5, n_ports=9)


class TestPerturbedFamilies:
    def test_pattern_selects_which_matrices_move(self):
        base = rlc_grid(3, 3, sparse=False).system
        p = perturb_system(base, 1e-3, seed=4, pattern="a")
        assert not np.array_equal(p.a, base.a)
        for name in ("e", "b", "c", "d"):
            np.testing.assert_array_equal(getattr(p, name), getattr(base, name))
        everything = perturb_system(base, 1e-3, seed=4, pattern="all")
        assert not np.array_equal(everything.e, base.e)
        assert not np.array_equal(everything.b, base.b)

    def test_perturbation_preserves_the_sparsity_pattern(self):
        base = rlc_grid(3, 3, sparse=False).system
        p = perturb_system(base, 1e-2, seed=1, pattern="ea")
        np.testing.assert_array_equal(p.e != 0, base.e != 0)
        np.testing.assert_array_equal(p.a != 0, base.a != 0)

    def test_sparse_systems_stay_sparse(self):
        base = rlc_grid(3, 3, sparse=True).system
        assert base.is_sparse
        p = perturb_system(base, 1e-3, seed=2, pattern="ea")
        assert p.is_sparse
        # CSR structure untouched: only the stored values move.
        np.testing.assert_array_equal(p.sparse_a.indices, base.sparse_a.indices)
        np.testing.assert_array_equal(p.sparse_a.indptr, base.sparse_a.indptr)
        assert not np.array_equal(p.sparse_a.data, base.sparse_a.data)

    def test_distinct_seeds_give_distinct_corners(self):
        base = rlc_grid(3, 3, sparse=False).system
        one = perturb_system(base, 1e-3, seed=1)
        two = perturb_system(base, 1e-3, seed=2)
        assert not np.array_equal(one.a, two.a)

    def test_bad_pattern_rejected(self):
        base = rlc_grid(3, 3, sparse=False).system
        with pytest.raises(DimensionError):
            perturb_system(base, 1e-3, pattern="xyz")
        with pytest.raises(DimensionError):
            perturb_system(base, 1e-3, pattern="")

    def test_corner_family_shape_and_nominal(self):
        family = rlc_grid_corners(3, 4, n_corners=5, scale=2e-4, seed=0)
        assert len(family) == 5
        nominal = family[0]
        # The damped sweep defaults give the family its passivity headroom.
        reference = rlc_grid(
            3, 4, series_resistance=0.8, shunt_conductance=0.1, sparse=False
        ).system
        np.testing.assert_array_equal(nominal.a, reference.a)
        for corner in family[1:]:
            assert corner.order == nominal.order
            assert not np.array_equal(corner.a, nominal.a)

    def test_corner_family_is_reproducible(self):
        one = rlc_grid_corners(3, 3, n_corners=4, scale=1e-3, seed=42)
        two = rlc_grid_corners(3, 3, n_corners=4, scale=1e-3, seed=42)
        for left, right in zip(one, two):
            np.testing.assert_array_equal(left.a, right.a)
