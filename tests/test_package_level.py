"""Package-level tests: public API surface, configuration, exceptions."""

import numpy as np
import pytest

import repro
from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro import exceptions


class TestPublicApi:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_primary_entry_points_are_callable(self):
        assert callable(repro.shh_passivity_test)
        assert callable(repro.lmi_passivity_test)
        assert callable(repro.weierstrass_passivity_test)
        assert callable(repro.extract_proper_part)

    def test_subpackages_exposed(self):
        assert repro.circuits is not None
        assert repro.linalg is not None
        assert repro.descriptor is not None
        assert repro.passivity is not None


class TestTolerances:
    def test_defaults_are_sensible(self):
        assert 0 < DEFAULT_TOLERANCES.rank_rtol < 1e-6
        assert 0 < DEFAULT_TOLERANCES.psd_atol < 1e-4

    def test_with_creates_modified_copy(self):
        custom = DEFAULT_TOLERANCES.with_(rank_rtol=1e-8)
        assert custom.rank_rtol == 1e-8
        assert custom.psd_atol == DEFAULT_TOLERANCES.psd_atol
        assert DEFAULT_TOLERANCES.rank_rtol != 1e-8  # original untouched

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_TOLERANCES.rank_rtol = 0.0

    def test_custom_tolerances_affect_rank_decisions(self):
        from repro.linalg.subspaces import numerical_rank

        matrix = np.diag([1.0, 1e-9])
        assert numerical_rank(matrix, Tolerances(rank_rtol=1e-12)) == 2
        assert numerical_rank(matrix, Tolerances(rank_rtol=1e-6)) == 1


class TestExceptionHierarchy:
    def test_all_library_errors_share_a_base(self):
        for name in (
            "DimensionError",
            "StructureError",
            "SingularPencilError",
            "NotStableError",
            "NotAdmissibleError",
            "ReductionError",
            "ConvergenceError",
            "NotImplementedForSystemError",
        ):
            cls = getattr(exceptions, name)
            assert issubclass(cls, exceptions.ReproError)

    def test_value_error_compatibility(self):
        assert issubclass(exceptions.DimensionError, ValueError)
        assert issubclass(exceptions.SingularPencilError, ValueError)

    def test_catching_the_base_class_catches_library_failures(self):
        from repro.descriptor import DescriptorSystem

        with pytest.raises(exceptions.ReproError):
            DescriptorSystem(np.eye(2), np.eye(3), np.ones((2, 1)), np.ones((1, 2)))
