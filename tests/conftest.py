"""Shared fixtures: canonical example systems used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import impulsive_rlc_ladder, rc_line, rlc_ladder
from repro.descriptor import DescriptorSystem


@pytest.fixture
def rng():
    """Deterministic random generator for reproducible tests."""
    return np.random.default_rng(20060724)


def make_sm1_system(m1: float = 2.0) -> DescriptorSystem:
    """Minimal realization of ``G(s) = s * m1`` (purely impulsive)."""
    e = np.array([[0.0, 1.0], [0.0, 0.0]])
    a = np.eye(2)
    b = np.array([[0.0], [-m1]])
    c = np.array([[1.0, 0.0]])
    return DescriptorSystem(e, a, b, c, np.zeros((1, 1)))


def make_mixed_passive_system() -> DescriptorSystem:
    """``G(s) = 1/(s+1) + s + 1``: finite + impulsive + nondynamic modes."""
    e = np.zeros((4, 4))
    e[0, 0] = 1.0
    e[1, 2] = 1.0
    a = np.diag([-1.0, 1.0, 1.0, -1.0])
    b = np.array([[1.0], [0.0], [-1.0], [1.0]])
    c = np.array([[1.0, 1.0, 0.0, 1.0]])
    return DescriptorSystem(e, a, b, c, np.zeros((1, 1)))


def make_index1_passive_system() -> DescriptorSystem:
    """``G(s) = 1/(s+1) + 1`` realized with one nondynamic mode (index 1)."""
    e = np.diag([1.0, 0.0])
    a = np.diag([-1.0, -1.0])
    b = np.array([[1.0], [1.0]])
    c = np.array([[1.0, 1.0]])
    return DescriptorSystem(e, a, b, c, np.zeros((1, 1)))


def make_nonpassive_proper_system() -> DescriptorSystem:
    """Stable but non-positive-real proper system: ``G(0) < 0``."""
    e = np.eye(1)
    a = np.array([[-2.0]])
    b = np.array([[1.0]])
    c = np.array([[-3.0]])
    d = np.array([[1.0]])
    return DescriptorSystem(e, a, b, c, d)


def make_s_squared_system() -> DescriptorSystem:
    """``G(s) = s^2``: nonzero M2, hence non-passive."""
    e = np.array([[0.0, 1.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 0.0]])
    a = np.eye(3)
    b = np.array([[0.0], [0.0], [-1.0]])
    c = np.array([[1.0, 0.0, 0.0]])
    return DescriptorSystem(e, a, b, c, np.zeros((1, 1)))


@pytest.fixture
def sm1_system():
    return make_sm1_system()


@pytest.fixture
def mixed_passive_system():
    return make_mixed_passive_system()


@pytest.fixture
def index1_passive_system():
    return make_index1_passive_system()


@pytest.fixture
def nonpassive_proper_system():
    return make_nonpassive_proper_system()


@pytest.fixture
def s_squared_system():
    return make_s_squared_system()


@pytest.fixture(scope="session")
def small_rc_line():
    return rc_line(5).system


@pytest.fixture(scope="session")
def small_rlc_ladder():
    return rlc_ladder(4).system


@pytest.fixture(scope="session")
def small_impulsive_ladder():
    return impulsive_rlc_ladder(4, 1).system
