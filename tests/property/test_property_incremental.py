"""Property-based tests: incremental verdicts never diverge from cold ones.

The incremental tier's contract is *decision equivalence*: whatever
perturbation scale, pattern or seed a sweep throws at it, the warm-started
verdict must be bitwise-decision-identical to the from-scratch verdict —
either because the certified update succeeded, or because the certification
gates rejected it and the engine fell back to the cold pipeline.  These
properties drive random perturbation families (including scales chosen to
force the fallback boundary) through both paths and compare.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import perturb_system, rlc_grid
from repro.engine import (
    DEFAULT_INCREMENTAL_CONFIG,
    DecompositionCache,
    check_passivity,
    delta_distance,
)

pytestmark = pytest.mark.property


def _nominal(rows=3, cols=4):
    """Small dense admissible grid (order 20): fast enough for hypothesis."""
    return rlc_grid(
        rows, cols, series_resistance=0.8, shunt_conductance=0.1, sparse=False
    ).system


NOMINAL = _nominal()


@settings(max_examples=15, deadline=None)
@given(
    scale=st.floats(min_value=1e-6, max_value=5e-2),
    seed=st.integers(min_value=0, max_value=10_000),
    pattern=st.sampled_from(["a", "b", "c", "ab", "abcd"]),
)
def test_incremental_verdict_equals_cold_verdict(scale, seed, pattern):
    """Across random scales/patterns, warm and cold decisions are identical."""
    corner = perturb_system(NOMINAL, scale, seed=seed, pattern=pattern)
    cache = DecompositionCache()
    check_passivity(NOMINAL, method="gare", cache=cache)
    warm = check_passivity(corner, method="gare", cache=cache, ancestor=NOMINAL)
    cold = check_passivity(corner, method="gare")
    assert warm.is_passive == cold.is_passive
    # Every attempt is accounted for, one way or the other.
    stats = cache.stats
    assert stats.incremental_hits + stats.incremental_fallbacks <= 1
    if warm.diagnostics["engine"]["incremental"]:
        assert stats.incremental_hits == 1
    elif delta_distance(NOMINAL, corner) <= DEFAULT_INCREMENTAL_CONFIG.max_distance:
        assert stats.incremental_fallbacks == 1


@settings(max_examples=15, deadline=None)
@given(
    scale=st.floats(min_value=0.3, max_value=3.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_large_perturbations_fall_back_without_flipping(scale, seed):
    """Boundary case: scales past the gates must go cold, verdicts intact."""
    corner = perturb_system(NOMINAL, scale, seed=seed, pattern="a")
    cache = DecompositionCache()
    check_passivity(NOMINAL, method="gare", cache=cache)
    warm = check_passivity(corner, method="gare", cache=cache, ancestor=NOMINAL)
    cold = check_passivity(corner, method="gare")
    assert warm.is_passive == cold.is_passive


@settings(max_examples=10, deadline=None)
@given(
    scale=st.floats(min_value=1e-5, max_value=1e-3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_forced_fallback_is_counted_and_cold(scale, seed):
    """A vanishing distance gate rejects every update; the verdict holds."""
    corner = perturb_system(NOMINAL, scale, seed=seed, pattern="a")
    cache = DecompositionCache()
    check_passivity(NOMINAL, method="gare", cache=cache)
    tight = dataclasses.replace(DEFAULT_INCREMENTAL_CONFIG, max_distance=1e-15)
    warm = check_passivity(
        corner,
        method="gare",
        cache=cache,
        ancestor=NOMINAL,
        incremental_config=tight,
    )
    cold = check_passivity(corner, method="gare")
    assert warm.is_passive == cold.is_passive
    assert warm.diagnostics["engine"]["incremental"] is False
    assert cache.stats.incremental_fallbacks == 1
    assert cache.stats.incremental_hits == 0


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_corners=st.integers(min_value=3, max_value=6),
)
def test_chained_auto_ancestors_agree_with_cold(seed, n_corners):
    """A whole chain of ancestor='auto' updates preserves every decision."""
    cache = DecompositionCache()
    check_passivity(NOMINAL, method="gare", cache=cache)
    for corner_index in range(n_corners):
        corner = perturb_system(
            NOMINAL, 2e-4, seed=seed + corner_index, pattern="a"
        )
        warm = check_passivity(corner, method="gare", cache=cache, ancestor="auto")
        cold = check_passivity(corner, method="gare")
        assert warm.is_passive == cold.is_passive
