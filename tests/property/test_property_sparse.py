"""Property-based tests of the sparse MNA backend.

Two families of invariants:

* **assembly equivalence** — for randomized netlists, the sparse (CSR) and
  dense assembly paths of :func:`repro.circuits.mna.assemble_mna` produce
  *identical* matrices (the stamper sums duplicates in the same order on both
  paths, so the equality is bitwise),
* **verdict agreement** — on systems small enough to run everything, the
  ``shh-sparse`` method agrees with the dense ``shh`` (and, on admissible
  models, ``gare``) verdicts, through every sparse code path (structural
  certificate, sparse reduction, dense fallback).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    coupled_line_bus,
    feedthrough_perturbation,
    random_coupled_bus,
    rc_grid,
    rlc_grid,
)
from repro.engine import DecompositionCache, check_passivity
from repro.passivity import (
    gare_passivity_test,
    shh_passivity_test,
    sparse_shh_passivity_test,
)

pytestmark = pytest.mark.property


@settings(max_examples=20, deadline=None)
@given(
    n_nodes=st.integers(min_value=3, max_value=30),
    seed=st.integers(min_value=0, max_value=10_000),
    extra=st.floats(min_value=0.0, max_value=1.5),
    inductive=st.floats(min_value=0.0, max_value=0.5),
)
def test_sparse_and_dense_assembly_identical_on_random_netlists(
    n_nodes, seed, extra, inductive
):
    """The two assembly paths of a random netlist agree bitwise."""
    kwargs = dict(
        n_nodes=n_nodes,
        n_ports=min(2, n_nodes),
        extra_edge_fraction=extra,
        inductor_fraction=inductive,
        seed=seed,
    )
    dense = random_coupled_bus(sparse=False, **kwargs)
    sparse = random_coupled_bus(sparse=True, **kwargs)
    assert sparse.is_sparse and not dense.is_sparse
    for name in "eabcd":
        dense_matrix = getattr(dense.system, name)
        sparse_matrix = getattr(sparse.system, name)
        assert np.array_equal(dense_matrix, sparse_matrix), name
    assert dense.node_index == sparse.node_index
    assert dense.inductor_index == sparse.inductor_index


@settings(max_examples=12, deadline=None)
@given(
    rows=st.integers(min_value=2, max_value=5),
    cols=st.integers(min_value=2, max_value=5),
    grid=st.sampled_from(["rc", "rlc"]),
)
def test_sparse_and_dense_assembly_identical_on_grids(rows, cols, grid):
    factory = rc_grid if grid == "rc" else rlc_grid
    dense = factory(rows, cols, sparse=False)
    sparse = factory(rows, cols, sparse=True)
    for name in "eabcd":
        assert np.array_equal(getattr(dense.system, name), getattr(sparse.system, name))


@settings(max_examples=15, deadline=None)
@given(
    n_nodes=st.integers(min_value=4, max_value=18),
    seed=st.integers(min_value=0, max_value=10_000),
    inductive=st.floats(min_value=0.0, max_value=0.4),
)
def test_shh_sparse_accepts_random_passive_buses(n_nodes, seed, inductive):
    """Structurally passive random MNA models pass the sparse test, like shh."""
    model = random_coupled_bus(
        n_nodes, n_ports=2, inductor_fraction=inductive, seed=seed, sparse=True
    )
    sparse_report = sparse_shh_passivity_test(model.system)
    dense_report = shh_passivity_test(model.system)
    assert sparse_report.is_passive, sparse_report.failure_reason
    assert sparse_report.is_passive == dense_report.is_passive


@settings(max_examples=12, deadline=None)
@given(
    n_nodes=st.integers(min_value=4, max_value=14),
    seed=st.integers(min_value=0, max_value=10_000),
    shift=st.floats(min_value=0.5, max_value=4.0),
)
def test_shh_sparse_agrees_with_shh_on_perturbed_buses(n_nodes, seed, shift):
    """Feedthrough-shifted models: sparse and dense verdicts coincide."""
    model = random_coupled_bus(n_nodes, n_ports=2, seed=seed, sparse=True)
    perturbed = feedthrough_perturbation(model.system, shift)
    sparse_report = sparse_shh_passivity_test(perturbed)
    dense_report = shh_passivity_test(perturbed)
    assert sparse_report.is_passive == dense_report.is_passive, (
        sparse_report.failure_reason,
        dense_report.failure_reason,
    )


@settings(max_examples=8, deadline=None)
@given(
    n_lines=st.integers(min_value=2, max_value=3),
    n_sections=st.integers(min_value=1, max_value=3),
)
def test_shh_sparse_agrees_with_gare_on_admissible_buses(n_lines, n_sections):
    """Impulse-free coupled buses: sparse, shh and gare verdicts coincide."""
    system = coupled_line_bus(n_lines, n_sections, sparse=True).system
    sparse_verdict = sparse_shh_passivity_test(system).is_passive
    assert sparse_verdict == shh_passivity_test(system).is_passive
    gare_report = gare_passivity_test(system)
    if gare_report.failure_reason is None or "admissible" not in gare_report.failure_reason:
        assert sparse_verdict == gare_report.is_passive


@settings(max_examples=8, deadline=None)
@given(
    n_nodes=st.integers(min_value=4, max_value=12),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_engine_dispatch_matches_direct_call(n_nodes, seed):
    """check_passivity(method='shh-sparse') equals the direct function call."""
    system = random_coupled_bus(n_nodes, seed=seed, sparse=True).system
    direct = sparse_shh_passivity_test(system)
    engine = check_passivity(system, method="shh-sparse", cache=DecompositionCache())
    assert engine.method == "shh-sparse"
    assert engine.is_passive == direct.is_passive
