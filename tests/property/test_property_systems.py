"""Property-based tests for descriptor-system invariants and the passivity tests."""

import pytest
import numpy as np
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    feedthrough_perturbation,
    impulsive_rlc_ladder,
    random_passive_descriptor,
    rlc_ladder,
)
from repro.descriptor import (
    adjoint_system,
    build_phi_realization,
    count_modes,
    markov_parameters,
    separate_finite_infinite,
)
from repro.passivity import remove_impulsive_modes, shh_passivity_test

pytestmark = pytest.mark.property


@settings(max_examples=15, deadline=None)
@given(
    order=st.integers(min_value=6, max_value=16),
    rank_deficiency=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_random_passive_descriptors_pass_the_shh_test(order, rank_deficiency, seed):
    """Structurally passive random descriptor systems are always accepted."""
    system = random_passive_descriptor(
        order, n_ports=2, rank_deficiency=min(rank_deficiency, order - 2), seed=seed
    )
    report = shh_passivity_test(system)
    assert report.is_passive, report.failure_reason


@settings(max_examples=15, deadline=None)
@given(
    order=st.integers(min_value=6, max_value=14),
    seed=st.integers(min_value=0, max_value=10_000),
    shift=st.floats(min_value=1.0, max_value=10.0),
)
def test_sufficiently_shifted_systems_are_rejected(order, seed, shift):
    """Shifting the feedthrough far below the passivity margin must be caught."""
    system = random_passive_descriptor(order, n_ports=2, rank_deficiency=2, seed=seed,
                                       feedthrough_scale=0.3)
    # The margin is bounded by the largest eigenvalue of D + D^T plus the H-inf
    # norm contribution; a large negative shift is certainly non-passive
    # because G(j w) + G(j w)^* inherits the negative shift at all frequencies.
    margin_bound = float(np.max(np.linalg.eigvalsh(system.d + system.d.T)))
    hinf_bound = margin_bound + float(np.linalg.norm(system.b, 2) ** 2) * float(
        np.linalg.norm(np.linalg.inv(system.a), 2)
    )
    bad = feedthrough_perturbation(system, hinf_bound + shift)
    report = shh_passivity_test(bad)
    assert not report.is_passive


@settings(max_examples=12, deadline=None)
@given(
    n_sections=st.integers(min_value=1, max_value=5),
    n_stubs=st.integers(min_value=0, max_value=2),
    omega=st.floats(min_value=0.01, max_value=50.0),
)
def test_phi_is_hermitian_and_psd_for_passive_ladders(n_sections, n_stubs, omega):
    """Phi(j w) = G(j w) + G(j w)^* is Hermitian PSD for passive RLC models."""
    n_stubs = min(n_stubs, n_sections)
    system = impulsive_rlc_ladder(n_sections, n_stubs).system
    phi = build_phi_realization(system)
    value = phi.evaluate(1j * omega)
    np.testing.assert_allclose(value, value.conj().T, atol=1e-8)
    assert np.min(np.linalg.eigvalsh(0.5 * (value + value.conj().T))) >= -1e-8


@settings(max_examples=12, deadline=None)
@given(
    n_sections=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_mode_counts_are_consistent(n_sections, seed):
    """finite + nondynamic + impulsive always equals the order."""
    rng = np.random.default_rng(seed)
    system = rlc_ladder(
        n_sections,
        series_resistance=float(0.2 + rng.random()),
        series_inductance=float(0.5 + rng.random()),
        shunt_capacitance=float(0.5 + rng.random()),
    ).system
    modes = count_modes(system)
    assert modes.n_finite + modes.n_nondynamic + modes.n_impulsive == modes.order
    assert modes.rank_e == modes.n_finite + modes.n_impulsive


@settings(max_examples=10, deadline=None)
@given(
    n_sections=st.integers(min_value=1, max_value=4),
    n_stubs=st.integers(min_value=0, max_value=2),
    point_real=st.floats(min_value=0.1, max_value=2.0),
    point_imag=st.floats(min_value=-3.0, max_value=3.0),
)
def test_impulsive_reduction_preserves_phi_transfer(
    n_sections, n_stubs, point_real, point_imag
):
    """The one-shot projection of Section 3.1 never changes Phi(s)."""
    n_stubs = min(n_stubs, n_sections)
    system = impulsive_rlc_ladder(n_sections, n_stubs).system
    phi = build_phi_realization(system)
    reduction = remove_impulsive_modes(phi)
    s0 = complex(point_real, point_imag)
    np.testing.assert_allclose(
        reduction.system.evaluate(s0), phi.evaluate(s0), atol=1e-7
    )


@settings(max_examples=10, deadline=None)
@given(
    n_sections=st.integers(min_value=1, max_value=4),
    omega=st.floats(min_value=0.0, max_value=20.0),
)
def test_adjoint_and_separation_are_consistent(n_sections, omega):
    """G~(j w) equals G(j w)^* and the spectral separation re-sums to G."""
    system = impulsive_rlc_ladder(n_sections, 1).system
    adj = adjoint_system(system)
    value = system.evaluate(1j * omega)
    np.testing.assert_allclose(adj.evaluate(1j * omega), value.conj().T, atol=1e-8)
    separation = separate_finite_infinite(system)
    total = (
        separation.finite_system.evaluate(1j * omega)
        + separation.infinite_system.evaluate(1j * omega)
        + separation.feedthrough
    )
    np.testing.assert_allclose(total, value, atol=1e-7)


@settings(max_examples=10, deadline=None)
@given(
    inductance=st.floats(min_value=0.05, max_value=5.0),
    n_sections=st.integers(min_value=1, max_value=4),
)
def test_m1_equals_port_inductance(inductance, n_sections):
    """A series port inductor of L henries always yields M1 = [[L]]."""
    system = impulsive_rlc_ladder(
        n_sections, 0, series_port_inductor=inductance
    ).system
    parameters = markov_parameters(system, 2)
    np.testing.assert_allclose(parameters[1], [[inductance]], atol=1e-7)
    report = shh_passivity_test(system)
    assert report.is_passive
    np.testing.assert_allclose(report.diagnostics["m1"], [[inductance]], atol=1e-7)
