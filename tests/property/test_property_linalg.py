"""Property-based tests (hypothesis) for the structured linear-algebra kernel."""

import pytest
import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.linalg.hamiltonian import (
    hamiltonian_part,
    is_hamiltonian,
    is_skew_hamiltonian,
    skew_hamiltonian_part,
    symplectic_identity,
)
from repro.linalg.lyapunov import solve_continuous_lyapunov
from repro.linalg.skew_hamiltonian_schur import pvl_decomposition
from repro.linalg.subspaces import (
    column_space,
    null_space,
    numerical_rank,
    orth_complement,
)
from repro.linalg.symplectic import is_orthogonal_symplectic

pytestmark = pytest.mark.property

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


def square_matrices(max_dim=6):
    return st.integers(min_value=1, max_value=max_dim).flatmap(
        lambda n: arrays(np.float64, (n, n), elements=finite_floats)
    )


def rectangular_matrices(max_dim=7):
    return st.tuples(
        st.integers(min_value=1, max_value=max_dim),
        st.integers(min_value=1, max_value=max_dim),
    ).flatmap(lambda shape: arrays(np.float64, shape, elements=finite_floats))


@settings(max_examples=50, deadline=None)
@given(rectangular_matrices())
def test_rank_nullity_theorem(matrix):
    """rank + dim(kernel) == number of columns, for any matrix."""
    rank = numerical_rank(matrix)
    kernel = null_space(matrix)
    assert rank + kernel.shape[1] == matrix.shape[1]
    if kernel.shape[1]:
        assert np.max(np.abs(matrix @ kernel)) <= 1e-8 * max(1.0, np.max(np.abs(matrix)))


@settings(max_examples=50, deadline=None)
@given(rectangular_matrices())
def test_range_and_complement_decompose_ambient_space(matrix):
    rng_basis = column_space(matrix)
    complement = orth_complement(rng_basis, ambient_dim=matrix.shape[0])
    assert rng_basis.shape[1] + complement.shape[1] == matrix.shape[0]
    if rng_basis.shape[1] and complement.shape[1]:
        assert np.max(np.abs(rng_basis.T @ complement)) < 1e-10


@settings(max_examples=50, deadline=None)
@given(square_matrices(max_dim=4), st.integers(min_value=1, max_value=4))
def test_hamiltonian_skew_hamiltonian_split_is_exact(block, half):
    """Every even-dimensional matrix splits uniquely into H + W parts."""
    n = 2 * half
    rng = np.random.default_rng(abs(hash(block.tobytes())) % (2**32))
    matrix = rng.standard_normal((n, n)) + (np.pad(block, ((0, n - block.shape[0]),
                                                           (0, n - block.shape[1])))
                                            if block.shape[0] <= n else np.zeros((n, n)))
    h_part = hamiltonian_part(matrix)
    w_part = skew_hamiltonian_part(matrix)
    np.testing.assert_allclose(h_part + w_part, matrix, atol=1e-9)
    assert is_hamiltonian(h_part)
    assert is_skew_hamiltonian(w_part)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**31 - 1))
def test_pvl_reduction_invariants(half, seed):
    """PVL: orthogonal symplectic U, block triangular form, spectrum preserved."""
    rng = np.random.default_rng(seed)
    a_block = rng.standard_normal((half, half))
    r_block = rng.standard_normal((half, half))
    q_block = rng.standard_normal((half, half))
    w = np.block(
        [
            [a_block, 0.5 * (r_block - r_block.T)],
            [0.5 * (q_block - q_block.T), a_block.T],
        ]
    )
    u, t = pvl_decomposition(w)
    assert is_orthogonal_symplectic(u)
    assert np.max(np.abs(t[half:, :half])) < 1e-9 * max(1.0, np.max(np.abs(w)))
    np.testing.assert_allclose(
        np.sort(np.linalg.eigvals(w).real), np.sort(np.linalg.eigvals(t).real), atol=1e-6
    )


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**31 - 1))
def test_lyapunov_solution_properties(dim, seed):
    """For stable A and PSD Q the Lyapunov solution is symmetric PSD."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((dim, dim))
    a = a - (np.max(np.abs(np.linalg.eigvals(a).real)) + 0.5) * np.eye(dim)
    b = rng.standard_normal((dim, max(1, dim // 2)))
    q = b @ b.T
    y = solve_continuous_lyapunov(a, q)
    np.testing.assert_allclose(a @ y + y @ a.T + q, 0.0, atol=1e-7 * max(1.0, np.abs(q).max()))
    np.testing.assert_allclose(y, y.T, atol=1e-8)
    assert np.min(np.linalg.eigvalsh(0.5 * (y + y.T))) >= -1e-8


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=8))
def test_symplectic_identity_properties(half):
    j = symplectic_identity(half)
    np.testing.assert_allclose(j.T, -j)
    np.testing.assert_allclose(j @ j, -np.eye(2 * half))
    assert is_skew_hamiltonian(np.eye(2 * half))
