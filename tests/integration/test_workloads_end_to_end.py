"""End-to-end workload tests: larger circuit models through the full pipeline."""

import numpy as np
import pytest

from repro.bench import run_single_model, table1_rows
from repro.circuits import paper_benchmark_model
from repro.descriptor import additive_decomposition, count_modes
from repro.passivity import extract_proper_part, shh_passivity_test


class TestMediumOrderModels:
    @pytest.mark.parametrize("order", [20, 40, 60])
    def test_benchmark_models_are_passive(self, order):
        system = paper_benchmark_model(order, n_impulsive_stubs=2).system
        report = shh_passivity_test(system)
        assert report.is_passive, report.failure_reason
        assert report.diagnostics["n_impulsive_directions_removed"] > 0

    def test_proper_part_extraction_matches_decomposition_medium(self):
        system = paper_benchmark_model(30).system
        proper_shh = extract_proper_part(system)
        proper_ref = additive_decomposition(system).proper_part
        for omega in (0.0, 0.5, 5.0, 50.0):
            np.testing.assert_allclose(
                proper_shh.evaluate(1j * omega),
                proper_ref.evaluate(1j * omega),
                atol=1e-5,
            )

    def test_mode_inventory_of_benchmark_model(self):
        system = paper_benchmark_model(40, n_impulsive_stubs=2).system
        modes = count_modes(system)
        assert modes.order == 40
        assert modes.n_impulsive >= 2
        assert modes.n_nondynamic > 0
        assert modes.is_stable


class TestHarness:
    def test_run_single_model_reports_all_methods(self):
        system = paper_benchmark_model(20).system
        results = run_single_model(system, lmi_order_limit=10)
        assert results["lmi"]["seconds"] is None  # skipped above the limit
        assert results["proposed"]["passive"] is True
        assert results["weierstrass"]["passive"] is True
        assert results["proposed"]["seconds"] > 0

    def test_table1_rows_structure(self):
        rows = table1_rows(orders=(20,), lmi_order_limit=0, methods=("proposed", "weierstrass"))
        assert len(rows) == 1
        row = rows[0]
        assert row.order == 20
        assert row.passive["proposed"] is True
        assert row.paper_seconds["proposed"] == pytest.approx(0.1328)

    def test_harness_timings_scale_with_order(self):
        rows = table1_rows(
            orders=(20, 60), lmi_order_limit=0, methods=("proposed",)
        )
        assert rows[1].seconds["proposed"] > rows[0].seconds["proposed"]
