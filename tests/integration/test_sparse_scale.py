"""Scale tests of the sparse backend.

The fast tests here are tier-1: they assemble a >= 2k-node grid sparsely and
verify the memory win and the end-to-end engine verdict without ever
densifying.  The ``slow``-marked tests push to ~10k states and are run by the
nightly sparse job (``pytest -m slow``).
"""

import time

import numpy as np
import pytest

from repro.circuits import rc_grid, rlc_grid
from repro.engine import DecompositionCache, check_passivity, select_method


def sparse_pencil_bytes(system) -> int:
    """Actual bytes held by the CSR stamps of ``E`` and ``A``."""
    total = 0
    for matrix in (system.sparse_e, system.sparse_a):
        total += matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
    return total


class TestTwoThousandNodeGrid:
    """Tier-1: the acceptance-scale grid, fast because nothing densifies."""

    @pytest.fixture(scope="class")
    def grid_2k(self):
        model = rc_grid(46, 46, sparse=True)  # 2116 nodes >= 2k
        assert model.system.order >= 2000
        return model.system

    def test_memory_reduction_over_the_dense_path(self, grid_2k):
        n = grid_2k.order
        dense_bytes = 2 * n * n * 8  # what the dense pipeline's E and A cost
        assert dense_bytes / sparse_pencil_bytes(grid_2k) >= 5.0

    def test_auto_dispatch_reaches_a_verdict_without_densifying(self, grid_2k):
        start = time.perf_counter()
        report = check_passivity(grid_2k, method="auto")
        elapsed = time.perf_counter() - start
        assert report.method == "shh-sparse"
        assert report.is_passive, report.failure_reason
        assert "e" not in grid_2k.__dict__ and "a" not in grid_2k.__dict__
        # The certificate path is O(nnz); seconds would mean densification.
        assert elapsed < 5.0

    def test_fingerprinting_scales(self, grid_2k):
        from repro.engine import fingerprint_system

        cache = DecompositionCache()
        cache.get_or_compute(grid_2k, "marker", lambda: "x")
        assert cache.get_or_compute(grid_2k, "marker", lambda: "y") == "x"
        assert isinstance(fingerprint_system(grid_2k), str)
        assert "e" not in grid_2k.__dict__


@pytest.mark.slow
class TestTenThousandStateWorkloads:
    """Nightly-scale workloads: far beyond what the dense pipeline can touch."""

    def test_ten_thousand_node_rc_grid(self):
        system = rc_grid(100, 100, sparse=True).system
        assert system.order == 10_000
        report = check_passivity(system, method="auto")
        assert report.method == "shh-sparse"
        assert report.is_passive, report.failure_reason

    def test_ten_thousand_state_rlc_grid(self):
        system = rlc_grid(72, 72, sparse=True).system
        assert system.order > 10_000
        report = check_passivity(system, method="auto")
        assert report.is_passive, report.failure_reason

    def test_select_method_routes_every_large_grid_sparse(self):
        for system in (
            rc_grid(60, 60, sparse=True).system,
            rlc_grid(40, 40, sparse=True).system,
        ):
            assert select_method(system).name == "shh-sparse"

    def test_large_reduction_path(self):
        # Break the certificate (scaled C) on a mid-size grid: the sparse
        # deflation plus the half-size test must still finish and accept.
        from repro.descriptor import DescriptorSystem

        base = rc_grid(24, 24, sparse=True).system
        nudged = DescriptorSystem(
            base.sparse_e, base.sparse_a, base.b, base.c * 1.001, base.d
        )
        report = check_passivity(nudged, method="shh-sparse")
        assert report.is_passive, report.failure_reason
        assert report.diagnostics["sparse_path"] == "sparse-reduction"
