"""Integration tests: every passivity test must agree on the same models."""

import numpy as np
import pytest

from repro.circuits import (
    coupled_line_bus,
    feedthrough_perturbation,
    impulsive_rlc_ladder,
    negative_resistor_perturbation,
    paper_benchmark_model,
    random_coupled_bus,
    random_passive_descriptor,
    rc_grid,
    rc_line,
    rlc_grid,
    rlc_ladder,
)
from repro.passivity import (
    gare_passivity_test,
    lmi_passivity_test,
    sampling_passivity_check,
    shh_passivity_test,
    sparse_shh_passivity_test,
    weierstrass_passivity_test,
)

PASSIVE_MODELS = [
    ("rc_line", lambda: rc_line(6).system),
    ("rlc_ladder", lambda: rlc_ladder(5).system),
    ("impulsive_ladder", lambda: impulsive_rlc_ladder(4, 1).system),
    ("impulsive_two_stubs", lambda: impulsive_rlc_ladder(5, 2).system),
    ("benchmark_order_25", lambda: paper_benchmark_model(25).system),
    ("random_passive", lambda: random_passive_descriptor(12, seed=4, feedthrough_scale=1.0)),
    ("rc_grid", lambda: rc_grid(4, 5, sparse=True).system),
    ("rlc_grid", lambda: rlc_grid(3, 4, sparse=True).system),
    ("coupled_bus", lambda: coupled_line_bus(3, 2, sparse=True).system),
    ("random_bus", lambda: random_coupled_bus(14, seed=2, sparse=True).system),
]


@pytest.mark.parametrize("name,factory", PASSIVE_MODELS)
def test_shh_weierstrass_sampling_agree_on_passive_models(name, factory):
    system = factory()
    shh = shh_passivity_test(system)
    weierstrass = weierstrass_passivity_test(system)
    sampling = sampling_passivity_check(system)
    assert shh.is_passive, (name, shh.failure_reason)
    assert weierstrass.is_passive, (name, weierstrass.failure_reason)
    assert sampling.is_passive, name


@pytest.mark.parametrize("name,factory", PASSIVE_MODELS)
def test_shh_sparse_joins_the_agreement_matrix_on_passive_models(name, factory):
    system = factory()
    sparse = sparse_shh_passivity_test(system)
    assert sparse.is_passive, (name, sparse.failure_reason)
    assert sparse.method == "shh-sparse"


@pytest.mark.parametrize(
    "name,factory",
    [
        (
            "shifted_impulsive",
            lambda: feedthrough_perturbation(impulsive_rlc_ladder(4, 1).system, 1.0),
        ),
        (
            "negative_conductance",
            lambda: negative_resistor_perturbation(rlc_ladder(4), 3.0),
        ),
        (
            "shifted_random",
            lambda: feedthrough_perturbation(
                random_passive_descriptor(10, seed=9, feedthrough_scale=1.0), 8.0
            ),
        ),
    ],
)
def test_shh_weierstrass_agree_on_nonpassive_models(name, factory):
    system = factory()
    shh = shh_passivity_test(system)
    weierstrass = weierstrass_passivity_test(system)
    sparse = sparse_shh_passivity_test(system)
    assert not shh.is_passive, name
    assert not weierstrass.is_passive, name
    assert not sparse.is_passive, name


NONPASSIVE_GENERATOR_MODELS = [
    (
        "shifted_grid",
        lambda: feedthrough_perturbation(rc_grid(4, 4, sparse=True).system, 3.0),
    ),
    (
        "negative_grid_conductance",
        lambda: negative_resistor_perturbation(rlc_grid(3, 3, sparse=False), 4.0),
    ),
    (
        "shifted_bus",
        lambda: feedthrough_perturbation(
            random_coupled_bus(12, seed=8, sparse=True).system, 4.0
        ),
    ),
]


@pytest.mark.parametrize("name,factory", NONPASSIVE_GENERATOR_MODELS)
def test_all_methods_reject_perturbed_generator_workloads(name, factory):
    system = factory()
    verdicts = {
        "shh": shh_passivity_test(system).is_passive,
        "weierstrass": weierstrass_passivity_test(system).is_passive,
        "shh-sparse": sparse_shh_passivity_test(system).is_passive,
    }
    assert verdicts == {"shh": False, "weierstrass": False, "shh-sparse": False}, name


def test_lmi_agrees_on_small_models():
    passive = random_passive_descriptor(8, seed=3, feedthrough_scale=1.0)
    nonpassive = feedthrough_perturbation(passive, 10.0)
    assert lmi_passivity_test(passive).is_passive
    assert not lmi_passivity_test(nonpassive).is_passive
    assert shh_passivity_test(passive).is_passive
    assert not shh_passivity_test(nonpassive).is_passive


def test_gare_agrees_with_shh_on_admissible_models():
    system = rc_line(8).system
    assert gare_passivity_test(system).is_passive == shh_passivity_test(system).is_passive


def test_passivity_margin_bracketing():
    """The SHH verdict flips exactly around the sampled passivity margin."""
    system = impulsive_rlc_ladder(4, 1).system
    response = system.frequency_response(np.logspace(-3, 3, 300))
    margin = min(
        float(np.min(np.linalg.eigvalsh(0.5 * (value + value.conj().T))))
        for value in response
    )
    assert margin > 0
    still_passive = feedthrough_perturbation(system, 0.8 * margin)
    not_passive = feedthrough_perturbation(system, 1.25 * margin)
    assert shh_passivity_test(still_passive).is_passive
    assert not shh_passivity_test(not_passive).is_passive
