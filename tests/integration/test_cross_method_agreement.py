"""Integration tests: every passivity test must agree on the same models."""

import numpy as np
import pytest

from repro.circuits import (
    feedthrough_perturbation,
    impulsive_rlc_ladder,
    negative_resistor_perturbation,
    paper_benchmark_model,
    random_passive_descriptor,
    rc_line,
    rlc_ladder,
)
from repro.passivity import (
    gare_passivity_test,
    lmi_passivity_test,
    sampling_passivity_check,
    shh_passivity_test,
    weierstrass_passivity_test,
)

PASSIVE_MODELS = [
    ("rc_line", lambda: rc_line(6).system),
    ("rlc_ladder", lambda: rlc_ladder(5).system),
    ("impulsive_ladder", lambda: impulsive_rlc_ladder(4, 1).system),
    ("impulsive_two_stubs", lambda: impulsive_rlc_ladder(5, 2).system),
    ("benchmark_order_25", lambda: paper_benchmark_model(25).system),
    ("random_passive", lambda: random_passive_descriptor(12, seed=4, feedthrough_scale=1.0)),
]


@pytest.mark.parametrize("name,factory", PASSIVE_MODELS)
def test_shh_weierstrass_sampling_agree_on_passive_models(name, factory):
    system = factory()
    shh = shh_passivity_test(system)
    weierstrass = weierstrass_passivity_test(system)
    sampling = sampling_passivity_check(system)
    assert shh.is_passive, (name, shh.failure_reason)
    assert weierstrass.is_passive, (name, weierstrass.failure_reason)
    assert sampling.is_passive, name


@pytest.mark.parametrize(
    "name,factory",
    [
        (
            "shifted_impulsive",
            lambda: feedthrough_perturbation(impulsive_rlc_ladder(4, 1).system, 1.0),
        ),
        (
            "negative_conductance",
            lambda: negative_resistor_perturbation(rlc_ladder(4), 3.0),
        ),
        (
            "shifted_random",
            lambda: feedthrough_perturbation(
                random_passive_descriptor(10, seed=9, feedthrough_scale=1.0), 8.0
            ),
        ),
    ],
)
def test_shh_weierstrass_agree_on_nonpassive_models(name, factory):
    system = factory()
    shh = shh_passivity_test(system)
    weierstrass = weierstrass_passivity_test(system)
    assert not shh.is_passive, name
    assert not weierstrass.is_passive, name


def test_lmi_agrees_on_small_models():
    passive = random_passive_descriptor(8, seed=3, feedthrough_scale=1.0)
    nonpassive = feedthrough_perturbation(passive, 10.0)
    assert lmi_passivity_test(passive).is_passive
    assert not lmi_passivity_test(nonpassive).is_passive
    assert shh_passivity_test(passive).is_passive
    assert not shh_passivity_test(nonpassive).is_passive


def test_gare_agrees_with_shh_on_admissible_models():
    system = rc_line(8).system
    assert gare_passivity_test(system).is_passive == shh_passivity_test(system).is_passive


def test_passivity_margin_bracketing():
    """The SHH verdict flips exactly around the sampled passivity margin."""
    system = impulsive_rlc_ladder(4, 1).system
    response = system.frequency_response(np.logspace(-3, 3, 300))
    margin = min(
        float(np.min(np.linalg.eigvalsh(0.5 * (value + value.conj().T))))
        for value in response
    )
    assert margin > 0
    still_passive = feedthrough_perturbation(system, 0.8 * margin)
    not_passive = feedthrough_perturbation(system, 1.25 * margin)
    assert shh_passivity_test(still_passive).is_passive
    assert not shh_passivity_test(not_passive).is_passive
