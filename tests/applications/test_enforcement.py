"""Tests for passivity enforcement."""

import numpy as np
import pytest

from repro.applications import (
    enforce_passivity,
    enforce_passivity_iterative,
    passivity_violation,
)
from repro.engine import DecompositionCache
from repro.circuits import (
    feedthrough_perturbation,
    impulsive_rlc_ladder,
    negative_resistor_perturbation,
    rlc_ladder,
)
from repro.descriptor import DescriptorSystem, first_markov_parameter
from repro.exceptions import NotImplementedForSystemError
from repro.passivity import shh_passivity_test


class TestViolationMeasure:
    def test_passive_model_has_zero_violation(self, small_impulsive_ladder):
        assert passivity_violation(small_impulsive_ladder) == pytest.approx(0.0, abs=1e-9)

    def test_shifted_model_violation_matches_shift(self, small_impulsive_ladder):
        response = small_impulsive_ladder.frequency_response(np.logspace(-3, 3, 200))
        margin = min(
            float(np.min(np.linalg.eigvalsh(0.5 * (v + v.conj().T)))) for v in response
        )
        shift = margin + 0.3
        bad = feedthrough_perturbation(small_impulsive_ladder, shift)
        violation = passivity_violation(bad)
        assert violation == pytest.approx(shift - margin, rel=0.05)


class TestEnforcement:
    def test_repairs_shifted_model(self, small_impulsive_ladder):
        bad = feedthrough_perturbation(small_impulsive_ladder, 0.6)
        assert not shh_passivity_test(bad).is_passive
        result = enforce_passivity(bad)
        assert result.report.is_passive
        assert result.remaining_violation <= 1e-8
        assert result.feedthrough_shift >= result.original_violation

    def test_repaired_model_stays_close_outside_violation(self, small_impulsive_ladder):
        bad = feedthrough_perturbation(small_impulsive_ladder, 0.5)
        result = enforce_passivity(bad, margin_fraction=0.01)
        # The repair is a constant shift: the error w.r.t. the non-passive
        # model is exactly the shift, and bounded by violation * (1 + margin).
        omega = 3.0
        delta = result.system.evaluate(1j * omega) - bad.evaluate(1j * omega)
        assert float(np.max(np.abs(delta))) <= 1.05 * result.feedthrough_shift + 1e-6

    def test_repairs_negative_m1(self):
        # G(s) = 1/(s+1) + 1 - 0.2 s : impulsive part with negative M1.
        e = np.zeros((3, 3))
        e[0, 0] = 1.0
        e[1, 2] = 1.0
        a = np.diag([-1.0, 1.0, 1.0])
        b = np.array([[1.0], [0.0], [np.sqrt(0.2)]])
        c = np.array([[1.0, np.sqrt(0.2), 0.0]])
        bad = DescriptorSystem(e, a, b, c, np.array([[1.0]]))
        np.testing.assert_allclose(first_markov_parameter(bad), [[-0.2]], atol=1e-10)
        assert not shh_passivity_test(bad).is_passive
        result = enforce_passivity(bad)
        assert result.report.is_passive
        assert result.m1_clip_magnitude > 0.1
        np.testing.assert_allclose(
            first_markov_parameter(result.system), [[0.0]], atol=1e-8
        )

    def test_passive_model_is_left_essentially_unchanged(self, small_rlc_ladder):
        result = enforce_passivity(small_rlc_ladder, margin_fraction=0.0)
        assert result.feedthrough_shift == pytest.approx(0.0, abs=1e-9)
        omega = 1.7
        np.testing.assert_allclose(
            result.system.evaluate(1j * omega),
            small_rlc_ladder.evaluate(1j * omega),
            atol=1e-7,
        )

    def test_unstable_model_rejected(self):
        unstable = DescriptorSystem(
            np.eye(1), np.array([[0.5]]), np.ones((1, 1)), np.ones((1, 1))
        )
        with pytest.raises(NotImplementedForSystemError):
            enforce_passivity(unstable)

    def test_nonsquare_model_rejected(self, rng):
        sys = DescriptorSystem(
            np.eye(3), -np.eye(3), rng.standard_normal((3, 2)), rng.standard_normal((1, 3))
        )
        with pytest.raises(NotImplementedForSystemError):
            enforce_passivity(sys)

    def test_s_squared_cannot_be_repaired(self, s_squared_system):
        with pytest.raises(NotImplementedForSystemError):
            enforce_passivity(s_squared_system)


class TestIterativeEnforcement:
    def _violating_ladder(self, n_sections=6):
        base = rlc_ladder(n_sections).system
        response = base.frequency_response(np.logspace(-3, 3, 200))
        margin = min(
            float(np.min(np.linalg.eigvalsh(0.5 * (v + v.conj().T))))
            for v in response
        )
        return feedthrough_perturbation(base, margin + 0.3)

    def test_repairs_to_certified_passivity(self):
        bad = self._violating_ladder()
        result = enforce_passivity_iterative(bad)
        assert result.report.is_passive, result.report.failure_reason
        assert shh_passivity_test(result.system).is_passive
        assert result.iterations >= 1
        assert len(result.shifts) == result.iterations
        assert result.remaining_violation == pytest.approx(0.0, abs=1e-9)

    def test_escalation_reuses_the_incremental_tier(self):
        # A deliberately understated first shift forces several escalation
        # iterations; all re-certs after the cold root must be incremental.
        bad = self._violating_ladder()
        cache = DecompositionCache()
        result = enforce_passivity_iterative(
            bad, margin_fraction=-0.5, growth=2.0, max_iterations=8, cache=cache
        )
        assert result.report.is_passive
        assert result.iterations > 1
        assert result.incremental_recerts >= 1
        assert cache.stats.incremental_hits == result.incremental_recerts
        # Escalation doubles the shift each round.
        for earlier, later in zip(result.shifts, result.shifts[1:]):
            assert later == pytest.approx(2.0 * earlier)

    def test_impulsive_candidates_recert_cold_via_shh(self, small_impulsive_ladder):
        bad = feedthrough_perturbation(small_impulsive_ladder, 0.6)
        cache = DecompositionCache()
        result = enforce_passivity_iterative(bad, cache=cache)
        assert result.report.is_passive
        assert result.incremental_recerts == 0

    def test_passive_model_passes_first_iteration(self, small_rlc_ladder):
        result = enforce_passivity_iterative(small_rlc_ladder)
        assert result.report.is_passive
        assert result.iterations == 1
        assert result.feedthrough_shift == pytest.approx(0.0, abs=1e-9)

    def test_exhausted_iterations_return_the_last_report(self):
        bad = self._violating_ladder()
        result = enforce_passivity_iterative(
            bad, margin_fraction=-0.999, growth=1.01, max_iterations=2
        )
        assert result.iterations == 2
        assert result.report is not None
        assert not result.report.is_passive

    def test_unstable_model_rejected(self):
        unstable = DescriptorSystem(
            np.eye(1), np.array([[0.5]]), np.ones((1, 1)), np.ones((1, 1))
        )
        with pytest.raises(NotImplementedForSystemError):
            enforce_passivity_iterative(unstable)

    def test_nonsquare_model_rejected(self, rng):
        sys = DescriptorSystem(
            np.eye(3),
            -np.eye(3),
            rng.standard_normal((3, 2)),
            rng.standard_normal((1, 3)),
        )
        with pytest.raises(NotImplementedForSystemError):
            enforce_passivity_iterative(sys)

    def test_s_squared_cannot_be_repaired(self, s_squared_system):
        with pytest.raises(NotImplementedForSystemError):
            enforce_passivity_iterative(s_squared_system)
