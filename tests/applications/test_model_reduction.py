"""Tests for descriptor-system model order reduction."""

import numpy as np
import pytest

from repro.applications import balanced_truncation, reduce_descriptor_system
from repro.circuits import impulsive_rlc_ladder, rc_line, rlc_ladder
from repro.descriptor import StateSpace, count_modes, first_markov_parameter
from repro.exceptions import DimensionError, NotImplementedForSystemError, NotStableError
from repro.passivity import shh_passivity_test


class TestBalancedTruncation:
    def _proper_system(self, rng, n=10, m=2):
        a = rng.standard_normal((n, n))
        a = a - (np.max(np.linalg.eigvals(a).real) + 1.0) * np.eye(n)
        b = rng.standard_normal((n, m))
        return StateSpace(a, b, b.T, 0.1 * np.eye(m))

    def test_error_within_bound(self, rng):
        system = self._proper_system(rng)
        reduced, hankel, bound = balanced_truncation(system, 4)
        assert reduced.order == 4
        for omega in (0.0, 0.3, 1.0, 5.0, 30.0):
            error = np.linalg.norm(
                system.evaluate(1j * omega) - reduced.evaluate(1j * omega), 2
            )
            assert error <= bound * (1 + 1e-6) + 1e-10

    def test_hankel_values_are_nonincreasing(self, rng):
        _, hankel, _ = balanced_truncation(self._proper_system(rng), 3)
        assert np.all(np.diff(hankel) <= 1e-12)

    def test_reduced_system_is_stable(self, rng):
        reduced, _, _ = balanced_truncation(self._proper_system(rng), 5)
        assert reduced.is_stable()

    def test_full_order_request_returns_original(self, rng):
        system = self._proper_system(rng, n=6)
        reduced, _, bound = balanced_truncation(system, 6)
        assert reduced.order == 6
        assert bound == 0.0

    def test_invalid_order_rejected(self, rng):
        with pytest.raises(DimensionError):
            balanced_truncation(self._proper_system(rng, n=5), 9)

    def test_unstable_system_rejected(self):
        unstable = StateSpace(np.array([[1.0]]), np.ones((1, 1)), np.ones((1, 1)), np.zeros((1, 1)))
        with pytest.raises(NotStableError):
            balanced_truncation(unstable, 1)


class TestDescriptorReduction:
    def test_impulsive_structure_preserved(self, small_impulsive_ladder):
        full_m1 = first_markov_parameter(small_impulsive_ladder)
        reduced = reduce_descriptor_system(small_impulsive_ladder, proper_order=6)
        assert reduced.proper_order == 6
        assert reduced.system.order < small_impulsive_ladder.order
        np.testing.assert_allclose(
            first_markov_parameter(reduced.system), full_m1, atol=1e-8
        )
        # The reduced model keeps impulsive modes (the reattached s*M1 block).
        assert count_modes(reduced.system).n_impulsive >= 1

    def test_frequency_response_error_within_bound(self):
        system = rlc_ladder(8).system
        reduced = reduce_descriptor_system(system, proper_order=8)
        for omega in (0.0, 0.2, 1.0, 4.0, 20.0):
            error = np.linalg.norm(
                system.evaluate(1j * omega) - reduced.system.evaluate(1j * omega), 2
            )
            assert error <= reduced.error_bound * (1 + 1e-6) + 1e-9

    def test_reduced_rc_line_stays_passive(self):
        system = rc_line(12).system
        reduced = reduce_descriptor_system(system, proper_order=4)
        report = shh_passivity_test(reduced.system)
        # RC lines have monotone Hankel decay and symmetric structure; balanced
        # truncation keeps them passive in practice — and the certification is
        # exactly what the library is for.
        assert report.is_passive, report.failure_reason

    def test_higher_order_markov_rejected(self, s_squared_system):
        with pytest.raises(NotImplementedForSystemError):
            reduce_descriptor_system(s_squared_system, proper_order=1)

    def test_impulse_free_model_reduces_to_regular_system(self):
        system = rc_line(10).system
        reduced = reduce_descriptor_system(system, proper_order=3)
        modes = count_modes(reduced.system)
        assert modes.n_impulsive == 0
        assert reduced.system.order == 3
