"""Tests for descriptor-system model order reduction."""

import numpy as np
import pytest

from repro.applications import (
    balanced_truncation,
    reduce_descriptor_system,
    reduce_until_passive,
)
from repro.engine import DecompositionCache
from repro.circuits import impulsive_rlc_ladder, rc_line, rlc_ladder
from repro.descriptor import StateSpace, count_modes, first_markov_parameter
from repro.exceptions import DimensionError, NotImplementedForSystemError, NotStableError
from repro.passivity import shh_passivity_test


class TestBalancedTruncation:
    def _proper_system(self, rng, n=10, m=2):
        a = rng.standard_normal((n, n))
        a = a - (np.max(np.linalg.eigvals(a).real) + 1.0) * np.eye(n)
        b = rng.standard_normal((n, m))
        return StateSpace(a, b, b.T, 0.1 * np.eye(m))

    def test_error_within_bound(self, rng):
        system = self._proper_system(rng)
        reduced, hankel, bound = balanced_truncation(system, 4)
        assert reduced.order == 4
        for omega in (0.0, 0.3, 1.0, 5.0, 30.0):
            error = np.linalg.norm(
                system.evaluate(1j * omega) - reduced.evaluate(1j * omega), 2
            )
            assert error <= bound * (1 + 1e-6) + 1e-10

    def test_hankel_values_are_nonincreasing(self, rng):
        _, hankel, _ = balanced_truncation(self._proper_system(rng), 3)
        assert np.all(np.diff(hankel) <= 1e-12)

    def test_reduced_system_is_stable(self, rng):
        reduced, _, _ = balanced_truncation(self._proper_system(rng), 5)
        assert reduced.is_stable()

    def test_full_order_request_returns_original(self, rng):
        system = self._proper_system(rng, n=6)
        reduced, _, bound = balanced_truncation(system, 6)
        assert reduced.order == 6
        assert bound == 0.0

    def test_invalid_order_rejected(self, rng):
        with pytest.raises(DimensionError):
            balanced_truncation(self._proper_system(rng, n=5), 9)

    def test_unstable_system_rejected(self):
        unstable = StateSpace(np.array([[1.0]]), np.ones((1, 1)), np.ones((1, 1)), np.zeros((1, 1)))
        with pytest.raises(NotStableError):
            balanced_truncation(unstable, 1)


class TestDescriptorReduction:
    def test_impulsive_structure_preserved(self, small_impulsive_ladder):
        full_m1 = first_markov_parameter(small_impulsive_ladder)
        reduced = reduce_descriptor_system(small_impulsive_ladder, proper_order=6)
        assert reduced.proper_order == 6
        assert reduced.system.order < small_impulsive_ladder.order
        np.testing.assert_allclose(
            first_markov_parameter(reduced.system), full_m1, atol=1e-8
        )
        # The reduced model keeps impulsive modes (the reattached s*M1 block).
        assert count_modes(reduced.system).n_impulsive >= 1

    def test_frequency_response_error_within_bound(self):
        system = rlc_ladder(8).system
        reduced = reduce_descriptor_system(system, proper_order=8)
        for omega in (0.0, 0.2, 1.0, 4.0, 20.0):
            error = np.linalg.norm(
                system.evaluate(1j * omega) - reduced.system.evaluate(1j * omega), 2
            )
            assert error <= reduced.error_bound * (1 + 1e-6) + 1e-9

    def test_reduced_rc_line_stays_passive(self):
        system = rc_line(12).system
        reduced = reduce_descriptor_system(system, proper_order=4)
        report = shh_passivity_test(reduced.system)
        # RC lines have monotone Hankel decay and symmetric structure; balanced
        # truncation keeps them passive in practice — and the certification is
        # exactly what the library is for.
        assert report.is_passive, report.failure_reason

    def test_higher_order_markov_rejected(self, s_squared_system):
        with pytest.raises(NotImplementedForSystemError):
            reduce_descriptor_system(s_squared_system, proper_order=1)

    def test_impulse_free_model_reduces_to_regular_system(self):
        system = rc_line(10).system
        reduced = reduce_descriptor_system(system, proper_order=3)
        modes = count_modes(reduced.system)
        assert modes.n_impulsive == 0
        assert reduced.system.order == 3


class TestReduceUntilPassive:
    def test_finds_a_small_passive_order(self):
        system = rlc_ladder(10).system
        result = reduce_until_passive(system)
        assert result.report.is_passive, result.report.failure_reason
        assert shh_passivity_test(result.model.system).is_passive
        assert result.orders_tried[0] == 1
        assert result.model.proper_order == result.orders_tried[-1]

    def test_orders_are_deduped_and_clamped(self):
        system = rc_line(6).system
        result = reduce_until_passive(system, orders=(3, 3, 2, 50))
        # Duplicate and non-increasing candidates are skipped; oversized
        # requests clamp to the full proper order.
        assert list(result.orders_tried) == sorted(set(result.orders_tried))
        assert all(o <= system.order for o in result.orders_tried)
        assert result.report.is_passive

    def test_shared_cache_splits_the_system_once(self):
        system = rlc_ladder(8).system
        cache = DecompositionCache()
        result = reduce_until_passive(system, cache=cache)
        assert result.report.is_passive
        # One additive decomposition serves every candidate re-check.
        assert cache.stats.factorizations_for("additive_decomposition") <= 1
