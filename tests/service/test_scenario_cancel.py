"""Cancellation races of the streaming scenario engine.

The property test drives a gated scenario to a randomly chosen point of
completion, cancels it there, and checks the invariants the stream contract
promises regardless of where the cancellation lands:

* no orphan corners — every cell job reaches a terminal state,
* no events after the terminal ``cancelled`` event,
* balanced counters — done/cancelled cells partition the scenario, and the
  cache's counter deltas stay consistent (nothing double-counted, nothing
  negative).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import rlc_ladder
from repro.engine import BatchRunner
from repro.service import JobState, PassivityService, ScenarioSpec, ScenarioState

from harness import GateRegistry, assert_terminal_last, drain, numbered_ids


def _gated_service(gates: GateRegistry) -> PassivityService:
    runner = BatchRunner(registry=gates.registry, backend="thread")
    return PassivityService(runner, max_workers=1)


class TestCancellationRace:
    @pytest.mark.property
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(n_corners=st.integers(2, 6), frac=st.floats(0.0, 1.0))
    def test_cancel_anywhere_leaves_no_orphans_and_a_silent_tail(
        self, n_corners, frac
    ):
        completed_target = int(frac * (n_corners - 1))
        gates = GateRegistry()
        spec = ScenarioSpec(
            family="corners",
            system=rlc_ladder(3).system,
            n_corners=n_corners,
            method="gated",
        )
        with _gated_service(gates) as service:
            baseline = service.stats().cache
            handle = service.submit_scenario(spec)
            subscription = handle.subscribe(buffer=1024)
            assert gates.wait_started(1)
            # Drive exactly `completed_target` cells to completion before
            # cancelling (event-driven: we count their corner events).
            gates.release(completed_target)
            seen = 0
            while seen < completed_target:
                event = subscription.get(timeout=10.0)
                assert event is not None, "stream stalled before cancel"
                if event.event == "corner":
                    seen += 1
            assert handle.cancel() is True
            assert handle.cancel() is False  # idempotent: already terminal
            gates.open_all()  # let any in-flight gated cell resolve
            # Invariant 1: no orphans — every cell job is (or becomes)
            # terminal, including the ones that were held or running.
            scenario_id = handle.scenario_id
            for index in range(n_corners):
                assert service.wait(f"{scenario_id}-c{index}", timeout=10.0)
            # Invariant 2: nothing follows the terminal `cancelled` event.
            events = drain(subscription)
            assert_terminal_last(events)
            assert events[-1].event == "cancelled"
            ids = numbered_ids(events)
            assert ids == sorted(ids)
            # Invariant 3: balanced counters — done + cancelled cells
            # partition the scenario (the cell running at the cancel may
            # land on either side), nothing failed, nothing queued.
            status = handle.status()
            assert status.state is ScenarioState.CANCELLED
            assert status.n_failed == 0
            assert status.n_done + status.n_cancelled == n_corners
            assert completed_target <= status.n_done <= completed_target + 1
            assert service.stats().queue_depth == 0
            # Invariant 4: the cache's counter deltas stayed balanced —
            # the gated method never touches the spectral cache, so the
            # cancellation storm must not have moved (or negated) them.
            cache = service.stats().cache
            for key in ("hits", "misses", "factorizations"):
                assert cache[key] == baseline[key] >= 0
            # The service is still healthy for unrelated traffic.
            follow_up = service.submit(
                rlc_ladder(3).system, method="gated"
            )
            assert follow_up.result(timeout=10.0).is_passive

    def test_cancel_before_the_root_reaps_held_corners(self):
        gates = GateRegistry()
        spec = ScenarioSpec(
            family="corners",
            system=rlc_ladder(3).system,
            n_corners=5,
            method="gated",
        )
        with _gated_service(gates) as service:
            handle = service.submit_scenario(spec)
            subscription = handle.subscribe()
            assert gates.wait_started(1)  # root on the pool, corners held
            assert handle.cancel() is True
            gates.open_all()
            assert handle.wait(10.0)
            events = drain(subscription)
            assert events[-1].event == "cancelled"
            # The four held corners were cancelled without ever running;
            # the root resolved silently after the cancel.
            status = handle.status()
            assert status.n_cancelled == 4
            scenario_id = handle.scenario_id
            for index in range(1, 5):
                job = service.status(f"{scenario_id}-c{index}")
                assert job.state is JobState.CANCELLED
                assert job.started_at is None
            assert service.wait(f"{scenario_id}-c0", timeout=10.0)

    def test_cancelled_cells_report_the_scenario_as_cause(self):
        gates = GateRegistry()
        spec = ScenarioSpec(
            family="corners",
            system=rlc_ladder(3).system,
            n_corners=3,
            method="gated",
        )
        with _gated_service(gates) as service:
            handle = service.submit_scenario(spec)
            assert gates.wait_started(1)
            assert handle.cancel()
            gates.open_all()
            assert handle.wait(10.0)
            job = service.status(f"{handle.scenario_id}-c1")
            assert job.error == "scenario cancelled"

    def test_service_close_finalizes_open_scenarios_as_cancelled(self):
        gates = GateRegistry()
        spec = ScenarioSpec(
            family="corners",
            system=rlc_ladder(3).system,
            n_corners=4,
            method="gated",
        )
        service = _gated_service(gates)
        service.start()
        handle = service.submit_scenario(spec)
        subscription = handle.subscribe()
        assert gates.wait_started(1)
        gates.open_all()
        service.close()
        events = drain(subscription, timeout=5.0)
        assert events, "shutdown delivered no terminal event"
        assert events[-1].event == "cancelled"
        status = handle.status()  # frozen records stay readable when closed
        assert status.state is ScenarioState.CANCELLED

    def test_cancel_after_done_returns_false(self):
        spec = ScenarioSpec(
            family="corners", system=rlc_ladder(3).system, n_corners=2
        )
        with PassivityService(max_workers=2) as service:
            handle = service.submit_scenario(spec)
            assert handle.wait(15.0)
            assert handle.cancel() is False
