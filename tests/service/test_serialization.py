"""Round-trip tests for the service serialization layer.

The wire forms must be (a) pure JSON — ``json.dumps`` must accept every
payload — and (b) lossless where it matters: matrices, sparsity, cache
fingerprints (server-side dedup depends on them) and report content.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro import DescriptorSystem, check_passivity
from repro.circuits import impulsive_rlc_ladder, rc_grid, rlc_ladder
from repro.engine import DecompositionCache, fingerprint_system
from repro.exceptions import ReproError, SerializationError
from repro.passivity.result import PassivityReport
from repro.service import (
    from_jsonable,
    report_from_jsonable,
    report_to_jsonable,
    system_from_jsonable,
    system_to_jsonable,
    to_jsonable,
)


class TestSystemRoundTrip:
    def test_dense_system_round_trip(self):
        system = impulsive_rlc_ladder(n_sections=4, n_impulsive_stubs=1).system
        payload = json.loads(json.dumps(system_to_jsonable(system)))
        assert payload["format"] == "dense"
        rebuilt = system_from_jsonable(payload)
        assert not rebuilt.is_sparse
        for original, copy in zip(system.matrices(), rebuilt.matrices()):
            np.testing.assert_array_equal(original, copy)

    def test_dense_fingerprint_survives(self):
        system = rlc_ladder(5).system
        rebuilt = system_from_jsonable(system_to_jsonable(system))
        assert fingerprint_system(system) == fingerprint_system(rebuilt)

    def test_sparse_system_round_trip_stays_sparse(self):
        system = rc_grid(8, 8, sparse=True).system
        assert system.is_sparse
        payload = json.loads(json.dumps(system_to_jsonable(system)))
        assert payload["format"] == "csr"
        rebuilt = system_from_jsonable(payload)
        assert rebuilt.is_sparse
        assert rebuilt.nnz == system.nnz
        np.testing.assert_array_equal(
            system.sparse_e.toarray(), rebuilt.sparse_e.toarray()
        )
        np.testing.assert_array_equal(
            system.sparse_a.toarray(), rebuilt.sparse_a.toarray()
        )

    def test_sparse_fingerprint_survives(self):
        # Dedup across the wire: the canonical-CSR fingerprint must be
        # identical after a serialize/deserialize hop.
        system = rc_grid(6, 7, sparse=True).system
        rebuilt = system_from_jsonable(
            json.loads(json.dumps(system_to_jsonable(system)))
        )
        assert fingerprint_system(system) == fingerprint_system(rebuilt)

    def test_sparse_payload_is_onnz(self):
        system = rc_grid(10, 10, sparse=True).system
        payload = system_to_jsonable(system)
        stored = len(payload["e"]["data"]) + len(payload["a"]["data"])
        assert stored == system.nnz
        assert stored < system.order ** 2  # never densified in transit

    def test_report_verdict_agrees_after_round_trip(self):
        system = rlc_ladder(4).system
        rebuilt = system_from_jsonable(system_to_jsonable(system))
        cache = DecompositionCache()
        original = check_passivity(system, cache=cache)
        again = check_passivity(rebuilt, cache=cache)
        assert original.is_passive == again.is_passive
        # Same fingerprint -> the second call is fully cache-warm.
        assert again.diagnostics["engine"]["factorizations"] == 0


class TestReportRoundTrip:
    def test_report_round_trip(self):
        report = check_passivity(
            impulsive_rlc_ladder(n_sections=3, n_impulsive_stubs=1).system
        )
        payload = json.loads(json.dumps(report_to_jsonable(report)))
        rebuilt = report_from_jsonable(payload)
        assert rebuilt.is_passive == report.is_passive
        assert rebuilt.method == report.method
        assert rebuilt.failure_reason == report.failure_reason
        assert rebuilt.step_names == report.step_names
        assert rebuilt.diagnostics["engine"] == report.diagnostics["engine"]

    def test_complex_diagnostics_revive(self):
        report = PassivityReport(is_passive=False, method="shh")
        report.diagnostics["m1_eigenvalues"] = np.array([1.0 + 2.0j, 3.0 - 4.0j])
        report.add_step("probe", "complex detail", passed=False, value=1j)
        payload = json.loads(json.dumps(report_to_jsonable(report)))
        rebuilt = report_from_jsonable(payload)
        assert rebuilt.diagnostics["m1_eigenvalues"] == [1.0 + 2.0j, 3.0 - 4.0j]
        assert rebuilt.steps[0].details["value"] == 1j

    def test_non_finite_floats_stay_strict_json(self):
        # json.dumps(allow_nan=False) is the strict-JSON litmus: Infinity/NaN
        # tokens would break standards-compliant clients.
        report = PassivityReport(is_passive=True, method="sampling")
        report.diagnostics["min_eig"] = float("inf")
        report.diagnostics["gap"] = float("nan")
        report.diagnostics["limit"] = np.array([-np.inf, 1.0])
        report.diagnostics["weird"] = complex(float("inf"), 0.0)
        payload = report_to_jsonable(report)
        encoded = json.dumps(payload, allow_nan=False)  # must not raise
        rebuilt = report_from_jsonable(json.loads(encoded))
        assert rebuilt.diagnostics["min_eig"] == float("inf")
        assert math.isnan(rebuilt.diagnostics["gap"])
        assert rebuilt.diagnostics["limit"][0] == float("-inf")
        assert rebuilt.diagnostics["weird"] == complex(float("inf"), 0.0)

    def test_numpy_scalars_become_plain(self):
        report = PassivityReport(is_passive=True, method="shh")
        report.diagnostics["count"] = np.int64(3)
        report.diagnostics["norm"] = np.float64(0.5)
        payload = report_to_jsonable(report)
        assert payload["diagnostics"]["count"] == 3
        assert isinstance(payload["diagnostics"]["count"], int)
        assert isinstance(payload["diagnostics"]["norm"], float)


class TestDispatchAndErrors:
    def test_tagged_dispatch(self):
        system = rlc_ladder(3).system
        assert isinstance(from_jsonable(to_jsonable(system)), DescriptorSystem)
        report = PassivityReport(is_passive=True, method="shh")
        assert isinstance(from_jsonable(to_jsonable(report)), PassivityReport)

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            {},
            {"kind": "mystery"},
            {"kind": "descriptor_system", "format": "hologram"},
            {"kind": "descriptor_system", "format": "dense"},
            {
                "kind": "descriptor_system",
                "format": "csr",
                "e": {"shape": [2, 2], "data": [1.0]},
                "a": {},
                "b": [[1.0], [0.0]],
                "c": [[1.0, 0.0]],
                "d": [[0.0]],
            },
        ],
    )
    def test_malformed_payloads_raise_typed_error(self, payload):
        with pytest.raises(SerializationError):
            from_jsonable(payload)

    def test_dimension_mismatch_is_serialization_error(self):
        payload = system_to_jsonable(rlc_ladder(3).system)
        payload["b"] = [[1.0]]  # wrong row count
        with pytest.raises(SerializationError):
            system_from_jsonable(payload)

    def test_unsupported_object_raises(self):
        with pytest.raises(SerializationError):
            to_jsonable(object())

    def test_serialization_error_is_repro_error(self):
        # One except clause catches the whole library, service included.
        assert issubclass(SerializationError, ReproError)
        assert issubclass(SerializationError, ValueError)
