"""Micro-batch dispatch and shared-memory shipping in the service layer."""

import os

import pytest

from repro.circuits import rlc_ladder
from repro.engine.shm import SHM_PREFIX, shm_available
from repro.service import PassivityService

SHM_DIR = "/dev/shm"


def repro_segments():
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(SHM_PREFIX))


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = repro_segments()
    yield
    assert repro_segments() == before, "service leaked shared-memory segments"


class TestServiceMicroBatching:
    def test_process_service_batches_small_job_floods(self):
        systems = [rlc_ladder(2 + (k % 3)).system for k in range(8)]
        with PassivityService(
            max_workers=1,
            executor="process",
            batch_small_systems=True,
            dedup=False,
        ) as service:
            handles = [service.submit(system, method="gare") for system in systems]
            reports = [handle.result(timeout=120.0) for handle in handles]
            stats = service.stats()
        assert all(report.is_passive for report in reports)
        # One worker, eight near-simultaneous submissions: at least one
        # dispatch must have carried several jobs.
        assert stats.batches >= 1
        assert stats.batched_jobs >= 2
        assert stats.batch_occupancy > 1.0
        if shm_available():
            assert stats.transport == "shm"
        else:
            assert stats.transport == "pickle"

    def test_policy_off_never_batches(self):
        systems = [rlc_ladder(2).system for _ in range(4)]
        with PassivityService(
            max_workers=1,
            executor="process",
            batch_small_systems=False,
            dedup=False,
        ) as service:
            handles = [service.submit(system, method="gare") for system in systems]
            for handle in handles:
                handle.result(timeout=120.0)
            stats = service.stats()
        assert stats.batches == 0
        assert stats.batched_jobs == 0
        assert stats.batch_occupancy == 0.0

    def test_thread_executor_reports_no_transport_or_batches(self):
        with PassivityService(max_workers=1, executor="thread") as service:
            service.submit(rlc_ladder(3).system, method="gare").result(timeout=120.0)
            stats = service.stats()
        assert stats.transport == "none"
        assert stats.batches == 0
        assert stats.shm_bytes == 0

    def test_forced_pickle_transport(self):
        with PassivityService(
            max_workers=1, executor="process", transport="pickle"
        ) as service:
            report = service.submit(rlc_ladder(3).system, method="gare").result(
                timeout=120.0
            )
            stats = service.stats()
        assert report.is_passive
        assert stats.transport == "pickle"
        assert stats.shm_bytes == 0

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            PassivityService(transport="smoke-signals")
        with pytest.raises(ValueError):
            PassivityService(batch_small_systems="sometimes")
        with pytest.raises(ValueError):
            PassivityService(max_batch_size=0)

    def test_stats_jsonable_carries_batch_fields(self):
        with PassivityService(max_workers=1) as service:
            payload = service.stats().to_jsonable()
        for key in ("transport", "batches", "batched_jobs", "batch_occupancy", "shm_bytes"):
            assert key in payload

    @pytest.mark.skipif(
        not shm_available() or not os.path.isdir(SHM_DIR),
        reason="POSIX shared memory not usable here",
    )
    def test_large_single_jobs_ship_via_shm(self):
        # Order-121 system: above the small-system limit (no batching), big
        # enough to clear the arena's inline threshold — the job's matrices
        # must ride a segment, and close() must sweep everything.
        system = rlc_ladder(40).system
        with PassivityService(max_workers=1, executor="process") as service:
            report = service.submit(system, method="gare").result(timeout=300.0)
            stats = service.stats()
        assert report.is_passive
        assert stats.transport == "shm"
        assert stats.shm_bytes > 0
        assert stats.batches == 0
