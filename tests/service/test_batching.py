"""Micro-batch dispatch and shared-memory shipping in the service layer."""

import asyncio
import os

import pytest

from repro.circuits import rlc_ladder
from repro.engine.shm import SHM_PREFIX, shm_available
from repro.service import PassivityService
from repro.service.jobs import Job, JobState

SHM_DIR = "/dev/shm"


def repro_segments():
    try:
        entries = os.listdir(SHM_DIR)
    except OSError:
        return []
    return sorted(name for name in entries if name.startswith(SHM_PREFIX))


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = repro_segments()
    yield
    assert repro_segments() == before, "service leaked shared-memory segments"


class TestServiceMicroBatching:
    def test_process_service_batches_small_job_floods(self):
        systems = [rlc_ladder(2 + (k % 3)).system for k in range(8)]
        with PassivityService(
            max_workers=1,
            executor="process",
            batch_small_systems=True,
            dedup=False,
        ) as service:
            handles = [service.submit(system, method="gare") for system in systems]
            reports = [handle.result(timeout=120.0) for handle in handles]
            stats = service.stats()
        assert all(report.is_passive for report in reports)
        # One worker, eight near-simultaneous submissions: at least one
        # dispatch must have carried several jobs.
        assert stats.batches >= 1
        assert stats.batched_jobs >= 2
        assert stats.batch_occupancy > 1.0
        # Tiny fleets stay under the arena's inline threshold: the label
        # must report the tier the bytes actually used, never a dry arena.
        assert stats.transport == ("shm" if stats.shm_bytes > 0 else "pickle")

    def test_policy_off_never_batches(self):
        systems = [rlc_ladder(2).system for _ in range(4)]
        with PassivityService(
            max_workers=1,
            executor="process",
            batch_small_systems=False,
            dedup=False,
        ) as service:
            handles = [service.submit(system, method="gare") for system in systems]
            for handle in handles:
                handle.result(timeout=120.0)
            stats = service.stats()
        assert stats.batches == 0
        assert stats.batched_jobs == 0
        assert stats.batch_occupancy == 0.0

    def test_thread_executor_reports_no_transport_or_batches(self):
        with PassivityService(max_workers=1, executor="thread") as service:
            service.submit(rlc_ladder(3).system, method="gare").result(timeout=120.0)
            stats = service.stats()
        assert stats.transport == "none"
        assert stats.batches == 0
        assert stats.shm_bytes == 0

    def test_forced_pickle_transport(self):
        with PassivityService(
            max_workers=1, executor="process", transport="pickle"
        ) as service:
            report = service.submit(rlc_ladder(3).system, method="gare").result(
                timeout=120.0
            )
            stats = service.stats()
        assert report.is_passive
        assert stats.transport == "pickle"
        assert stats.shm_bytes == 0

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            PassivityService(transport="smoke-signals")
        with pytest.raises(ValueError):
            PassivityService(batch_small_systems="sometimes")
        with pytest.raises(ValueError):
            PassivityService(max_batch_size=0)

    def test_stats_jsonable_carries_batch_fields(self):
        with PassivityService(max_workers=1) as service:
            payload = service.stats().to_jsonable()
        for key in ("transport", "batches", "batched_jobs", "batch_occupancy", "shm_bytes"):
            assert key in payload


def _stub_service(max_batch_size=32):
    """A bare service carrying just the state _drain_batch touches."""
    service = PassivityService.__new__(PassivityService)
    service._executor_kind = "process"
    service._batch_policy = True
    service._small_system_order = 100
    service._max_batch_size = max_batch_size
    service._queue = asyncio.PriorityQueue()
    service._jobs = {}
    service._n_queued = 0
    return service


def _make_job(seq, system, priority=0, state=JobState.QUEUED):
    return Job(
        job_id=f"job-{seq}",
        system=system,
        method="gare",
        options={},
        priority=priority,
        timeout=None,
        fingerprint=f"fp-{seq}",
        key=(f"fp-{seq}", "gare", ""),
        seq=seq,
        state=state,
    )


class TestDrainBatchOrdering:
    def _enqueue(self, service, job):
        service._jobs[job.job_id] = job
        service._n_queued += 1
        service._queue.put_nowait((job.priority, job.seq, job.job_id))

    def test_drain_stops_at_higher_priority_non_batchable_job(self):
        # Queue order: a large (non-batchable) priority-0 job ahead of a
        # small priority-5 job.  Draining must NOT pull the small job past
        # the large one — that would be priority inversion.
        service = _stub_service()
        small = rlc_ladder(2).system
        large = rlc_ladder(40).system  # order 121 > small_system_order
        primary = _make_job(1, small, state=JobState.RUNNING)
        blocker = _make_job(2, large, priority=0)
        laggard = _make_job(3, small, priority=5)
        self._enqueue(service, blocker)
        self._enqueue(service, laggard)

        extras = service._drain_batch(primary)

        assert extras == []
        assert service._n_queued == 2
        # The blocker kept its place at the head of the queue.
        assert service._queue.get_nowait() == (0, 2, blocker.job_id)
        assert service._queue.get_nowait() == (5, 3, laggard.job_id)

    def test_drain_joins_eligible_jobs_and_consumes_ghosts(self):
        service = _stub_service()
        small = rlc_ladder(2).system
        primary = _make_job(1, small, state=JobState.RUNNING)
        joiner = _make_job(3, small)
        self._enqueue(service, joiner)
        # A ghost tuple (job record already evicted) ahead of the joiner.
        service._queue.put_nowait((0, 2, "cancelled-ghost"))

        extras = service._drain_batch(primary)

        assert extras == [joiner]
        assert joiner.state is JobState.RUNNING
        assert service._n_queued == 0
        assert service._queue.empty()


class TestLargeJobTransport:
    @pytest.mark.skipif(
        not shm_available() or not os.path.isdir(SHM_DIR),
        reason="POSIX shared memory not usable here",
    )
    def test_large_single_jobs_ship_via_shm(self):
        # Order-121 system: above the small-system limit (no batching), big
        # enough to clear the arena's inline threshold — the job's matrices
        # must ride a segment, and close() must sweep everything.
        system = rlc_ladder(40).system
        with PassivityService(max_workers=1, executor="process") as service:
            report = service.submit(system, method="gare").result(timeout=300.0)
            stats = service.stats()
        assert report.is_passive
        assert stats.transport == "shm"
        assert stats.shm_bytes > 0
        assert stats.batches == 0
