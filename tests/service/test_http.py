"""End-to-end tests of the reference HTTP front-end (stdlib client only)."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.circuits import rc_grid, rlc_ladder
from repro.service import (
    PassivityService,
    report_from_jsonable,
    serve,
    system_to_jsonable,
)


@pytest.fixture()
def server_url():
    """A running service + HTTP server on an ephemeral port."""
    service = PassivityService(max_workers=2)
    server = serve(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30.0) as response:
        return response.status, json.loads(response.read())


def _post(url: str, document: dict):
    request = urllib.request.Request(
        url, data=json.dumps(document).encode("utf-8"), method="POST"
    )
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, json.loads(response.read())


def _delete(url: str):
    request = urllib.request.Request(url, method="DELETE")
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, json.loads(response.read())


def _poll_result(base: str, job_id: str, deadline: float = 60.0):
    """Poll ``/jobs/<id>/result`` until 200 (the documented client loop)."""
    start = time.time()
    while time.time() - start < deadline:
        status, payload = _get(f"{base}/jobs/{job_id}/result")
        if status == 200:
            return payload
        assert status == 202, f"unexpected poll status {status}"
        time.sleep(0.02)
    raise AssertionError("job did not finish in time")


class TestHTTPContract:
    def test_submit_poll_result_stats(self, server_url):
        system = rlc_ladder(4).system
        status, payload = _post(
            f"{server_url}/jobs", {"system": system_to_jsonable(system)}
        )
        assert status == 202
        job_id = payload["job_id"]

        status, snapshot = _get(f"{server_url}/jobs/{job_id}")
        assert status == 200
        assert snapshot["job_id"] == job_id
        assert snapshot["state"] in ("queued", "running", "done")

        report = report_from_jsonable(_poll_result(server_url, job_id))
        assert report.is_passive
        assert report.diagnostics["engine"]["auto"] is True

        status, stats = _get(f"{server_url}/stats")
        assert status == 200
        assert stats["completed"] >= 1
        assert "factorizations" in stats["cache"]

    def test_sparse_system_over_the_wire(self, server_url):
        system = rc_grid(6, 6, sparse=True).system
        status, payload = _post(
            f"{server_url}/jobs",
            {"system": system_to_jsonable(system), "method": "sparse"},
        )
        assert status == 202
        report = report_from_jsonable(_poll_result(server_url, payload["job_id"]))
        assert report.is_passive
        assert report.method == "shh-sparse"

    def test_duplicate_submissions_deduplicate(self, server_url):
        document = {"system": system_to_jsonable(rlc_ladder(5).system)}
        ids = [_post(f"{server_url}/jobs", document)[1]["job_id"] for _ in range(4)]
        for job_id in ids:
            report = report_from_jsonable(_poll_result(server_url, job_id))
            assert report.is_passive
        _, stats = _get(f"{server_url}/stats")
        assert stats["submitted"] == 4
        assert stats["cache"]["by_kind"]["pencil_spectrum"]["factorizations"] <= 1

    def test_unknown_job_is_404(self, server_url):
        for tail in ("", "/result"):
            with pytest.raises(urllib.error.HTTPError) as caught:
                _get(f"{server_url}/jobs/job-missing{tail}")
            assert caught.value.code == 404
            body = json.loads(caught.value.read())
            assert body["error"] == "UnknownJobError"

    def test_malformed_submission_is_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as caught:
            _post(f"{server_url}/jobs", {"system": {"kind": "mystery"}})
        assert caught.value.code == 400
        assert json.loads(caught.value.read())["error"] == "SerializationError"

    def test_unknown_method_is_400(self, server_url):
        document = {
            "system": system_to_jsonable(rlc_ladder(3).system),
            "method": "nope",
        }
        with pytest.raises(urllib.error.HTTPError) as caught:
            _post(f"{server_url}/jobs", document)
        assert caught.value.code == 400
        assert json.loads(caught.value.read())["error"] == "UnknownMethodError"

    def test_cancel_terminal_job_reports_false(self, server_url):
        _, payload = _post(
            f"{server_url}/jobs",
            {"system": system_to_jsonable(rlc_ladder(3).system)},
        )
        job_id = payload["job_id"]
        _poll_result(server_url, job_id)
        status, body = _delete(f"{server_url}/jobs/{job_id}")
        assert status == 200
        assert body["cancelled"] is False

    def test_healthz(self, server_url):
        status, body = _get(f"{server_url}/healthz")
        assert status == 200 and body["ok"] is True
