"""Fault-injection tests of the crash-safe service core.

The two ISSUE pins live here:

* SIGKILL of a pool worker mid-job leaves the service *serving* — the
  pool is rebuilt, the job retried once, and ``stats().pool_restarts``
  counts exactly one restart.
* A service killed with N accepted-but-unfinished jobs replays exactly
  those N on restart under their original ids (subprocess ``kill -9``).

Everything here requires the ``fork`` start method (runners are pickled
by reference into the worker processes) and real process pools, so the
module is skipped on platforms without them.
"""

from __future__ import annotations

import os
import shutil
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import multiprocessing
import numpy as np
import pytest

from repro.circuits import rlc_ladder
from repro.descriptor import DescriptorSystem
from repro.engine import BatchRunner, MethodRegistry, MethodSpec
from repro.exceptions import JobFailedError
from repro.passivity.result import PassivityReport
from repro.service import JobState, PassivityService
from repro.service.journal import JobJournal

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method(allow_none=True) not in (None, "fork"),
    reason="crash tests pickle test-module runners by reference (fork only)",
)

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(autouse=True)
def _export_journal_artifacts(tmp_path):
    """Copy journals into $REPRO_CRASH_ARTIFACT_DIR for CI post-mortems."""
    yield
    target = os.environ.get("REPRO_CRASH_ARTIFACT_DIR")
    if not target:
        return
    destination = Path(target)
    destination.mkdir(parents=True, exist_ok=True)
    for journal in tmp_path.rglob("*.jsonl"):
        stamped = f"{journal.parent.name}-{journal.name}-{os.getpid()}-{time.time_ns()}"
        try:
            shutil.copy2(journal, destination / stamped)
        except OSError:
            pass


def _crash_once_runner(system, tol, cache, marker="", **options):
    """Worker suicide on first run (marker file tracks the attempt)."""
    if marker and not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write(str(os.getpid()))
        os.kill(os.getpid(), signal.SIGKILL)
    return PassivityReport(is_passive=True, method="crash-once")


def _crash_always_runner(system, tol, cache, **options):
    """Worker suicide on every run: exhausts any retry budget."""
    os.kill(os.getpid(), signal.SIGKILL)


def _quick_runner(system, tol, cache, **options):
    """Immediate passive verdict (liveness canary)."""
    return PassivityReport(is_passive=True, method="quick")


def _sleepy_runner(system, tol, cache, seconds=0.5, **options):
    """Sleep, then report passive (controllable job duration)."""
    time.sleep(seconds)
    return PassivityReport(is_passive=True, method="sleepy")


def _crash_registry() -> MethodRegistry:
    registry = MethodRegistry()
    for name, runner in (
        ("crash-once", _crash_once_runner),
        ("crash-always", _crash_always_runner),
        ("quick", _quick_runner),
        ("sleepy", _sleepy_runner),
    ):
        registry.register(
            MethodSpec(
                name=name,
                runner=runner,
                description=f"fault-injection test method {name}",
                uses_spectral_cache=False,
            )
        )
    return registry


def _crash_service(**kwargs) -> PassivityService:
    runner = BatchRunner(registry=_crash_registry(), backend="thread")
    kwargs.setdefault("executor", "process")
    kwargs.setdefault("transport", "pickle")
    return PassivityService(runner, **kwargs)


class TestBrokenPoolSupervision:
    def test_sigkill_mid_job_heals_pool_and_retries(self, tmp_path):
        marker = tmp_path / "crashed-once"
        with _crash_service(max_workers=1, max_retries=1) as service:
            handle = service.submit(
                rlc_ladder(3).system, method="crash-once", marker=str(marker)
            )
            # The first dispatch SIGKILLs its worker; the retry must succeed
            # on the rebuilt pool.
            report = handle.result(timeout=120.0)
            assert report.is_passive
            assert marker.exists()
            stats = service.stats()
            assert stats.pool_restarts == 1
            assert stats.retried == 1
            assert handle.status().retries == 1
            # The headline pin: the healed service keeps serving.
            follow_up = service.submit(rlc_ladder(4).system, method="quick")
            assert follow_up.result(timeout=120.0).is_passive
            assert service.health()["state"] == "alive"

    def test_retry_budget_exhaustion_fails_the_job_not_the_service(self):
        with _crash_service(max_workers=1, max_retries=1) as service:
            handle = service.submit(rlc_ladder(3).system, method="crash-always")
            with pytest.raises(JobFailedError) as excinfo:
                handle.result(timeout=120.0)
            assert "retry budget exhausted" in str(excinfo.value)
            status = handle.status()
            assert status.state is JobState.FAILED
            assert status.retries == 1
            # Each crash broke one pool: initial dispatch + one retry.
            assert service.stats().pool_restarts == 2
            assert service.submit(
                rlc_ladder(4).system, method="quick"
            ).result(timeout=120.0).is_passive

    def test_probe_loop_heals_an_idle_killed_pool(self):
        with _crash_service(max_workers=1, probe_interval=0.2) as service:
            service.start()
            # The probe traffic spawns the pool's worker process lazily.
            deadline = time.time() + 30.0
            while time.time() < deadline:
                processes = dict(getattr(service._executor, "_processes", None) or {})
                if processes:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("pool never spawned a worker process")
            os.kill(next(iter(processes)), signal.SIGKILL)
            # Supervision (not a job dispatch) must notice and heal.
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if service.stats().pool_restarts >= 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("probe loop never detected the killed worker")
            health = service.health()
            assert health["state"] == "alive"
            assert health["pool_restarts"] >= 1
            assert service.submit(
                rlc_ladder(3).system, method="quick"
            ).result(timeout=120.0).is_passive


class TestPoisonBatchIsolation:
    def test_poison_member_fails_alone_after_batch_requeue(self):
        import threading

        with _crash_service(
            max_workers=1, batch_small_systems=True, max_batch_size=8
        ) as service:
            # Occupy the single worker so the next submissions pool up in
            # the queue; the distinct timeout keeps the blocker out of the
            # batch the drained jobs will form.
            blocker = service.submit(
                rlc_ladder(3).system, method="sleepy", seconds=1.0, timeout=90.0
            )
            good = [
                service.submit(rlc_ladder(order).system, method="quick")
                for order in (4, 5, 6)
            ]
            poison = service.submit(
                rlc_ladder(7).system, method="quick", poison=threading.Lock()
            )
            assert blocker.result(timeout=120.0).is_passive
            # The batched dispatch dies on the unpicklable option; the
            # members must be re-run individually so only the poison fails.
            for handle in good:
                assert handle.result(timeout=120.0).is_passive
            with pytest.raises(JobFailedError):
                poison.result(timeout=120.0)
            assert service.stats().pool_restarts == 0


class TestKill9Replay:
    CHILD = textwrap.dedent(
        """
        import os, signal, sys, time

        from repro.circuits import rlc_ladder
        from repro.engine import BatchRunner, MethodRegistry, MethodSpec
        from repro.passivity.result import PassivityReport
        from repro.service import PassivityService

        def sleepy(system, tol, cache, **options):
            time.sleep(120.0)
            return PassivityReport(is_passive=True, method="sleepy")

        registry = MethodRegistry()
        registry.register(MethodSpec(
            name="sleepy", runner=sleepy,
            description="blocks forever", uses_spectral_cache=False,
        ))
        runner = BatchRunner(registry=registry, backend="thread")
        service = PassivityService(runner, max_workers=1, journal=sys.argv[1])
        ids = [
            service.submit(rlc_ladder(order).system, method="sleepy").job_id
            for order in (3, 4, 5, 6)
        ]
        print("\\n".join(ids), flush=True)
        os.kill(os.getpid(), signal.SIGKILL)
        """
    )

    def test_kill9_with_queued_jobs_replays_them_on_restart(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.run(
            [sys.executable, "-c", self.CHILD, str(journal_path)],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert child.returncode == -signal.SIGKILL, child.stderr
        ids = child.stdout.split()
        assert len(ids) == 4
        # The write-ahead records survived the kill.
        probe = JobJournal(journal_path)
        assert len(probe) == 4
        probe.close()
        # A restarted service replays exactly those jobs, under their
        # original ids (this incarnation's sleepy answers immediately).
        registry = _crash_registry()
        runner = BatchRunner(registry=registry, backend="thread")
        with PassivityService(
            runner, max_workers=2, journal=journal_path
        ) as service:
            for job_id in ids:
                report = service.result(job_id, timeout=120.0)
                assert report.is_passive
            assert service.stats().replayed == 4
            assert len(service._journal) == 0

    def test_replayed_jobs_get_one_terminal_record_each(self, tmp_path):
        import json

        journal_path = tmp_path / "journal.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.run(
            [sys.executable, "-c", self.CHILD, str(journal_path)],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert child.returncode == -signal.SIGKILL, child.stderr
        ids = child.stdout.split()
        runner = BatchRunner(registry=_crash_registry(), backend="thread")
        with PassivityService(
            runner, max_workers=2, journal=journal_path,
        ) as service:
            for job_id in ids:
                service.result(job_id, timeout=120.0)
        terminal = {}
        for line in journal_path.read_bytes().splitlines():
            record = json.loads(line)
            if record.get("event") == "finished":
                terminal[record["job_id"]] = terminal.get(record["job_id"], 0) + 1
        assert set(terminal) == set(ids)
        assert all(count == 1 for count in terminal.values())


class TestDeferredArenaRelease:
    def test_timed_out_dispatch_defers_segment_release(self):
        order = 128  # E and A are 128 KiB each: above the inline threshold
        identity = np.eye(order)
        system = DescriptorSystem(
            identity,
            -identity,
            np.ones((order, 1)),
            np.ones((1, order)),
            np.zeros((1, 1)),
        )
        with _crash_service(
            max_workers=1, transport="shm", batch_small_systems=False
        ) as service:
            handle = service.submit(
                system, method="sleepy", seconds=2.0, timeout=0.3
            )
            with pytest.raises(JobFailedError):
                handle.result(timeout=120.0)
            assert handle.status().state is JobState.TIMED_OUT
            arena = service._arena
            if arena is None:
                pytest.skip("shared-memory transport unavailable here")
            # The abandoned worker still holds the shipment: releasing now
            # would unlink the segment under a process that reads it.
            assert arena.active_segments > 0
            # Once the swallowed dispatch resolves, the deferred release
            # must return the segments to the arena.
            deadline = time.time() + 30.0
            while time.time() < deadline:
                if arena.active_segments == 0:
                    break
                time.sleep(0.1)
            assert arena.active_segments == 0
