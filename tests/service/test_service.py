"""Integration tests of the PassivityService job queue.

The headline guarantee mirrors the ISSUE acceptance criterion: many
concurrent clients submitting duplicate systems must observe *one* QZ
factorization per distinct fingerprint — asserted with the same
``QZCounter`` the spectral-context regression suite uses.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.bench import QZCounter
from repro.circuits import rlc_ladder
from repro.engine import (
    BatchRunner,
    DecompositionCache,
    MethodRegistry,
    MethodSpec,
    UnknownMethodError,
)
from repro.exceptions import (
    JobCancelledError,
    JobFailedError,
    JobNotReadyError,
    ServiceError,
    UnknownJobError,
)
from repro.passivity.result import PassivityReport
from repro.service import JobState, PassivityService


def _sleepy_runner(system, tol, cache, seconds=0.4, **options):
    """Test method: sleep, then report passive (controllable job duration)."""
    time.sleep(seconds)
    return PassivityReport(is_passive=True, method="sleepy")


def _failing_runner(system, tol, cache, **options):
    """Test method that always raises inside the worker."""
    raise RuntimeError("synthetic method failure")


def _test_registry() -> MethodRegistry:
    registry = MethodRegistry()
    registry.register(
        MethodSpec(
            name="sleepy",
            runner=_sleepy_runner,
            description="sleeps then reports passive",
            uses_spectral_cache=False,
        )
    )
    registry.register(
        MethodSpec(
            name="failing",
            runner=_failing_runner,
            description="always raises",
            uses_spectral_cache=False,
        )
    )
    return registry


@pytest.fixture()
def slow_service():
    """Single-worker service with the sleepy/failing test methods."""
    runner = BatchRunner(registry=_test_registry(), backend="thread")
    service = PassivityService(runner, max_workers=1, dedup=True)
    with service:
        yield service


class TestBasics:
    def test_submit_and_result(self):
        with PassivityService(max_workers=2) as service:
            handle = service.submit(rlc_ladder(4).system)
            report = handle.result(timeout=60.0)
            assert report.is_passive
            assert report.diagnostics["engine"]["auto"] is True
            status = handle.status()
            assert status.state is JobState.DONE
            assert status.finished_at is not None

    def test_poll_style_result_raises_until_done(self, slow_service):
        handle = slow_service.submit(rlc_ladder(3).system, method="sleepy")
        try:
            # Non-blocking default: either still pending (typed error) or,
            # on a fast machine, already done.
            slow_service.result(handle.job_id)
        except JobNotReadyError:
            pass
        assert handle.result(timeout=30.0).is_passive

    def test_unknown_method_fails_at_submission(self):
        with PassivityService(max_workers=1) as service:
            with pytest.raises(UnknownMethodError):
                service.submit(rlc_ladder(3).system, method="nope")

    def test_submit_requires_descriptor_system(self):
        with PassivityService(max_workers=1) as service:
            with pytest.raises(TypeError):
                service.submit("not a system")

    def test_submit_rejects_non_numeric_timeout(self):
        # A string timeout reaching asyncio.wait would kill the worker
        # coroutine; it must be refused at submission instead.
        with PassivityService(max_workers=1) as service:
            with pytest.raises(TypeError):
                service.submit(rlc_ladder(3).system, timeout="5")
            with pytest.raises(TypeError):
                service.submit(rlc_ladder(3).system, timeout=True)
            # The service must still work afterwards.
            assert service.submit(rlc_ladder(3).system).result(
                timeout=60.0
            ).is_passive

    def test_unknown_job_id_raises_typed_error(self):
        with PassivityService(max_workers=1) as service:
            with pytest.raises(UnknownJobError):
                service.status("job-missing")
            with pytest.raises(UnknownJobError):
                service.result("job-missing")
            with pytest.raises(UnknownJobError):
                service.cancel("job-missing")
            # Backward compatible with mapping-style callers.
            assert issubclass(UnknownJobError, KeyError)
            assert issubclass(UnknownJobError, ServiceError)

    def test_closed_service_rejects_submissions(self):
        service = PassivityService(max_workers=1)
        service.start()
        service.close()
        with pytest.raises(ServiceError):
            service.submit(rlc_ladder(3).system)

    def test_failed_job_raises_job_failed(self, slow_service):
        handle = slow_service.submit(rlc_ladder(3).system, method="failing")
        assert handle.wait(timeout=30.0)
        assert handle.status().state is JobState.FAILED
        with pytest.raises(JobFailedError, match="synthetic method failure"):
            handle.result(timeout=1.0)

    def test_alias_submission_coalesces_with_canonical(self):
        # "proposed" is an alias of "shh": both resolve to one dedup key.
        with PassivityService(max_workers=1) as service:
            system = rlc_ladder(4).system
            first = service.submit(system, method="shh")
            second = service.submit(system, method="proposed")
            assert first.result(timeout=60.0).is_passive
            assert second.result(timeout=60.0).is_passive
            assert service.stats().deduplicated >= 1


class TestSchedulingControls:
    def test_priorities_order_the_queue(self, slow_service):
        blocker = slow_service.submit(
            rlc_ladder(3).system, method="sleepy", seconds=0.5
        )
        low = slow_service.submit(
            rlc_ladder(4).system, method="sleepy", priority=5, seconds=0.01
        )
        high = slow_service.submit(
            rlc_ladder(5).system, method="sleepy", priority=-5, seconds=0.01
        )
        for handle in (blocker, low, high):
            assert handle.wait(timeout=30.0)
        assert (
            high.status().started_at < low.status().started_at
        ), "higher-priority job must start first"

    def test_job_timeout_is_reported(self, slow_service):
        handle = slow_service.submit(
            rlc_ladder(3).system, method="sleepy", timeout=0.05, seconds=5.0
        )
        assert handle.wait(timeout=30.0)
        assert handle.status().state is JobState.TIMED_OUT
        with pytest.raises(JobFailedError, match="timed out"):
            handle.result(timeout=1.0)

    def test_cancel_queued_job(self, slow_service):
        blocker = slow_service.submit(
            rlc_ladder(3).system, method="sleepy", seconds=0.5
        )
        queued = slow_service.submit(rlc_ladder(6).system, method="sleepy")
        assert queued.cancel() is True
        assert queued.status().state is JobState.CANCELLED
        with pytest.raises(JobCancelledError):
            queued.result(timeout=1.0)
        assert blocker.result(timeout=30.0).is_passive
        # Terminal jobs cannot be cancelled again.
        assert queued.cancel() is False
        assert blocker.cancel() is False

    def test_cancelling_primary_promotes_follower(self, slow_service):
        blocker = slow_service.submit(
            rlc_ladder(3).system, method="sleepy", seconds=0.5
        )
        system = rlc_ladder(7).system
        primary = slow_service.submit(system, method="sleepy")
        follower = slow_service.submit(system, method="sleepy")
        assert follower.status().deduplicated
        assert primary.cancel() is True
        # The coalesced duplicate must still complete after the primary dies.
        assert follower.result(timeout=30.0).is_passive
        assert primary.status().state is JobState.CANCELLED
        assert blocker.result(timeout=30.0).is_passive

    def test_close_cancels_unfinished_jobs(self):
        runner = BatchRunner(registry=_test_registry(), backend="thread")
        service = PassivityService(runner, max_workers=1)
        service.start()
        blocker = service.submit(
            rlc_ladder(3).system, method="sleepy", seconds=1.0
        )
        queued = service.submit(rlc_ladder(4).system, method="sleepy")
        service.close()
        assert queued.status().state is JobState.CANCELLED
        assert blocker.status().state is JobState.CANCELLED


class TestDeduplication:
    def test_concurrent_duplicates_observe_one_qz(self):
        """N concurrent clients, one fingerprint -> exactly one QZ."""
        system = rlc_ladder(6).system
        handles = []
        submit_lock = threading.Lock()
        with QZCounter() as counter:
            with PassivityService(max_workers=4) as service:

                def client():
                    handle = service.submit(system)
                    with submit_lock:
                        handles.append(handle)
                    handle.result(timeout=60.0)

                threads = [threading.Thread(target=client) for _ in range(8)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60.0)
                stats = service.stats()
        assert len(handles) == 8
        assert counter.total == 1, (
            f"8 duplicate submissions performed {counter.total} QZ "
            f"factorizations (qz={counter.qz}, ordqz={counter.ordqz})"
        )
        assert stats.completed == 8
        assert stats.cache["by_kind"]["pencil_spectrum"]["factorizations"] == 1

    def test_cache_level_dedup_without_coalescing(self):
        """dedup=False still shares the factorization through the cache."""
        system = rlc_ladder(6).system
        with QZCounter() as counter:
            with PassivityService(max_workers=4, dedup=False) as service:
                handles = [service.submit(system) for _ in range(6)]
                for handle in handles:
                    assert handle.result(timeout=60.0).is_passive
                stats = service.stats()
        assert stats.deduplicated == 0
        assert stats.completed == 6
        # Every job executed, but the per-key cache locks still allowed only
        # one pencil factorization.
        assert counter.total == 1, (
            f"6 uncoalesced duplicates performed {counter.total} QZ calls"
        )

    def test_acceptance_demo_four_fingerprints(self):
        """ISSUE acceptance: 8 concurrent submissions, 4 distinct
        fingerprints -> stats() shows dedup and <= 4 factorizations."""
        systems = [rlc_ladder(n).system for n in (4, 5, 6, 7)]
        with QZCounter() as counter:
            with PassivityService(max_workers=4) as service:
                handles = [service.submit(s) for s in systems for _ in range(2)]
                reports = [h.result(timeout=120.0) for h in handles]
                stats = service.stats()
        assert len(reports) == 8
        assert all(r.is_passive for r in reports)
        assert stats.submitted == 8
        # Usually all 4 duplicates coalesce; a duplicate submitted after its
        # primary already finished re-executes (cache-warm, zero extra QZ),
        # so only the factorization bound below is deterministic.
        assert stats.deduplicated >= 1
        assert counter.total <= 4, (
            f"4 distinct fingerprints performed {counter.total} QZ calls"
        )
        assert stats.cache["by_kind"]["pencil_spectrum"]["factorizations"] <= 4

    def test_shared_cache_across_service_and_direct_calls(self):
        """A caller-supplied cache warms the service (and vice versa)."""
        cache = DecompositionCache()
        system = rlc_ladder(5).system
        with PassivityService(max_workers=1, cache=cache) as service:
            service.submit(system).result(timeout=60.0)
        from repro import check_passivity

        report = check_passivity(system, cache=cache)
        assert report.diagnostics["engine"]["factorizations"] == 0


class TestStatsTelemetry:
    def test_stats_counters_and_throughput(self):
        with PassivityService(max_workers=2) as service:
            handles = [service.submit(rlc_ladder(4).system) for _ in range(3)]
            for handle in handles:
                handle.result(timeout=60.0)
            stats = service.stats()
        assert stats.workers == 2
        assert stats.submitted == 3
        assert stats.completed == 3
        assert stats.failed == 0
        assert stats.queue_depth == 0
        assert stats.uptime_seconds > 0
        assert stats.throughput_per_second > 0
        payload = stats.to_jsonable()
        assert payload["completed"] == 3
        assert "factorizations" in payload["cache"]

    def test_history_eviction_raises_unknown_job(self):
        with PassivityService(max_workers=1, max_history=2) as service:
            handles = [service.submit(rlc_ladder(4).system) for _ in range(4)]
            deadline = time.time() + 60.0
            while time.time() < deadline:
                stats = service.stats()
                if stats.completed + stats.failed == 4:
                    break
                time.sleep(0.01)
            # Only the two newest terminal jobs stay pollable; the oldest is
            # evicted and must raise the typed error, not KeyError leakage.
            with pytest.raises(UnknownJobError):
                service.status(handles[0].job_id)
            assert handles[-1].status().state is JobState.DONE


class TestIncrementalDispatch:
    """Sweep-aware dispatch: same-family jobs warm-start off the last root."""

    def test_family_sweep_certifies_incrementally(self):
        from repro.circuits import rlc_grid_corners

        family = rlc_grid_corners(4, 4, n_corners=5, scale=2e-4, seed=0)
        with PassivityService(max_workers=1, incremental=True) as service:
            reports = [
                service.submit(system, method="gare").result(timeout=60.0)
                for system in family
            ]
            stats = service.stats()
        assert all(r.is_passive for r in reports)
        assert stats.incremental_hits >= 1
        payload = stats.to_jsonable()
        assert "incremental_hits" in payload
        assert "incremental_fallbacks" in payload
        assert "update_residual_max" in payload
        assert payload["incremental_hits"] == stats.incremental_hits

    def test_incremental_off_never_engages_the_tier(self):
        from repro.circuits import rlc_grid_corners

        family = rlc_grid_corners(4, 4, n_corners=3, scale=2e-4, seed=1)
        with PassivityService(max_workers=1) as service:
            for system in family:
                service.submit(system, method="gare").result(timeout=60.0)
            stats = service.stats()
        assert stats.incremental_hits == 0
        assert stats.incremental_fallbacks == 0
