"""End-to-end SSE tests of the scenario HTTP front-end (stdlib client only).

The headline acceptance pin: a 32-corner sweep submitted over HTTP streams
every verdict through ``GET /scenarios/<id>/events`` with gapless monotonic
ids, and a client that drops its connection resumes from ``Last-Event-ID``
without gaps or duplicates.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.circuits import rlc_ladder
from repro.engine import BatchRunner, MethodRegistry, MethodSpec
from repro.passivity.result import PassivityReport
from repro.service import (
    PassivityService,
    ScenarioSpec,
    scenario_to_jsonable,
    serve,
)

from harness import numbered_ids, parse_sse


@pytest.fixture()
def server_url():
    """A running service + SSE-enabled HTTP server on an ephemeral port."""
    service = PassivityService(max_workers=2)
    server = serve(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30.0) as response:
        return response.status, json.loads(response.read())


def _post(url: str, document: dict):
    request = urllib.request.Request(
        url, data=json.dumps(document).encode("utf-8"), method="POST"
    )
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, json.loads(response.read())


def _delete(url: str):
    request = urllib.request.Request(url, method="DELETE")
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, json.loads(response.read())


def _read_sse(url: str, last_event_id=None, stop_after_ids=None, timeout=120.0):
    """Stream the SSE feed, returning the raw bytes read off the wire.

    Reads until the terminal event (``summary``/``cancelled``) or — when
    ``stop_after_ids`` is given — until that many numbered events arrived,
    then *drops the connection* (the resume scenario's first half).
    """
    request = urllib.request.Request(url)
    if last_event_id is not None:
        request.add_header("Last-Event-ID", str(last_event_id))
    raw = b""
    seen_ids = 0
    response = urllib.request.urlopen(request, timeout=timeout)
    try:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/event-stream")
        while True:
            line = response.readline()
            if not line:
                break
            raw += line
            if line.startswith(b"id: "):
                seen_ids += 1
            if (
                stop_after_ids is not None
                and seen_ids >= stop_after_ids
                and line == b"\n"  # frame complete: drop the connection
            ):
                break
            if line.startswith(b"event: ") and line.strip() in (
                b"event: summary",
                b"event: cancelled",
            ):
                # One blank + (for summary) the closing frame follow; read
                # until the server ends the stream.
                while True:
                    tail = response.readline()
                    if not tail:
                        break
                    raw += tail
                break
    finally:
        response.close()  # the "dropped connection" when stopping early
    return raw


class TestScenarioSSEEndToEnd:
    def test_32_corner_sweep_streams_all_verdicts_and_resumes(self, server_url):
        spec = ScenarioSpec(
            family="corners",
            system=rlc_ladder(3).system,
            n_corners=32,
            seed=11,
        )
        status, accepted = _post(
            f"{server_url}/scenarios", scenario_to_jsonable(spec)
        )
        assert status == 202
        scenario_id = accepted["scenario_id"]
        assert accepted["n_cells"] == 32
        events_url = f"{server_url}{accepted['events']}"

        # First connection: stream a prefix, then drop the connection.
        first = parse_sse(_read_sse(events_url, stop_after_ids=10))
        first_ids = numbered_ids(first)
        assert len(first_ids) == 10
        assert first_ids == list(range(first_ids[0], first_ids[0] + 10))

        # Resume with Last-Event-ID: no gaps, no duplicates, to the end.
        resumed = parse_sse(
            _read_sse(events_url, last_event_id=first_ids[-1])
        )
        resumed_ids = numbered_ids(resumed)
        assert resumed_ids[0] == first_ids[-1] + 1

        # The union is one gapless monotonic transcript...
        ids = first_ids + resumed_ids
        assert ids == list(range(ids[0], ids[0] + len(ids)))
        # ...carrying every one of the 32 per-corner verdicts exactly once.
        frames = first + resumed
        corners = [f for f in frames if f[1] == "corner"]
        assert len(corners) == 32
        assert sorted(f[2]["index"] for f in corners) == list(range(32))
        assert all(f[2]["is_passive"] is True for f in corners)
        assert frames[-1][1] == "summary"
        summary = frames[-1][2]
        assert summary["state"] == "done"
        assert summary["n_done"] == 32
        assert summary["n_passive"] == 32

        # The poll-style view agrees with the streamed terminal state.
        status, snapshot = _get(f"{server_url}/scenarios/{scenario_id}")
        assert status == 200
        assert snapshot["state"] == "done"
        assert snapshot["n_done"] == 32

    def test_resume_via_query_parameter(self, server_url):
        spec = ScenarioSpec(
            family="corners", system=rlc_ladder(3).system, n_corners=4
        )
        status, accepted = _post(
            f"{server_url}/scenarios", {"scenario": scenario_to_jsonable(spec)}
        )
        assert status == 202
        events_url = f"{server_url}{accepted['events']}"
        full = parse_sse(_read_sse(events_url))
        assert full[-1][1] == "summary"
        last = numbered_ids(full)[-1]
        # EventSource polyfills resume via ?last_event_id=; from the final
        # id the replay is empty and the stream closes immediately
        # (terminal scenarios replay-then-close).
        tail = parse_sse(
            _read_sse(f"{events_url}?last_event_id={last - 1}")
        )
        assert numbered_ids(tail) == [last]

    def test_malformed_scenario_answers_400(self, server_url):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{server_url}/scenarios", {"family": "banana"})
        assert excinfo.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{server_url}/scenarios", {"scenario": ["not", "a", "doc"]})
        assert excinfo.value.code == 400

    def test_unknown_scenario_answers_404(self, server_url):
        for path in ("/scenarios/scn-missing", "/scenarios/scn-missing/events"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server_url}{path}")
            assert excinfo.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _delete(f"{server_url}/scenarios/scn-missing")
        assert excinfo.value.code == 404

    def test_delete_cancels_and_the_stream_reports_it(self):
        def slow(system, tol, cache, seconds=0.5, **options):
            time.sleep(seconds)
            return PassivityReport(is_passive=True, method="slow")

        registry = MethodRegistry()
        registry.register(
            MethodSpec(
                name="slow",
                runner=slow,
                description="slow enough to cancel mid-flight",
                uses_spectral_cache=False,
            )
        )
        runner = BatchRunner(registry=registry, backend="thread")
        service = PassivityService(runner, max_workers=1)
        server = serve(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            spec = ScenarioSpec(
                family="corners",
                system=rlc_ladder(3).system,
                n_corners=8,
                method="slow",
            )
            status, accepted = _post(
                f"{base}/scenarios", scenario_to_jsonable(spec)
            )
            assert status == 202
            scenario_id = accepted["scenario_id"]
            status, outcome = _delete(f"{base}/scenarios/{scenario_id}")
            assert status == 200
            assert outcome["cancelled"] is True
            status, snapshot = _get(f"{base}/scenarios/{scenario_id}")
            assert snapshot["state"] == "cancelled"
            # A subscriber arriving after the cancel replays the transcript,
            # ending in the terminal `cancelled` event.
            frames = parse_sse(
                _read_sse(f"{base}{accepted['events']}")
            )
            assert frames[-1][1] == "cancelled"
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_sse_disabled_server_404s_the_events_feed(self):
        service = PassivityService(max_workers=1)
        server = serve(service, host="127.0.0.1", port=0, sse=False)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            spec = ScenarioSpec(
                family="corners", system=rlc_ladder(3).system, n_corners=2
            )
            status, accepted = _post(
                f"{base}/scenarios", scenario_to_jsonable(spec)
            )
            assert status == 202
            scenario_id = accepted["scenario_id"]
            # Polling stays available; only the push feed is off.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{base}/scenarios/{scenario_id}/events")
            assert excinfo.value.code == 404
            deadline = time.time() + 60.0
            while time.time() < deadline:
                status, snapshot = _get(f"{base}/scenarios/{scenario_id}")
                if snapshot["state"] == "done":
                    break
                time.sleep(0.02)
            assert snapshot["state"] == "done"
        finally:
            server.shutdown()
            server.server_close()
            service.close()
