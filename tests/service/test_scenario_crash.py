"""Crash-replay pins of the streaming scenario engine (satellite: journal).

Two ISSUE pins live here:

* ``kill -9`` of a service holding a scenario parent with live corners —
  the restarted service replays the *spec* (not the cells) under the
  original scenario id, the seeded expansion regenerates the same corner
  cells, and the whole sweep completes and streams a terminal summary.
* A journal record whose ``system`` payload is a shared-memory descriptor
  (segment name + array specs — the segment died with the crashed arena)
  must replay from the ``system_wire`` fallback instead of failing; a
  record with the descriptor but no fallback is marked unreplayable
  without blocking startup.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.circuits import rlc_ladder
from repro.engine import BatchRunner, MethodRegistry, MethodSpec
from repro.exceptions import UnknownJobError
from repro.passivity.result import PassivityReport
from repro.service import (
    PassivityService,
    ScenarioState,
    system_to_jsonable,
)
from repro.service.journal import JobJournal

from harness import drain

SRC = Path(__file__).resolve().parents[2] / "src"


def _fast_registry() -> MethodRegistry:
    """The restarted incarnation's ``sleepy`` answers immediately."""

    def quick(system, tol, cache, **options):
        return PassivityReport(is_passive=True, method="sleepy")

    registry = MethodRegistry()
    registry.register(
        MethodSpec(
            name="sleepy",
            runner=quick,
            description="instant stand-in for the crashed incarnation",
            uses_spectral_cache=False,
        )
    )
    return registry


class TestScenarioKill9Replay:
    CHILD = textwrap.dedent(
        """
        import os, signal, sys, time

        from repro.circuits import rlc_ladder
        from repro.engine import BatchRunner, MethodRegistry, MethodSpec
        from repro.passivity.result import PassivityReport
        from repro.service import PassivityService, ScenarioSpec

        def sleepy(system, tol, cache, **options):
            time.sleep(120.0)
            return PassivityReport(is_passive=True, method="sleepy")

        registry = MethodRegistry()
        registry.register(MethodSpec(
            name="sleepy", runner=sleepy,
            description="blocks forever", uses_spectral_cache=False,
        ))
        runner = BatchRunner(registry=registry, backend="thread")
        service = PassivityService(runner, max_workers=1, journal=sys.argv[1])
        handle = service.submit_scenario(ScenarioSpec(
            family="corners", system=rlc_ladder(3).system,
            n_corners=4, seed=7, method="sleepy",
        ))
        print(handle.scenario_id, flush=True)
        # The root corner is live on the worker, the rest are held: the
        # exact "scenario parent with live corners" shape the pin names.
        os.kill(os.getpid(), signal.SIGKILL)
        """
    )

    def _kill9_child(self, journal_path) -> str:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.run(
            [sys.executable, "-c", self.CHILD, str(journal_path)],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        assert child.returncode == -signal.SIGKILL, child.stderr
        scenario_id = child.stdout.strip()
        assert scenario_id.startswith("scn-")
        return scenario_id

    def test_kill9_scenario_parent_replays_and_completes(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        scenario_id = self._kill9_child(journal_path)
        # The write-ahead record survived the kill, under the parent's id —
        # one record for the whole scenario, not one per cell.
        probe = JobJournal(journal_path)
        records = list(probe.pending())
        probe.close()
        assert [r["job_id"] for r in records] == [scenario_id]
        assert "scenario" in records[0]
        # A restarted incarnation (fast sleepy) replays the spec under the
        # original id: same seeded corners, same cell ids, full completion.
        runner = BatchRunner(registry=_fast_registry(), backend="thread")
        with PassivityService(
            runner, max_workers=2, journal=journal_path
        ) as service:
            assert service.wait_scenario(scenario_id, timeout=120.0)
            status = service.scenario_status(scenario_id)
            assert status.state is ScenarioState.DONE
            assert status.n_cells == 4
            assert status.n_done == 4
            for index in range(4):
                report = service.result(
                    f"{scenario_id}-c{index}", timeout=120.0
                )
                assert report.is_passive
            assert service.stats().replayed == 1
            # A late subscriber to the replayed (terminal) scenario still
            # gets the transcript, ending in the summary.
            events = drain(service.subscribe_scenario(scenario_id))
            assert events
            assert events[-1].event == "summary"
            assert len(service._journal) == 0

    def test_kill9_replay_survives_a_second_kill9(self, tmp_path):
        # Crash, restart-and-crash (journal untouched in between), then a
        # real restart: the record must still be pending and replayable.
        journal_path = tmp_path / "journal.jsonl"
        scenario_id = self._kill9_child(journal_path)
        runner = BatchRunner(registry=_fast_registry(), backend="thread")
        with PassivityService(
            runner, max_workers=2, journal=journal_path
        ) as service:
            assert service.wait_scenario(scenario_id, timeout=120.0)
        # The terminal record landed: a third incarnation replays nothing.
        with PassivityService(
            runner, max_workers=2, journal=journal_path
        ) as service:
            assert service.stats().replayed == 0


class TestShmDescriptorFallback:
    """Journal records whose ``system`` is a dead shared-memory descriptor."""

    SHM_DOC = {
        "kind": "array_shipment",
        "segment": "repro-arena-dead-f00d",
        "specs": [{"name": "E", "shape": [6, 6], "dtype": "float64"}],
    }

    def _write_journal(self, path, *records) -> None:
        with open(path, "w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")

    def test_descriptor_record_replays_from_wire_fallback(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        self._write_journal(
            journal_path,
            {
                "event": "submitted",
                "job_id": "job-shm-1",
                "system": dict(self.SHM_DOC),
                "system_wire": system_to_jsonable(rlc_ladder(3).system),
                "method": "auto",
                "options": {},
                "priority": 0,
                "timeout": None,
                "submitted_at": time.time(),
            },
        )
        with PassivityService(max_workers=1, journal=journal_path) as service:
            report = service.result("job-shm-1", timeout=120.0)
            assert report.is_passive
            assert service.stats().replayed == 1

    def test_descriptor_record_without_fallback_is_unreplayable(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        self._write_journal(
            journal_path,
            {
                "event": "submitted",
                "job_id": "job-shm-orphan",
                "system": dict(self.SHM_DOC),
                "method": "auto",
                "options": {},
                "priority": 0,
                "timeout": None,
                "submitted_at": time.time(),
            },
            {
                "event": "submitted",
                "job_id": "job-plain",
                "system": system_to_jsonable(rlc_ladder(3).system),
                "method": "auto",
                "options": {},
                "priority": 0,
                "timeout": None,
                "submitted_at": time.time(),
            },
        )
        with PassivityService(max_workers=1, journal=journal_path) as service:
            # The orphan descriptor is skipped (not a startup failure) and
            # closed out as unreplayable; its neighbour replays normally.
            assert service.result("job-plain", timeout=120.0).is_passive
            with pytest.raises(UnknownJobError):
                service.status("job-shm-orphan")
            assert service.stats().replayed == 1
            assert len(service._journal) == 0
