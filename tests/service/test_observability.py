"""Observability-plane acceptance tests: traces, gauges, /metrics, contract.

The headline acceptance criterion of the unified observability plane: a
job executed on the **process** executor serves a ``GET /jobs/<id>/trace``
containing queue-wait, transport, cache-outcome and factorization spans —
the factorization ones recorded *inside* the worker process and shipped
back by value.  Around it: the thread-executor trace, the snapshot-time
``queue_wait_max`` / ``journal_lag`` gauges, stage quantiles in
``stats()``, the Prometheus endpoint, opt-in scenario ``trace`` events,
and the ServiceStats HTTP/docs contract.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.circuits import rlc_grid, rlc_ladder
from repro.exceptions import JobNotReadyError
from repro.service import (
    PassivityService,
    ScenarioSpec,
    serve,
    system_to_jsonable,
)
from repro.service.service import ServiceStats

from harness import GateRegistry, drain


def _span_names(spans):
    names = []
    stack = list(spans)
    while stack:
        span = stack.pop()
        names.append(span["name"])
        stack.extend(span.get("children") or [])
    return names


class TestJobTraces:
    def test_thread_executor_trace_has_the_pipeline_spans(self):
        with PassivityService(max_workers=1) as service:
            handle = service.submit(rlc_ladder(6).system, method="gare")
            handle.result(timeout=60.0)
            trace = service.trace(handle.job_id)
        assert trace["job_id"] == handle.job_id
        assert trace["state"] == "done"
        names = _span_names(trace["spans"])
        assert "queue.wait" in names
        assert "engine.dispatch" in names
        assert any(name.startswith("cache.") for name in names)
        assert "riccati.solve" in names

    def test_process_executor_trace_records_worker_side_spans(self):
        # The acceptance criterion: transport + cache + factorization spans
        # for work that physically ran in another process.
        with PassivityService(max_workers=1, executor="process") as service:
            handle = service.submit(rlc_ladder(6).system, method="gare")
            handle.result(timeout=120.0)
            trace = service.trace(handle.job_id)
        names = _span_names(trace["spans"])
        assert "queue.wait" in names
        assert "shm.ship" in names  # parent-side transport
        assert "shm.load" in names  # recorded inside the worker
        assert "engine.dispatch" in names
        assert "riccati.solve" in names
        cache_spans = [
            span
            for span in _walk_spans(trace["spans"])
            if span["name"].startswith("cache.")
        ]
        assert cache_spans, "no cache spans in the worker trace"
        outcomes = {span["attrs"]["outcome"] for span in cache_spans}
        assert outcomes & {"computed", "l1_hit", "l2_hit"}

    def test_trace_before_completion_raises_not_ready(self):
        gates = GateRegistry()
        with PassivityService(max_workers=1, registry=gates.registry) as service:
            handle = service.submit(rlc_ladder(4).system, method="gated")
            assert gates.wait_started()
            with pytest.raises(JobNotReadyError):
                service.trace(handle.job_id)
            gates.open_all()
            handle.result(timeout=30.0)
            trace = service.trace(handle.job_id)
            assert "queue.wait" in _span_names(trace["spans"])


def _walk_spans(spans):
    stack = list(spans)
    while stack:
        span = stack.pop()
        span.setdefault("attrs", {})
        yield span
        stack.extend(span.get("children") or [])


class TestSnapshotGauges:
    def test_queue_wait_max_reflects_currently_queued_jobs(self):
        gates = GateRegistry()
        with PassivityService(max_workers=1, registry=gates.registry) as service:
            first = service.submit(rlc_ladder(4).system, method="gated")
            assert gates.wait_started()
            # Second job queues behind the gated one and waits.
            second = service.submit(
                rlc_ladder(5).system, method="gated", priority=0
            )
            time.sleep(0.15)
            stats = service.stats()
            assert stats.queue_depth == 1
            assert stats.queue_wait_max >= 0.1
            gates.open_all()
            first.result(timeout=30.0)
            second.result(timeout=30.0)
            stats = service.stats()
            assert stats.queue_depth == 0
            assert stats.queue_wait_max == 0.0

    def test_journal_lag_counts_dead_records(self, tmp_path):
        journal_path = os.fspath(tmp_path / "jobs.journal")
        gates = GateRegistry()
        with PassivityService(
            max_workers=1, registry=gates.registry, journal=journal_path
        ) as service:
            handle = service.submit(rlc_ladder(4).system, method="gated")
            assert gates.wait_started()
            # Running job: submitted/started records are live, nothing dead.
            assert service.stats().journal_lag == 0
            gates.open_all()
            handle.result(timeout=30.0)
            # Finished job: its records are dead weight until compaction.
            assert service.stats().journal_lag >= 1

    def test_stats_stages_carry_quantiles(self):
        with PassivityService(max_workers=1) as service:
            service.submit(rlc_ladder(6).system, method="gare").result(
                timeout=60.0
            )
            stages = service.stats().stages
        assert "engine.dispatch" in stages
        entry = stages["engine.dispatch"]
        assert entry["count"] >= 1
        assert 0.0 <= entry["p50"] <= entry["p99"]


class TestScenarioTraceEvents:
    def test_trace_events_are_opt_in(self):
        spec = ScenarioSpec(
            family="corners",
            system=rlc_grid(3, 4).system,
            n_corners=2,
            method="gare",
        )
        with PassivityService(max_workers=2) as service:
            handle = service.submit_scenario(spec)
            events = drain(handle.subscribe(), timeout=120.0)
        assert all(event.event != "trace" for event in events)

    def test_trace_events_stream_when_requested(self):
        # Gated cells: the subscription attaches before any cell can
        # finish, so every per-cell trace event is observed.
        gates = GateRegistry()
        spec = ScenarioSpec(
            family="corners",
            system=rlc_grid(3, 4).system,
            n_corners=2,
            method="gated",
            trace=True,
        )
        with PassivityService(
            max_workers=2, registry=gates.registry
        ) as service:
            handle = service.submit_scenario(spec)
            subscription = handle.subscribe()
            gates.open_all()
            events = drain(subscription, timeout=120.0)
        corners = [event for event in events if event.event == "corner"]
        traces = [event for event in events if event.event == "trace"]
        # One trace event per finished cell (n_corners counts the nominal).
        assert len(corners) == 2
        assert [t.data["job_id"] for t in traces] == [
            c.data["job_id"] for c in corners
        ]
        for event in traces:
            names = _span_names(event.data["spans"])
            assert "queue.wait" in names
            assert "engine.dispatch" in names


@pytest.fixture()
def server_url():
    """A running service + HTTP server on an ephemeral port."""
    service = PassivityService(max_workers=2)
    server = serve(service, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", service
    finally:
        server.shutdown()
        server.server_close()
        service.close()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30.0) as response:
        content_type = response.headers.get("Content-Type", "")
        body = response.read()
    if content_type.startswith("application/json"):
        return 200, json.loads(body), content_type
    return 200, body.decode("utf-8"), content_type


def _post(url: str, document: dict):
    request = urllib.request.Request(
        url, data=json.dumps(document).encode("utf-8"), method="POST"
    )
    with urllib.request.urlopen(request, timeout=30.0) as response:
        return response.status, json.loads(response.read())


class TestHTTPEndpoints:
    def test_trace_endpoint_200_202_404(self, server_url):
        base, service = server_url
        status, payload = _post(
            f"{base}/jobs",
            {"system": system_to_jsonable(rlc_ladder(5).system), "method": "gare"},
        )
        assert status == 202
        job_id = payload["job_id"]
        service.result(job_id, timeout=60.0)

        status, trace, _ = _get(f"{base}/jobs/{job_id}/trace")
        assert status == 200
        assert trace["job_id"] == job_id
        assert "queue.wait" in _span_names(trace["spans"])

        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(f"{base}/jobs/nonexistent/trace", timeout=30.0)
        assert exc_info.value.code == 404

    def test_metrics_endpoint_serves_prometheus_text(self, server_url):
        base, service = server_url
        service.submit(rlc_ladder(5).system, method="gare").result(timeout=60.0)
        status, text, content_type = _get(f"{base}/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        for family in (
            "repro_stage_seconds",
            "repro_jobs_submitted",
            "repro_jobs_completed",
            "repro_queue_depth",
            "repro_queue_wait_max_seconds",
            "repro_journal_lag",
            "repro_uptime_seconds",
        ):
            assert f"# TYPE {family} " in text, f"missing family {family}"
        assert 'repro_stage_seconds_bucket{stage="engine.dispatch",le="+Inf"}' in text

    def test_metrics_can_be_disabled(self):
        service = PassivityService(max_workers=1)
        server = serve(service, host="127.0.0.1", port=0, metrics=False)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(
                    f"http://{host}:{port}/metrics", timeout=30.0
                )
            assert exc_info.value.code == 404
        finally:
            server.shutdown()
            server.server_close()
            service.close()


class TestStatsContract:
    """Every ServiceStats field must reach HTTP clients and the docs."""

    def test_every_field_appears_in_the_http_stats_json(self, server_url):
        base, service = server_url
        service.submit(rlc_ladder(4).system, method="gare").result(timeout=60.0)
        status, payload, _ = _get(f"{base}/stats")
        assert status == 200
        field_names = {field.name for field in dataclasses.fields(ServiceStats)}
        missing = field_names - set(payload)
        assert not missing, f"ServiceStats fields absent from GET /stats: {missing}"

    def test_every_field_is_documented_in_api_md(self):
        api_md = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir, "docs", "api.md"
        )
        with open(api_md, "r", encoding="utf-8") as stream:
            text = stream.read()
        for field in dataclasses.fields(ServiceStats):
            assert (
                f"`{field.name}`" in text
            ), f"ServiceStats.{field.name} undocumented in docs/api.md"
