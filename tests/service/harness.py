"""Deterministic async/streaming test harness for the scenario engine.

Everything here is built for *event-driven* determinism: tests block on the
service's own synchronization primitives (subscription queues, gate events,
``done_event``) instead of sleeping, so they are fast when the service is
fast and only slow when it is genuinely stuck.

* :class:`FakeClock` — injectable time source for
  ``PassivityService(clock=...)``: scenario timestamps, elapsed and ETA
  figures become exact, assertable numbers.
* :class:`GateRegistry` / ``gated`` method — a registry whose runner blocks
  on a :class:`threading.Event` per fingerprint, so tests decide exactly
  when each cell completes (the tool for cancellation races and
  slow-consumer scheduling).
* :func:`drain` — collect a subscription's events until the stream closes
  (no sockets, no sleeps: the in-process SSE client).
* :func:`parse_sse` — decode a raw SSE byte stream (as read off the HTTP
  feed) into ``(id, event, data)`` frames.
* ``assert_*`` helpers — the golden-transcript invariants: gapless
  monotonic ids, terminal-event-last, resume without gaps or duplicates.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import MethodRegistry, MethodSpec
from repro.passivity.result import PassivityReport
from repro.service import ScenarioEvent, ScenarioSubscription

__all__ = [
    "FakeClock",
    "GateRegistry",
    "drain",
    "parse_sse",
    "numbered_ids",
    "assert_gapless_monotonic",
    "assert_terminal_last",
    "assert_resume_contract",
]


class FakeClock:
    """Manually advanced time source (inject via ``PassivityService(clock=)``).

    Thread-safe: the service reads it from the loop thread while the test
    advances it from the main thread.
    """

    def __init__(self, start: float = 1_000.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self._now

    @property
    def now(self) -> float:
        """Current fake time."""
        return self()

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new time."""
        with self._lock:
            self._now += float(seconds)
            return self._now


class GateRegistry:
    """Method registry whose ``gated`` runner blocks until the test says go.

    Each cell running the ``gated`` method waits on a gate keyed by the
    system's order (distinct corners of a perturbed family share an order,
    so tests key gates by scenario via per-instance defaults).  ``open_all``
    releases everything — including cells that arrive later.
    """

    def __init__(self, default_open: bool = False) -> None:
        self._open_all = threading.Event()
        if default_open:
            self._open_all.set()
        self._go = threading.Semaphore(0)
        self._started = threading.Semaphore(0)
        self.registry = MethodRegistry()
        self.registry.register(
            MethodSpec(
                name="gated",
                runner=self._run,
                description="blocks until the test opens the gate",
                uses_spectral_cache=False,
            )
        )

    def _run(self, system, tol, cache, **options) -> PassivityReport:
        self._started.release()
        # Bounded wait: a deadlocked test fails in seconds, not forever.
        deadline = time.time() + 30.0
        opened = False
        while time.time() < deadline:
            if self._open_all.is_set():
                opened = True
                break
            if self._go.acquire(timeout=0.05):
                opened = True
                break
        return PassivityReport(is_passive=opened, method="gated")

    def wait_started(self, n: int = 1, timeout: float = 10.0) -> bool:
        """Block until ``n`` gated cells have *started* running."""
        for _ in range(n):
            if not self._started.acquire(timeout=timeout):
                return False
        return True

    def release(self, n: int = 1) -> None:
        """Let exactly ``n`` gated cells complete (stepwise scheduling)."""
        for _ in range(n):
            self._go.release()

    def open_all(self) -> None:
        """Release every waiting (and future) gated cell."""
        self._open_all.set()


def drain(
    subscription: ScenarioSubscription,
    timeout: float = 30.0,
    max_events: int = 10_000,
) -> List[ScenarioEvent]:
    """Collect events until the stream ends (in-process SSE client).

    Blocks on the subscription queue only — returns as soon as the
    producer closes the stream (terminal event delivered) or ``timeout``
    passes with no traffic at all.
    """
    events: List[ScenarioEvent] = []
    while len(events) < max_events:
        event = subscription.get(timeout=timeout)
        if event is None:
            if subscription.closed:
                break
            break  # silent timeout: let the caller's assertions report it
        events.append(event)
        if event.terminal:
            break
    return events


def parse_sse(raw: bytes) -> List[Tuple[Optional[int], str, Dict[str, Any]]]:
    """Decode an SSE byte stream into ``(id, event, data)`` frames.

    Comment lines (heartbeats) and control lines (``retry:``) are skipped;
    frames without an ``id:`` line (transient snapshots) decode with
    ``id=None``.
    """
    frames: List[Tuple[Optional[int], str, Dict[str, Any]]] = []
    for block in raw.decode("utf-8").split("\n\n"):
        event_id: Optional[int] = None
        name: Optional[str] = None
        data: Optional[str] = None
        for line in block.splitlines():
            if line.startswith(":") or line.startswith("retry:"):
                continue
            if line.startswith("id: "):
                event_id = int(line[4:])
            elif line.startswith("event: "):
                name = line[7:]
            elif line.startswith("data: "):
                data = line[6:]
        if name is not None and data is not None:
            frames.append((event_id, name, json.loads(data)))
    return frames


def numbered_ids(events: List[Any]) -> List[int]:
    """The non-transient event ids, in arrival order.

    Accepts both :class:`ScenarioEvent` lists and :func:`parse_sse` frames.
    """
    ids: List[int] = []
    for event in events:
        event_id = (
            event[0] if isinstance(event, tuple) else event.event_id
        )
        if event_id is not None:
            ids.append(event_id)
    return ids


def assert_gapless_monotonic(events: List[Any]) -> None:
    """Every numbered id is exactly one more than its predecessor."""
    ids = numbered_ids(events)
    assert ids, "stream delivered no numbered events"
    expected = list(range(ids[0], ids[0] + len(ids)))
    assert ids == expected, f"ids not gapless/monotonic: {ids}"


def assert_terminal_last(events: List[Any]) -> None:
    """The stream ends with exactly one terminal event and none after it."""
    assert events, "stream delivered no events"
    names = [
        event[1] if isinstance(event, tuple) else event.event
        for event in events
    ]
    terminal = [n for n in names if n in ("summary", "cancelled")]
    assert len(terminal) == 1, f"expected one terminal event, saw {terminal}"
    assert names[-1] in ("summary", "cancelled"), (
        f"events after terminal: {names}"
    )


def assert_resume_contract(
    first: List[Any], resumed: List[Any], since: int
) -> None:
    """A resume from id ``since`` replays exactly the events after it."""
    original = [i for i in numbered_ids(first) if i > since]
    replayed = numbered_ids(resumed)
    assert replayed == original, (
        f"resume from {since}: expected {original}, got {replayed}"
    )
