"""Tests of the write-ahead job journal and service-level replay.

The headline pin mirrors the ISSUE acceptance criterion: a service killed
with N accepted-but-unfinished jobs must replay exactly those N on restart
under their original ids, and no job may ever acquire two terminal journal
records.
"""

from __future__ import annotations

import json

import pytest

from repro.circuits import rlc_ladder
from repro.exceptions import JournalError, ServiceError
from repro.service import JobState, PassivityService, system_to_jsonable
from repro.service.journal import JobJournal


def _submit_payload(system, method="auto", priority=0, timeout=None):
    """Build the wire-form payload the service journals on submission."""
    return {
        "system": system_to_jsonable(system),
        "method": method,
        "options": {},
        "priority": priority,
        "timeout": timeout,
        "submitted_at": 1000.0,
    }


class TestJobJournal:
    def test_round_trip_pending_across_instances(self, tmp_path):
        system = rlc_ladder(3).system
        with JobJournal(tmp_path / "j.jsonl") as journal:
            journal.record_submitted("job-a", _submit_payload(system))
            journal.record_submitted("job-b", _submit_payload(system))
            journal.record_started("job-a")
            assert journal.record_finished("job-a", "done") is True
        reopened = JobJournal(tmp_path / "j.jsonl")
        pending = reopened.pending()
        assert [record["job_id"] for record in pending] == ["job-b"]
        assert pending[0]["system"] == system_to_jsonable(system)
        assert reopened.n_corrupt == 0 and reopened.n_truncated == 0
        reopened.close()

    def test_directory_path_resolves_to_journal_file(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            assert journal.path == tmp_path / "journal.jsonl"
            journal.record_submitted("job-a", {"method": "auto"})
        assert (tmp_path / "journal.jsonl").exists()

    def test_torn_tail_is_dropped_silently(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as journal:
            journal.record_submitted("job-a", {"method": "auto"})
            journal.record_submitted("job-b", {"method": "auto"})
        # Simulate a crash mid-append: truncate inside the final record.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 9])
        reopened = JobJournal(path)
        assert [r["job_id"] for r in reopened.pending()] == ["job-a"]
        assert reopened.n_truncated == 1
        assert reopened.n_corrupt == 0
        # The journal must stay appendable after a torn tail.
        reopened.record_submitted("job-c", {"method": "auto"})
        reopened.close()
        assert len(JobJournal(path)) == 2

    def test_corrupt_interior_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as journal:
            journal.record_submitted("job-a", {"method": "auto"})
        lines = path.read_bytes().splitlines()
        lines.insert(0, b"\x00garbage not json")
        path.write_bytes(b"\n".join(lines) + b"\n")
        reopened = JobJournal(path)
        assert [r["job_id"] for r in reopened.pending()] == ["job-a"]
        assert reopened.n_corrupt == 1
        assert reopened.n_truncated == 0
        reopened.close()

    def test_duplicate_terminal_record_is_refused(self, tmp_path):
        with JobJournal(tmp_path / "j.jsonl") as journal:
            journal.record_submitted("job-a", {"method": "auto"})
            assert journal.record_finished("job-a", "done") is True
            assert journal.record_finished("job-a", "done") is False
            assert journal.record_finished("job-never-seen", "done") is False
        raw = (tmp_path / "j.jsonl").read_bytes()
        terminal = [
            line for line in raw.splitlines()
            if json.loads(line).get("event") == "finished"
        ]
        assert len(terminal) == 1

    def test_lag_counts_dead_lines_and_compact_removes_them(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path, compact_threshold=None)
        for index in range(4):
            journal.record_submitted(f"job-{index}", {"method": "auto"})
        journal.record_started("job-0")
        assert journal.lag == 0
        journal.record_finished("job-0", "done")
        # job-0 leaves three dead lines: submitted + started + finished.
        assert journal.lag == 3
        journal.compact()
        assert journal.lag == 0
        assert len(journal) == 3
        journal.close()
        # Compaction keeps replayability: the survivors are intact records.
        assert len(JobJournal(path)) == 3

    def test_auto_compaction_triggers_at_threshold(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl", compact_threshold=4)
        for index in range(4):
            journal.record_submitted(f"job-{index}", {"method": "auto"})
            journal.record_finished(f"job-{index}", "done")
        assert journal.n_compactions >= 1
        assert journal.lag < 4
        journal.close()

    def test_invalid_threshold_and_closed_appends_raise(self, tmp_path):
        with pytest.raises(JournalError):
            JobJournal(tmp_path / "j.jsonl", compact_threshold=0)
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(JournalError):
            journal.record_submitted("job-a", {"method": "auto"})

    def test_unusable_path_raises_at_construction(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file where a parent directory must go")
        with pytest.raises(JournalError):
            JobJournal(blocker / "sub" / "j.jsonl")


class TestServiceJournal:
    def test_journal_true_requires_store(self):
        with pytest.raises(ServiceError):
            PassivityService(max_workers=1, journal=True)

    def test_submission_flows_through_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with PassivityService(max_workers=1, journal=path) as service:
            handle = service.submit(rlc_ladder(3).system)
            assert handle.result(timeout=60.0).is_passive
            journal = service._journal
            assert len(journal) == 0  # finished record closed the book
            assert journal.n_appends >= 2  # submitted + finished
        # The on-disk journal agrees after restart.
        assert len(JobJournal(path)) == 0

    def test_restart_replays_unfinished_jobs_under_original_ids(self, tmp_path):
        path = tmp_path / "j.jsonl"
        system = rlc_ladder(3).system
        # Simulate a service killed with accepted work: journal holds three
        # write-ahead records and no terminal events.
        with JobJournal(path) as journal:
            for index in range(3):
                journal.record_submitted(f"job-replay-{index}", _submit_payload(system))
        with PassivityService(max_workers=2, journal=path) as service:
            # The original ids resolve on the restarted service ...
            for index in range(3):
                report = service.result(f"job-replay-{index}", timeout=60.0)
                assert report.is_passive
            assert service.stats().replayed == 3
            # ... and every replayed job reaches exactly one terminal record.
            assert len(service._journal) == 0
        terminal = {}
        for line in path.read_bytes().splitlines():
            record = json.loads(line)
            if record.get("event") == "finished":
                terminal[record["job_id"]] = terminal.get(record["job_id"], 0) + 1
        assert all(count == 1 for count in terminal.values())

    def test_unreplayable_record_is_retired_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with JobJournal(path) as journal:
            journal.record_submitted(
                "job-bad", {"system": {"nonsense": True}, "method": "auto",
                            "options": {}, "priority": 0, "timeout": None}
            )
            journal.record_submitted("job-good", _submit_payload(rlc_ladder(3).system))
        with PassivityService(max_workers=1, journal=path) as service:
            assert service.result("job-good", timeout=60.0).is_passive
            assert service.stats().replayed == 1
            with pytest.raises(Exception):
                service.status("job-bad")

    def test_journal_under_store_root(self, tmp_path):
        from repro.store import DecompositionStore

        store = DecompositionStore(tmp_path / "store")
        with PassivityService(max_workers=1, store=store, journal=True) as service:
            assert service._journal.path.parent == (tmp_path / "store").resolve()
            handle = service.submit(rlc_ladder(3).system)
            assert handle.result(timeout=60.0).is_passive

    def test_replay_skips_jobs_the_store_already_finished(self, tmp_path):
        from repro.store import DecompositionStore

        system = rlc_ladder(3).system
        store_dir = tmp_path / "store"
        path = tmp_path / "j.jsonl"
        store = DecompositionStore(store_dir)
        with PassivityService(max_workers=1, store=store, journal=path) as service:
            handle = service.submit(system)
            handle.result(timeout=60.0)
            done_id = handle.job_id
        # Re-inject the submitted record as if the crash ate the terminal
        # append: the restarted service must close the book, not re-run.
        with JobJournal(path) as journal:
            journal.record_submitted(done_id, _submit_payload(system))
        store = DecompositionStore(store_dir)
        with PassivityService(max_workers=1, store=store, journal=path) as service:
            assert service.stats().replayed == 0
            assert service.status(done_id).state is JobState.DONE
            assert len(service._journal) == 0
