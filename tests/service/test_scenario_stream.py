"""Streaming scenario engine: expansion, event transcripts, backpressure.

The golden-transcript suite of the SSE push layer — every test runs
in-process on the harness's event-driven client (no sockets, no sleeps):
subscription queues and gate events are the only synchronization.
"""

from __future__ import annotations

import pytest

from repro.circuits import rc_line, rlc_ladder
from repro.engine import BatchRunner
from repro.exceptions import (
    DimensionError,
    QueueFullError,
    SerializationError,
    UnknownScenarioError,
)
from repro.service import (
    PassivityService,
    ScenarioSpec,
    ScenarioState,
    format_sse_event,
    scenario_from_jsonable,
    scenario_to_jsonable,
)

from harness import (
    FakeClock,
    GateRegistry,
    assert_gapless_monotonic,
    assert_resume_contract,
    assert_terminal_last,
    drain,
    numbered_ids,
)


class TestScenarioSpec:
    def test_corners_expansion_chains_to_nominal_root(self):
        spec = ScenarioSpec(
            family="corners", system=rlc_ladder(4).system, n_corners=5
        )
        cells = spec.expand()
        assert len(cells) == 5
        assert cells[0].label == "nominal"
        assert cells[0].ancestor is None and not cells[0].defer
        for cell in cells[1:]:
            assert cell.ancestor == 0 and cell.defer

    def test_frequency_sweep_bands_cover_the_range(self):
        spec = ScenarioSpec(
            family="frequency_sweep",
            system=rc_line(5).system,
            n_bands=4,
            omega_min=1e-2,
            omega_max=1e2,
        )
        cells = spec.expand()
        assert len(cells) == 4
        assert all(cell.method == "sampling" for cell in cells)
        # Only the first band probes omega=0; bands tile [min, max].
        assert cells[0].options["include_zero"] is True
        assert all(c.options["include_zero"] is False for c in cells[1:])
        assert cells[0].options["omega_min"] == pytest.approx(1e-2)
        assert cells[-1].options["omega_max"] == pytest.approx(1e2)

    def test_portfolio_promotes_the_medoid_root(self):
        base = rlc_ladder(4).system
        from repro.circuits import perturb_system

        members = [base] + [
            perturb_system(base, 1e-4, seed=i) for i in range(1, 4)
        ]
        spec = ScenarioSpec(family="portfolio", systems=members)
        cells = spec.expand()
        assert len(cells) == 4
        # The medoid leads; every other member chains to it.
        assert cells[0].ancestor is None
        assert all(c.ancestor == 0 and c.defer for c in cells[1:])

    def test_wire_roundtrip(self):
        spec = ScenarioSpec(
            family="corners",
            system=rlc_ladder(3).system,
            n_corners=4,
            scale=3e-4,
            seed=7,
            method="gare",
            priority=2,
        )
        revived = scenario_from_jsonable(scenario_to_jsonable(spec))
        assert revived.family == spec.family
        assert revived.n_corners == 4
        assert revived.seed == 7
        assert revived.method == "gare"
        assert revived.priority == 2
        first, second = spec.expand(), revived.expand()
        assert [c.label for c in first] == [c.label for c in second]

    def test_malformed_wire_document_raises(self):
        with pytest.raises(SerializationError):
            scenario_from_jsonable({"kind": "nonsense"})
        with pytest.raises(SerializationError):
            scenario_from_jsonable({"kind": "scenario", "family": "corners"})

    def test_bad_parameters_raise(self):
        with pytest.raises(DimensionError):
            ScenarioSpec(
                family="corners", system=rlc_ladder(3).system, n_corners=0
            ).validate()
        with pytest.raises(DimensionError):
            ScenarioSpec(family="portfolio", systems=[]).validate()


class TestScenarioStreaming:
    def test_corner_sweep_streams_every_verdict(self):
        spec = ScenarioSpec(
            family="corners",
            system=rlc_ladder(4).system,
            n_corners=6,
            method="gare",
        )
        with PassivityService(max_workers=2, incremental=True) as service:
            handle = service.submit_scenario(spec)
            events = drain(handle.subscribe())
            assert handle.wait(10.0)
            assert_gapless_monotonic(events)
            assert_terminal_last(events)
            corners = [e for e in events if e.event == "corner"]
            assert len(corners) == 6
            assert all(e.data["is_passive"] for e in corners)
            assert {e.data["index"] for e in corners} == set(range(6))
            # Chained corners certify through the incremental tier.
            warmed = [e for e in corners if e.data.get("incremental")]
            assert warmed, "no corner warm-started from the family root"
            summary = events[-1]
            assert summary.data["n_done"] == 6
            assert summary.data["n_passive"] == 6
            status = handle.status()
            assert status.state is ScenarioState.DONE
            stats = service.stats()
            assert stats.scenarios == 1
            assert stats.streamed_events == len(numbered_ids(events))
            assert stats.incremental_hits > 0

    def test_progress_events_carry_elapsed_and_eta_from_the_clock(self):
        clock = FakeClock(start=100.0)
        gates = GateRegistry()
        runner = BatchRunner(registry=gates.registry, backend="thread")
        spec = ScenarioSpec(
            family="corners",
            system=rlc_ladder(3).system,
            n_corners=3,
            method="gated",
        )
        with PassivityService(runner, max_workers=1, clock=clock) as service:
            handle = service.submit_scenario(spec)
            subscription = handle.subscribe()
            assert gates.wait_started(1)
            clock.advance(10.0)
            gates.open_all()
            events = drain(subscription)
            assert handle.wait(10.0)
            progress = [e for e in events if e.event == "progress"]
            # The submission tick reports zero elapsed at fake time 100.
            assert progress[0].data["done"] == 0
            assert progress[0].data["elapsed_seconds"] == 0.0
            after_first = next(p for p in progress if p.data["done"] == 1)
            assert after_first.data["elapsed_seconds"] == pytest.approx(10.0)
            # ETA extrapolates the per-cell pace: 10 s/cell, 2 cells left.
            assert after_first.data["eta_seconds"] == pytest.approx(20.0)
            assert all(e.at >= 100.0 for e in events)

    def test_late_subscriber_replays_the_full_transcript_and_closes(self):
        spec = ScenarioSpec(
            family="corners", system=rlc_ladder(3).system, n_corners=4
        )
        with PassivityService(max_workers=2) as service:
            handle = service.submit_scenario(spec)
            live = drain(handle.subscribe())
            assert handle.wait(10.0)
            replayed = drain(handle.subscribe())
            assert numbered_ids(replayed) == numbered_ids(live)
            assert_terminal_last(replayed)

    def test_resume_replays_no_gaps_no_duplicates(self):
        spec = ScenarioSpec(
            family="corners", system=rlc_ladder(3).system, n_corners=5
        )
        with PassivityService(max_workers=2) as service:
            handle = service.submit_scenario(spec)
            first = drain(handle.subscribe())
            assert handle.wait(10.0)
            for since in (1, 3, numbered_ids(first)[-1] - 1):
                resumed = drain(handle.subscribe(last_event_id=since))
                assert_resume_contract(first, resumed, since)

    def test_resume_past_the_ring_window_gets_a_snapshot(self):
        spec = ScenarioSpec(
            family="corners", system=rlc_ladder(3).system, n_corners=5
        )
        with PassivityService(
            max_workers=2, scenario_event_history=3
        ) as service:
            handle = service.submit_scenario(spec)
            full = drain(handle.subscribe())
            assert handle.wait(10.0)
            # The live stream saw everything; the ring kept only 3 events,
            # so resuming from id 1 cannot replay without a gap.
            resumed = drain(handle.subscribe(last_event_id=1))
            assert len(resumed) == 1
            snapshot = resumed[0]
            assert snapshot.event == "snapshot"
            assert snapshot.event_id is None
            assert snapshot.data["through_id"] == numbered_ids(full)[-1]
            assert snapshot.data["scenario"]["state"] == "done"

    def test_slow_consumer_drops_backlog_and_receives_snapshot(self):
        gates = GateRegistry()
        runner = BatchRunner(registry=gates.registry, backend="thread")
        spec = ScenarioSpec(
            family="corners",
            system=rlc_ladder(3).system,
            n_corners=8,
            method="gated",
        )
        with PassivityService(runner, max_workers=1) as service:
            handle = service.submit_scenario(spec)
            # buffer=2: the submission progress tick is already enqueued;
            # the root's corner + progress pair must overflow it.
            subscription = handle.subscribe(buffer=2)
            assert gates.wait_started(1)  # the root is on the pool
            gates.release(1)  # root completes: corner fills, progress drops
            assert gates.wait_started(1)  # first corner dispatched; stream idle
            snapshot = subscription.get(timeout=10.0)
            assert snapshot is not None
            assert snapshot.event == "snapshot"
            assert snapshot.event_id is None
            assert snapshot.data["dropped"] == 2
            # The snapshot's coverage point is the id of the dropped tail.
            assert snapshot.data["through_id"] >= 3
            gates.open_all()
            assert handle.wait(15.0)
            events = drain(subscription)
            assert subscription.dropped >= 2
            # The terminal event always lands (forced past the buffer).
            assert events[-1].event in ("summary", "cancelled")
            assert events[-1].data["n_cells"] == 8
            assert service.stats().dropped_events >= subscription.dropped

    def test_subscriber_limit_maps_to_queue_full(self):
        gates = GateRegistry()
        runner = BatchRunner(registry=gates.registry, backend="thread")
        spec = ScenarioSpec(
            family="corners",
            system=rlc_ladder(3).system,
            n_corners=2,
            method="gated",
        )
        with PassivityService(
            runner, max_workers=1, max_subscribers=2
        ) as service:
            handle = service.submit_scenario(spec)
            subs = [handle.subscribe(), handle.subscribe()]
            with pytest.raises(QueueFullError):
                handle.subscribe()
            gates.open_all()
            assert handle.wait(10.0)
            for subscription in subs:
                assert_terminal_last(drain(subscription))

    def test_unknown_scenario_raises_typed_error(self):
        with PassivityService(max_workers=1) as service:
            with pytest.raises(UnknownScenarioError):
                service.scenario_status("scn-missing")
            with pytest.raises(UnknownScenarioError):
                service.subscribe_scenario("scn-missing")
            with pytest.raises(UnknownScenarioError):
                service.cancel_scenario("scn-missing")

    def test_scenario_rejected_atomically_by_queue_bound(self):
        gates = GateRegistry()
        runner = BatchRunner(registry=gates.registry, backend="thread")
        spec = ScenarioSpec(
            family="corners",
            system=rlc_ladder(3).system,
            n_corners=6,
            method="gated",
        )
        with PassivityService(runner, max_workers=1, max_queue=4) as service:
            with pytest.raises(QueueFullError):
                service.submit_scenario(spec)
            # Nothing leaked: no scenario, no cells, and a fitting
            # scenario is still accepted afterwards.
            stats = service.stats()
            assert stats.scenarios == 0
            assert stats.submitted == 0
            assert stats.rejected == 1
            small = ScenarioSpec(
                family="corners",
                system=rlc_ladder(3).system,
                n_corners=3,
                method="gated",
            )
            handle = service.submit_scenario(small)
            gates.open_all()
            assert handle.wait(10.0)

    def test_sse_frame_formatting_omits_ids_on_transients(self):
        from repro.service.scenario import ScenarioEvent

        framed = format_sse_event(
            ScenarioEvent(event_id=7, event="corner", data={"a": 1})
        )
        assert framed.startswith(b"id: 7\nevent: corner\ndata: ")
        transient = format_sse_event(
            ScenarioEvent(event_id=None, event="snapshot", data={})
        )
        assert not transient.startswith(b"id:")


class TestQueueDepthSnapshot:
    """Satellite regression: /stats queue_depth is recomputed, not cached."""

    def test_queue_depth_counts_held_corners(self):
        gates = GateRegistry()
        runner = BatchRunner(registry=gates.registry, backend="thread")
        spec = ScenarioSpec(
            family="corners",
            system=rlc_ladder(3).system,
            n_corners=5,
            method="gated",
        )
        with PassivityService(runner, max_workers=1) as service:
            handle = service.submit_scenario(spec)
            assert gates.wait_started(1)  # the root is on the pool
            # The running tally sees no queued work (the 4 corners are
            # held, occupying no asyncio-queue slot), but the snapshot
            # reports the truth: 4 cells are waiting.
            assert service._n_queued == 0
            assert service.stats().queue_depth == 4
            gates.open_all()
            assert handle.wait(10.0)
            assert service.stats().queue_depth == 0

    def test_queue_depth_survives_a_corrupted_tally(self):
        """The snapshot is derived from job states, not the running count."""
        with PassivityService(max_workers=1) as service:
            handle = service.submit(rlc_ladder(3).system)
            assert handle.result(timeout=30.0).is_passive
            # Simulate tally drift (the historical stale-depth bug): the
            # snapshot must still derive 0 from the job table.
            service._n_queued = 17
            assert service.stats().queue_depth == 0
            service._n_queued = 0
