"""Concurrent-writer index tests of the decomposition store.

Pins the ISSUE satellite: two store instances (processes) sharing one
root must not drop each other's ``index.json`` entries when they flush —
the flush merges with the on-disk index, and deletions are protected by
tombstones so an eviction is not resurrected by the merge.
"""

from __future__ import annotations

import json

import pytest

from repro.config import DEFAULT_TOLERANCES
from repro.engine.cache import PENCIL_SPECTRUM
from repro.linalg.pencil import compute_spectral_context
from repro.store import DecompositionStore

FP_A = "ab" + "0123456789abcdef" * 4
FP_B = "cd" + "0123456789abcdef" * 4


def _entry(system):
    context = compute_spectral_context(system.e, system.a, DEFAULT_TOLERANCES)
    return ("value", context)


def _index_keys(root):
    document = json.loads((root / "index.json").read_text())
    return set(document["entries"])


class TestIndexMerge:
    def test_concurrent_writers_keep_each_others_entries(
        self, tmp_path, small_rlc_ladder
    ):
        root = tmp_path / "store"
        writer_a = DecompositionStore(root)
        writer_b = DecompositionStore(root)  # opened before A wrote anything
        writer_a.put(FP_A, PENCIL_SPECTRUM, _entry(small_rlc_ladder))
        writer_a.flush()
        # B never saw A's entry in memory; a blind overwrite would drop it.
        writer_b.put(FP_B, PENCIL_SPECTRUM, _entry(small_rlc_ladder))
        writer_b.flush()
        keys = _index_keys(root)
        assert any(FP_A in key for key in keys)
        assert any(FP_B in key for key in keys)
        # A fresh instance loads the merged view and serves both blobs.
        reader = DecompositionStore(root)
        assert reader.contains(FP_A, PENCIL_SPECTRUM)
        assert reader.contains(FP_B, PENCIL_SPECTRUM)
        assert reader.load(FP_A, PENCIL_SPECTRUM) is not None
        assert reader.load(FP_B, PENCIL_SPECTRUM) is not None

    def test_merge_does_not_resurrect_evicted_entries(
        self, tmp_path, small_rlc_ladder
    ):
        root = tmp_path / "store"
        seed = DecompositionStore(root)
        seed.put(FP_A, PENCIL_SPECTRUM, _entry(small_rlc_ladder))
        seed.flush()  # disk index now lists FP_A
        # A budgeted instance evicts FP_A to make room for FP_B; its flush
        # merges with the disk index, where FP_A still looks live — the
        # tombstone must keep the dead entry dead.
        size = json.loads((root / "index.json").read_text())["entries"]
        one_blob = max(record["size"] for record in size.values())
        evictor = DecompositionStore(root, size_budget=int(one_blob * 1.5))
        evicted = evictor.put(FP_B, PENCIL_SPECTRUM, _entry(small_rlc_ladder))
        assert evicted >= 1
        evictor.flush()
        keys = _index_keys(root)
        assert not any(FP_A in key for key in keys)
        assert any(FP_B in key for key in keys)

    def test_clear_overwrites_instead_of_merging(self, tmp_path, small_rlc_ladder):
        root = tmp_path / "store"
        writer = DecompositionStore(root)
        writer.put(FP_A, PENCIL_SPECTRUM, _entry(small_rlc_ladder))
        writer.flush()
        writer.clear()
        assert _index_keys(root) == set()
        assert len(writer) == 0

    def test_shared_keys_take_the_most_recent_last_used(
        self, tmp_path, small_rlc_ladder
    ):
        root = tmp_path / "store"
        writer_a = DecompositionStore(root)
        writer_a.put(FP_A, PENCIL_SPECTRUM, _entry(small_rlc_ladder))
        writer_a.flush()
        writer_b = DecompositionStore(root)
        # B touches the same key later; after both flush, the on-disk
        # recency must be B's (the newer), whichever order they flushed in.
        writer_b.put(FP_A, PENCIL_SPECTRUM, _entry(small_rlc_ladder))
        writer_b.flush()
        writer_a.flush()
        document = json.loads((root / "index.json").read_text())
        key = next(key for key in document["entries"] if FP_A in key)
        on_disk = document["entries"][key]["last_used"]
        assert on_disk == pytest.approx(
            max(
                writer_a._index[key]["last_used"],
                writer_b._index[key]["last_used"],
            )
        )
