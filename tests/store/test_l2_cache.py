"""L2 integration: DecompositionCache backed by the persistent store.

The headline regression here is the ISSUE's cold-start guarantee, pinned
with the shared :class:`~repro.bench.QZCounter`: a *fresh* cache attached to
a warm store answers ``check_passivity(system, "auto")`` with ``l2_hits >
0`` and **zero** QZ factorizations.  Alongside it: the l2 telemetry
plumbing through ``CacheStats`` (merge/minus/snapshot), negative-entry
sharing, corruption fall-through, and the ``seed()`` unknown-kind fix.
"""

from __future__ import annotations

import pytest

from repro.bench import QZCounter
from repro.circuits import paper_benchmark_model, rlc_grid
from repro.engine import (
    BatchRunner,
    CacheStats,
    DecompositionCache,
    check_passivity,
    fingerprint_system,
)
from repro.engine.cache import GARE_STATE_SPACE, PENCIL_SPECTRUM
from repro.exceptions import NotAdmissibleError, SerializationError
from repro.linalg.pencil import compute_spectral_context
from repro.store import DecompositionStore


@pytest.fixture()
def store(tmp_path):
    return DecompositionStore(tmp_path / "store")


class TestL2Telemetry:
    def test_miss_then_hit_counters(self, store, small_rlc_ladder):
        cold = DecompositionCache(store=store)
        cold.spectral(small_rlc_ladder)
        assert cold.stats.l2_misses == 1
        assert cold.stats.l2_hits == 0
        assert cold.stats.factorizations == 1
        # A *different* cache sharing the store rehydrates: L1 miss, L2 hit,
        # zero factorizations.
        warm = DecompositionCache(store=store)
        context = warm.spectral(small_rlc_ladder)
        assert context.is_regular
        assert warm.stats.l2_hits == 1
        assert warm.stats.misses == 1
        assert warm.stats.factorizations == 0
        assert warm.stats.by_kind[PENCIL_SPECTRUM]["l2_hits"] == 1

    def test_storeless_cache_reports_zero_l2(self, small_rlc_ladder):
        cache = DecompositionCache()
        cache.spectral(small_rlc_ladder)
        assert cache.stats.l2_hits == 0
        assert cache.stats.l2_misses == 0
        assert cache.stats.l2_evictions == 0

    def test_l2_counters_merge_minus_snapshot(self):
        left = CacheStats()
        left.record_l2("a", hit=True)
        left.record_l2("a", hit=False)
        right = CacheStats()
        right.record_l2("a", hit=True)
        right.l2_evictions += 3
        left.merge(right)
        assert left.l2_hits == 2
        assert left.l2_misses == 1
        assert left.l2_evictions == 3
        assert left.by_kind["a"]["l2_hits"] == 2
        baseline = left.snapshot()
        left.record_l2("a", hit=True)
        delta = left.minus(baseline)
        assert delta.l2_hits == 1
        assert delta.l2_misses == 0
        assert delta.by_kind["a"]["l2_hits"] == 1

    def test_eviction_telemetry_flows_through_cache(self, tmp_path, small_rlc_ladder):
        probe = DecompositionStore(tmp_path / "probe")
        probe.put(
            fingerprint_system(small_rlc_ladder),
            PENCIL_SPECTRUM,
            (
                "value",
                compute_spectral_context(small_rlc_ladder.e, small_rlc_ladder.a),
            ),
        )
        budget = probe.total_bytes  # fits roughly one spectral blob
        store = DecompositionStore(tmp_path / "store", size_budget=budget)
        cache = DecompositionCache(store=store)
        for rows in (3, 4, 5):
            cache.spectral(rlc_grid(rows, 3, sparse=False).system)
        assert store.n_evictions > 0
        assert cache.stats.l2_evictions == store.n_evictions


class TestColdStartRegression:
    """The ISSUE acceptance pin: warm store, fresh cache, zero QZ."""

    def test_fresh_cache_on_warm_store_does_zero_qz(self, store):
        system = rlc_grid(6, 6, sparse=False).system
        check_passivity(system, method="auto", cache=DecompositionCache(store=store))
        fresh = DecompositionCache(store=store)
        with QZCounter() as counter:
            report = check_passivity(system, method="auto", cache=fresh)
        assert report.is_passive, report.failure_reason
        assert fresh.stats.l2_hits > 0
        assert fresh.stats.factorizations == 0
        assert counter.total == 0, (
            f"store-warm cold start performed {counter.total} QZ "
            f"factorizations (qz={counter.qz}, ordqz={counter.ordqz})"
        )
        assert report.diagnostics["engine"]["factorizations"] == 0

    def test_impulsive_shh_path_also_rehydrates(self, store):
        system = paper_benchmark_model(24, n_impulsive_stubs=2).system
        check_passivity(system, method="auto", cache=DecompositionCache(store=store))
        fresh = DecompositionCache(store=store)
        with QZCounter() as counter:
            report = check_passivity(system, method="auto", cache=fresh)
        assert report.is_passive
        assert fresh.stats.l2_hits > 0
        assert counter.ordqz == 0  # the full-pencil ordered QZ came from disk

    def test_negative_gare_entry_shared_through_store(self, store, small_impulsive_ladder):
        cache = DecompositionCache(store=store)
        with pytest.raises(NotAdmissibleError):
            cache.gare_state_space(small_impulsive_ladder)
        fresh = DecompositionCache(store=store)
        with pytest.raises(NotAdmissibleError):
            fresh.gare_state_space(small_impulsive_ladder)
        # The refusal came from the store, not a recomputation.
        assert fresh.stats.l2_hits == 1
        assert fresh.stats.factorizations_for(GARE_STATE_SPACE) == 0

    def test_corrupt_blob_falls_back_to_compute(self, store, small_rlc_ladder):
        cache = DecompositionCache(store=store)
        cache.spectral(small_rlc_ladder)
        fingerprint = fingerprint_system(small_rlc_ladder)
        blob = (
            store.root
            / "objects"
            / fingerprint[:2]
            / f"{fingerprint}.{PENCIL_SPECTRUM}.npz"
        )
        blob.write_bytes(blob.read_bytes()[:40])
        fresh = DecompositionCache(store=store)
        context = fresh.spectral(small_rlc_ladder)  # recomputes, no raise
        assert context.is_regular
        assert fresh.stats.l2_misses == 1
        assert fresh.stats.factorizations == 1
        # ...and the recomputation repaired the blob for the next reader.
        repaired = DecompositionCache(store=store)
        repaired.spectral(small_rlc_ladder)
        assert repaired.stats.l2_hits == 1

    def test_unpersistable_kinds_bypass_the_store(self, store, mixed_passive_system):
        cache = DecompositionCache(store=store)
        cache.weierstrass(mixed_passive_system)
        # weierstrass_form has no codec: only its spectral dependency hits
        # the L2 tier; no weierstrass blob appears on disk.
        fingerprint = fingerprint_system(mixed_passive_system)
        assert not store.contains(fingerprint, "weierstrass_form")
        assert store.contains(fingerprint, PENCIL_SPECTRUM)


class TestSeedValidation:
    def test_seed_unknown_kind_raises(self, small_rlc_ladder):
        cache = DecompositionCache()
        context = compute_spectral_context(small_rlc_ladder.e, small_rlc_ladder.a)
        with pytest.raises(SerializationError) as excinfo:
            cache.seed(small_rlc_ladder, "pencil_sprectum", context)  # typo'd
        assert "pencil_sprectum" in str(excinfo.value)
        assert len(cache) == 0  # nothing was silently stored

    def test_seed_known_kind_still_works(self, small_rlc_ladder):
        cache = DecompositionCache()
        context = compute_spectral_context(small_rlc_ladder.e, small_rlc_ladder.a)
        cache.seed(small_rlc_ladder, PENCIL_SPECTRUM, context)
        assert cache.spectral(small_rlc_ladder) is context


class TestBatchRunnerWithStore:
    def test_serial_sweep_populates_and_reuses_the_store(self, store):
        system = rlc_grid(5, 5, sparse=False).system
        first = BatchRunner(backend="serial", cache=DecompositionCache(store=store))
        outcome = first.run([system], methods=("auto",))
        assert outcome.results[0].is_passive
        assert outcome.cache_stats.factorizations_for(PENCIL_SPECTRUM) == 1
        # A brand-new runner (fresh cache, same store) re-checks for free.
        second = BatchRunner(backend="serial", cache=DecompositionCache(store=store))
        warm = second.run([system], methods=("auto",))
        assert warm.results[0].is_passive
        assert warm.cache_stats.factorizations == 0
        assert warm.cache_stats.l2_hits > 0
