"""Cross-process sharing: the ISSUE's acceptance regression.

A system checked once by *any* process must be re-checked by a *fresh*
process — a genuinely separate interpreter, spawned here with
:mod:`subprocess` — with **zero** ordered QZ factorizations: the fresh
process's cache rehydrates every decomposition from the shared on-disk
store.  Also covers the :class:`~repro.engine.BatchRunner` process backend
shipping the store to its workers.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.circuits import rlc_grid
from repro.engine import DecompositionCache
from repro.engine.cache import PENCIL_SPECTRUM
from repro.store import DecompositionStore

#: Run one auto check against a store-backed cache and report QZ counts.
_CHECK_SCRIPT = """
import json, sys
from repro.bench import QZCounter
from repro.circuits import rlc_grid
from repro.engine import DecompositionCache
from repro import check_passivity
from repro.store import DecompositionStore

store = DecompositionStore(sys.argv[1])
cache = DecompositionCache(store=store)
system = rlc_grid(5, 5, sparse=False).system
with QZCounter() as counter:
    report = check_passivity(system, method="auto", cache=cache)
print(json.dumps({
    "is_passive": bool(report.is_passive),
    "qz_total": counter.total,
    "ordqz": counter.ordqz,
    "factorizations": cache.stats.factorizations,
    "l2_hits": cache.stats.l2_hits,
}))
"""


def _run_fresh_process(store_root: Path) -> dict:
    src = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = str(src) if not existing else str(src) + os.pathsep + existing
    completed = subprocess.run(
        [sys.executable, "-c", _CHECK_SCRIPT, str(store_root)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout.strip().splitlines()[-1])


class TestFreshProcessZeroQZ:
    def test_second_process_performs_zero_qz(self, tmp_path):
        store_root = tmp_path / "store"
        first = _run_fresh_process(store_root)
        assert first["is_passive"]
        assert first["qz_total"] >= 1  # the cold process really factorized
        assert first["l2_hits"] == 0
        second = _run_fresh_process(store_root)
        assert second["is_passive"]
        assert second["qz_total"] == 0, (
            f"fresh process on a warm store performed {second['qz_total']} "
            f"QZ factorizations"
        )
        assert second["factorizations"] == 0
        assert second["l2_hits"] > 0

    def test_parent_process_also_benefits(self, tmp_path):
        # Mixed direction: a subprocess warms the store, the *parent*
        # re-checks with a fresh cache and performs no factorization.
        store_root = tmp_path / "store"
        _run_fresh_process(store_root)
        cache = DecompositionCache(store=DecompositionStore(store_root))
        report = repro.check_passivity(
            rlc_grid(5, 5, sparse=False).system, method="auto", cache=cache
        )
        assert report.is_passive
        assert cache.stats.factorizations == 0
        assert cache.stats.l2_hits > 0


class TestProcessBackendShipsTheStore:
    def test_worker_results_persist_for_the_fleet(self, tmp_path):
        pytest.importorskip("multiprocessing")
        from repro.engine import BatchRunner

        store = DecompositionStore(tmp_path / "store")
        system = rlc_grid(5, 5, sparse=False).system
        runner = BatchRunner(
            backend="process",
            max_workers=2,
            cache=DecompositionCache(store=store),
            # Leave the factorization in the worker: the point is that the
            # *worker's* compute lands in the shared store.
            precompute_spectral=False,
        )
        try:
            outcome = runner.run([system], methods=("auto",))
        except (OSError, PermissionError):
            pytest.skip("process pool unavailable in this environment")
        if outcome.backend != "process":
            pytest.skip("process pool unavailable in this environment")
        assert outcome.results[0].is_passive
        # The worker (a different process) wrote through to the store...
        assert store.contains(
            repro.engine.fingerprint_system(system, runner.tol), PENCIL_SPECTRUM
        )
        # ...so a fresh serial runner sharing the store recomputes nothing.
        warm = BatchRunner(
            backend="serial", cache=DecompositionCache(store=store)
        )
        warm_outcome = warm.run([system], methods=("auto",))
        assert warm_outcome.cache_stats.factorizations == 0
        assert warm_outcome.cache_stats.l2_hits > 0
