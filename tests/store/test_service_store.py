"""Service-level store features: restart persistence, process executor, 429.

The satellites of the store PR at the serving layer: completed-job results
survive a service restart through the store; the process-pool execution
mode answers from the shared on-disk tier with zero factorizations; the
bounded submission queue rejects overflow as
:class:`~repro.exceptions.QueueFullError`, which the HTTP front-end maps to
``429 Too Many Requests`` with a ``Retry-After`` header.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.circuits import rlc_grid, rlc_ladder
from repro.exceptions import QueueFullError, UnknownJobError
from repro.service import (
    PassivityService,
    job_record_from_jsonable,
    job_record_to_jsonable,
    serve,
    system_to_jsonable,
)
from repro.service.jobs import JobState
from repro.store import DecompositionStore


class TestRestartPersistence:
    def test_result_survives_restart(self, tmp_path):
        store_root = tmp_path / "store"
        system = rlc_ladder(4).system
        with PassivityService(max_workers=1, store=store_root) as service:
            handle = service.submit(system)
            original = handle.result(timeout=60.0)
            job_id = handle.job_id
        # A brand-new service over the same store: the id still resolves.
        with PassivityService(max_workers=1, store=store_root) as reborn:
            status = reborn.status(job_id)
            assert status.state is JobState.DONE
            restored = reborn.result(job_id)
        assert restored.is_passive == original.is_passive
        assert restored.method == original.method

    def test_restored_jobs_do_not_pollute_lifetime_counters(self, tmp_path):
        store_root = tmp_path / "store"
        with PassivityService(max_workers=1, store=store_root) as service:
            service.submit(rlc_ladder(4).system).result(timeout=60.0)
        with PassivityService(max_workers=1, store=store_root) as reborn:
            stats = reborn.stats()
            assert stats.submitted == 0
            assert stats.completed == 0

    def test_restored_history_respects_max_history(self, tmp_path):
        store_root = tmp_path / "store"
        with PassivityService(max_workers=1, store=store_root, dedup=False) as service:
            handles = [service.submit(rlc_ladder(4).system) for _ in range(3)]
            for handle in handles:
                handle.result(timeout=60.0)
        with PassivityService(
            max_workers=1, store=store_root, max_history=1
        ) as reborn:
            with pytest.raises(UnknownJobError):
                reborn.status(handles[0].job_id)
            assert reborn.status(handles[-1].job_id).state is JobState.DONE

    def test_history_eviction_prunes_store_records(self, tmp_path):
        # The jobs/ directory must track the bounded history, not grow for
        # the lifetime of the deployment.
        store_root = tmp_path / "store"
        with PassivityService(
            max_workers=1, max_history=2, store=store_root, dedup=False
        ) as service:
            handles = [service.submit(rlc_ladder(4).system) for _ in range(5)]
            for handle in handles:
                handle.result(timeout=60.0)
        # Read after close(): result() unblocks at done_event, a moment
        # before the loop thread persists/prunes; close() drains it.
        records = service.store.load_job_records()
        assert len(records) <= 2
        kept = {record["job_id"] for record in records}
        assert handles[-1].job_id in kept

    def test_job_record_round_trip(self, tmp_path):
        store_root = tmp_path / "store"
        with PassivityService(max_workers=1, store=store_root) as service:
            handle = service.submit(rlc_ladder(4).system)
            report = handle.result(timeout=60.0)
            status = handle.status()
        record = job_record_to_jsonable(status, report)
        revived = job_record_from_jsonable(json.loads(json.dumps(record)))
        assert revived["job_id"] == status.job_id
        assert revived["report"].is_passive == report.is_passive

    def test_decompositions_survive_too(self, tmp_path):
        # Not just the result record: a *new submission* of the same system
        # after a restart answers from the store without factorizing.
        store_root = tmp_path / "store"
        system = rlc_grid(5, 5, sparse=False).system
        with PassivityService(max_workers=1, store=store_root) as service:
            service.submit(system).result(timeout=120.0)
        with PassivityService(max_workers=1, store=store_root) as reborn:
            reborn.submit(system).result(timeout=120.0)
            cache = reborn.stats().cache
        assert cache["factorizations"] == 0
        assert cache["l2_hits"] > 0


class TestProcessExecutor:
    def test_process_mode_end_to_end(self, tmp_path):
        pytest.importorskip("multiprocessing")
        store_root = tmp_path / "store"
        system = rlc_grid(5, 5, sparse=False).system
        # Warm the store in-process first.
        with PassivityService(max_workers=1, store=store_root) as warmup:
            warmup.submit(system).result(timeout=120.0)
        try:
            with PassivityService(
                max_workers=2, executor="process", store=store_root
            ) as service:
                handle = service.submit(system)
                report = handle.result(timeout=120.0)
                stats = service.stats()
        except (OSError, PermissionError):
            pytest.skip("process pool unavailable in this environment")
        if stats.completed == 0:
            pytest.skip("process pool unavailable in this environment")
        assert report.is_passive
        assert stats.executor == "process"
        # The worker process rehydrated everything from the shared store.
        assert stats.cache["factorizations"] == 0
        assert stats.cache["l2_hits"] > 0

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            PassivityService(executor="fiber")


class TestBackpressure:
    def test_queue_overflow_raises_and_counts(self):
        with PassivityService(max_workers=1, max_queue=1) as service:
            blocker = rlc_grid(9, 9, sparse=False).system
            handles = [service.submit(blocker)]
            rejected = 0
            for rows in range(3, 11):
                try:
                    handles.append(
                        service.submit(rlc_grid(rows, 3, sparse=False).system)
                    )
                except QueueFullError:
                    rejected += 1
            assert rejected >= 1
            stats = service.stats()
            assert stats.rejected == rejected
            assert stats.queue_capacity == 1
            for handle in handles:
                handle.result(timeout=120.0)

    def test_coalesced_duplicates_bypass_the_bound(self):
        system = rlc_grid(8, 8, sparse=False).system
        with PassivityService(max_workers=1, max_queue=1) as service:
            primary = service.submit(system)
            # Identical submissions coalesce regardless of the full queue.
            followers = [service.submit(system) for _ in range(5)]
            stats = service.stats()
            assert stats.deduplicated == 5
            assert stats.rejected == 0
            for handle in [primary, *followers]:
                assert handle.result(timeout=120.0).is_passive

    def test_invalid_max_queue_rejected(self):
        with pytest.raises(ValueError):
            PassivityService(max_queue=0)

    def test_cancelled_jobs_free_their_queue_slots(self):
        # A cancelled queued job leaves a ghost tuple in the asyncio queue;
        # the bound must track live QUEUED jobs, not ghosts, or cancel+retry
        # clients wedge themselves into permanent 429s.
        with PassivityService(max_workers=1, max_queue=2, dedup=False) as service:
            blocker = rlc_grid(9, 9, sparse=False).system
            running = service.submit(blocker)
            queued = [
                service.submit(rlc_grid(rows, 3, sparse=False).system)
                for rows in (3, 4)
            ]
            with pytest.raises(QueueFullError):
                service.submit(rlc_grid(5, 3, sparse=False).system)
            for handle in queued:
                assert handle.cancel()
            assert service.stats().queue_depth == 0
            # Slots freed: new submissions are accepted again.
            retry = service.submit(rlc_grid(6, 3, sparse=False).system)
            assert retry.result(timeout=120.0).is_passive
            running.result(timeout=120.0)


class TestHTTPBackpressure:
    @pytest.fixture()
    def busy_server(self):
        """A 1-worker, 1-slot service behind HTTP, primed with a long job."""
        service = PassivityService(max_workers=1, max_queue=1)
        server = serve(service, host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        try:
            yield f"http://{host}:{port}", service
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    @staticmethod
    def _post_job(base: str, system) -> "urllib.request.http.client.HTTPResponse":
        request = urllib.request.Request(
            f"{base}/jobs",
            data=json.dumps({"system": system_to_jsonable(system)}).encode(),
            method="POST",
        )
        return urllib.request.urlopen(request, timeout=30.0)

    def test_overflow_maps_to_429_with_retry_after(self, busy_server):
        base, _service = busy_server
        blocker = rlc_grid(9, 9, sparse=False).system
        with self._post_job(base, blocker) as response:
            assert response.status == 202
        saw_429 = None
        for rows in range(3, 11):
            system = rlc_grid(rows, 3, sparse=False).system
            try:
                with self._post_job(base, system) as response:
                    assert response.status == 202
            except urllib.error.HTTPError as error:
                saw_429 = error
                break
        assert saw_429 is not None, "bounded queue never overflowed over HTTP"
        assert saw_429.code == 429
        assert saw_429.headers.get("Retry-After") == "1"
        payload = json.loads(saw_429.read())
        assert payload["error"] == "QueueFullError"

    def test_stats_carry_the_backpressure_fields(self, busy_server):
        base, _service = busy_server
        with urllib.request.urlopen(f"{base}/stats", timeout=30.0) as response:
            payload = json.loads(response.read())
        assert payload["queue_capacity"] == 1
        assert payload["executor"] == "thread"
        assert "rejected" in payload
        assert "l2_hits" in payload["cache"]


class TestStoreParameterForms:
    def test_store_accepts_a_path(self, tmp_path):
        with PassivityService(max_workers=1, store=tmp_path / "store") as service:
            assert isinstance(service.store, DecompositionStore)
            service.submit(rlc_ladder(4).system).result(timeout=60.0)
        assert len(service.store.load_job_records()) == 1

    def test_store_attaches_to_a_caller_runner(self, tmp_path):
        from repro.engine import BatchRunner

        runner = BatchRunner(backend="thread")
        store = DecompositionStore(tmp_path / "store")
        with PassivityService(runner, store=store, max_workers=1) as service:
            assert service.runner.cache.store is store
            service.submit(rlc_ladder(4).system).result(timeout=60.0)
        assert len(store) > 0
