"""Unit tests of the persistent decomposition store and its codecs.

Covers the blob layout (sharding, atomic publication), the per-kind
round trips (spectral context, chain data, admissible reduction including
negative entries, structural profile), and the failure modes the ISSUE pins:
truncated blobs, concurrent writers racing on one key, and LRU eviction
under a tiny size budget.
"""

from __future__ import annotations

import json
import pickle
import threading

import numpy as np
import pytest

from repro.circuits import paper_benchmark_model, rlc_ladder
from repro.config import DEFAULT_TOLERANCES
from repro.engine import DecompositionCache, fingerprint_system
from repro.engine.cache import (
    CHAIN_DATA,
    GARE_RICCATI,
    GARE_STATE_SPACE,
    PENCIL_SPECTRUM,
    SYSTEM_PROFILE,
    WEIERSTRASS_FORM,
)
from repro.exceptions import NotAdmissibleError, SerializationError, StoreError
from repro.linalg.pencil import SpectralContext, compute_spectral_context
from repro.store import PERSISTED_KINDS, DecompositionStore, encode_entry

FP = "ab" + "0123456789abcdef" * 4  # a well-formed 66-char fingerprint


@pytest.fixture()
def store(tmp_path):
    return DecompositionStore(tmp_path / "store")


def spectral_entry(system):
    context = compute_spectral_context(system.e, system.a, DEFAULT_TOLERANCES)
    return ("value", context)


class TestLayout:
    def test_blobs_are_sharded_by_fingerprint_prefix(self, store, small_rlc_ladder):
        fingerprint = fingerprint_system(small_rlc_ladder)
        store.put(fingerprint, PENCIL_SPECTRUM, spectral_entry(small_rlc_ladder))
        blob = (
            store.root
            / "objects"
            / fingerprint[:2]
            / f"{fingerprint}.{PENCIL_SPECTRUM}.npz"
        )
        assert blob.exists()
        # No staging leftovers: the temp file was renamed away.
        assert not list(blob.parent.glob("*.tmp"))
        assert store.contains(fingerprint, PENCIL_SPECTRUM)
        assert len(store) == 1
        assert store.total_bytes == blob.stat().st_size

    def test_malformed_keys_are_rejected(self, store):
        with pytest.raises(StoreError):
            store.put("../escape", PENCIL_SPECTRUM, ("value", None))
        with pytest.raises(StoreError):
            store.load(FP, "Bad/Kind")
        with pytest.raises(StoreError):
            store.put(FP, "no_codec_kind", ("value", None))

    def test_accepts_matches_the_codec_table(self, store):
        for kind in PERSISTED_KINDS:
            assert store.accepts(kind)
        assert not store.accepts(WEIERSTRASS_FORM)
        assert not store.accepts("made_up_kind")

    def test_size_budget_must_be_positive(self, tmp_path):
        with pytest.raises(StoreError):
            DecompositionStore(tmp_path / "s", size_budget=0)

    def test_pickle_reopens_the_same_root(self, store, small_rlc_ladder):
        fingerprint = fingerprint_system(small_rlc_ladder)
        store.put(fingerprint, PENCIL_SPECTRUM, spectral_entry(small_rlc_ladder))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.root == store.root
        assert clone.size_budget == store.size_budget
        tag, context = clone.load(fingerprint, PENCIL_SPECTRUM)
        assert tag == "value" and context.is_regular


class TestRoundTrips:
    def test_spectral_context_round_trip(self, store, small_impulsive_ladder):
        system = small_impulsive_ladder
        original = compute_spectral_context(system.e, system.a, DEFAULT_TOLERANCES)
        fingerprint = fingerprint_system(system)
        store.put(fingerprint, PENCIL_SPECTRUM, ("value", original))
        tag, loaded = store.load(fingerprint, PENCIL_SPECTRUM)
        assert tag == "value"
        assert isinstance(loaded, SpectralContext)
        assert loaded.is_regular == original.is_regular
        assert loaded.n_finite == original.n_finite
        np.testing.assert_array_equal(loaded.aa, original.aa)
        np.testing.assert_array_equal(loaded.ee, original.ee)
        np.testing.assert_array_equal(loaded.q, original.q)
        np.testing.assert_array_equal(loaded.z, original.z)
        np.testing.assert_array_equal(loaded.alpha, original.alpha)
        np.testing.assert_array_equal(loaded.beta, original.beta)
        spectrum, reference = loaded.spectrum, original.spectrum
        np.testing.assert_array_equal(spectrum.finite, reference.finite)
        assert spectrum.n_infinite == reference.n_infinite
        assert spectrum.n_stable == reference.n_stable
        assert spectrum.is_stable == reference.is_stable

    def test_singular_context_round_trip(self, store):
        e = np.diag([1.0, 0.0])
        a = np.diag([-1.0, 0.0])
        original = compute_spectral_context(e, a, DEFAULT_TOLERANCES)
        assert not original.is_regular
        store.put(FP, PENCIL_SPECTRUM, ("value", original))
        tag, loaded = store.load(FP, PENCIL_SPECTRUM)
        assert tag == "value"
        assert not loaded.is_regular and loaded.aa is None

    def test_chain_data_round_trip(self, store):
        system = paper_benchmark_model(24, n_impulsive_stubs=2).system
        cache = DecompositionCache()
        original = cache.chain_data(system)
        fingerprint = fingerprint_system(system)
        store.put(fingerprint, CHAIN_DATA, ("value", original))
        tag, loaded = store.load(fingerprint, CHAIN_DATA)
        assert tag == "value"
        assert loaded.n_chains == original.n_chains
        assert loaded.has_higher_grade == original.has_higher_grade
        np.testing.assert_array_equal(loaded.v1_right, original.v1_right)
        np.testing.assert_array_equal(loaded.v2_left, original.v2_left)

    def test_gare_state_space_round_trip(self, store, small_rlc_ladder):
        cache = DecompositionCache()
        original = cache.gare_state_space(small_rlc_ladder)
        fingerprint = fingerprint_system(small_rlc_ladder)
        store.put(fingerprint, GARE_STATE_SPACE, ("value", original))
        tag, loaded = store.load(fingerprint, GARE_STATE_SPACE)
        assert tag == "value"
        np.testing.assert_array_equal(loaded.a, original.a)
        np.testing.assert_array_equal(loaded.d, original.d)

    def test_negative_entry_round_trip(self, store):
        error = NotAdmissibleError("2 impulsive mode(s) present")
        store.put(FP, GARE_STATE_SPACE, ("error", error))
        tag, revived = store.load(FP, GARE_STATE_SPACE)
        assert tag == "error"
        assert isinstance(revived, NotAdmissibleError)
        assert "impulsive" in str(revived)

    def test_non_allowlisted_error_is_refused(self, store):
        with pytest.raises(SerializationError):
            store.put(FP, GARE_STATE_SPACE, ("error", RuntimeError("boom")))

    def test_gare_certificate_round_trip(self, store, small_rlc_ladder):
        cache = DecompositionCache()
        original = cache.gare_certificate(small_rlc_ladder)
        assert original.x is not None  # the ladder is passive: solve succeeded
        fingerprint = fingerprint_system(small_rlc_ladder)
        store.put(fingerprint, GARE_RICCATI, ("value", original))
        tag, loaded = store.load(fingerprint, GARE_RICCATI)
        assert tag == "value"
        assert loaded.feedthrough_psd == original.feedthrough_psd
        assert loaded.epsilon == original.epsilon
        assert loaded.residual == original.residual
        assert loaded.failure is None
        np.testing.assert_array_equal(loaded.x, original.x)

    def test_gare_certificate_failure_forms_round_trip(self, store):
        from repro.passivity.gare_test import GareCertificate

        indefinite = GareCertificate(feedthrough_psd=False)
        store.put(FP, GARE_RICCATI, ("value", indefinite))
        _, loaded = store.load(FP, GARE_RICCATI)
        assert not loaded.feedthrough_psd and loaded.x is None

        unsolvable = GareCertificate(
            feedthrough_psd=True, epsilon=1e-9, failure="no stabilizing solution"
        )
        store.put(FP, GARE_RICCATI, ("value", unsolvable))
        _, loaded = store.load(FP, GARE_RICCATI)
        assert loaded.failure == "no stabilizing solution"
        assert loaded.x is None and loaded.residual == float("inf")

    def test_system_profile_round_trip(self, store, small_rc_line):
        cache = DecompositionCache()
        original = cache.profile(small_rc_line)
        fingerprint = fingerprint_system(small_rc_line)
        store.put(fingerprint, SYSTEM_PROFILE, ("value", original))
        tag, loaded = store.load(fingerprint, SYSTEM_PROFILE)
        assert tag == "value"
        assert loaded == original  # frozen dataclass: field-wise equality

    def test_encode_entry_rejects_unknown_tag(self):
        with pytest.raises(StoreError):
            encode_entry(PENCIL_SPECTRUM, ("weird", None))


class TestFailureModes:
    def test_missing_blob_is_a_miss(self, store):
        assert store.load(FP, PENCIL_SPECTRUM) is None
        assert store.counters()["load_misses"] == 1

    def test_truncated_blob_is_quarantined(self, store, small_rlc_ladder):
        fingerprint = fingerprint_system(small_rlc_ladder)
        store.put(fingerprint, PENCIL_SPECTRUM, spectral_entry(small_rlc_ladder))
        blob = (
            store.root
            / "objects"
            / fingerprint[:2]
            / f"{fingerprint}.{PENCIL_SPECTRUM}.npz"
        )
        raw = blob.read_bytes()
        blob.write_bytes(raw[: len(raw) // 3])  # truncate mid-archive
        assert store.load(fingerprint, PENCIL_SPECTRUM) is None
        assert store.counters()["corrupt"] == 1
        assert not blob.exists()  # quarantined, not left to fail again
        # The key is computable again (a fresh put repairs the store).
        store.put(fingerprint, PENCIL_SPECTRUM, spectral_entry(small_rlc_ladder))
        assert store.load(fingerprint, PENCIL_SPECTRUM) is not None

    def test_transient_read_error_does_not_quarantine(
        self, store, small_rlc_ladder, monkeypatch
    ):
        # An OSError (fd exhaustion, a network-volume hiccup) is a miss,
        # but the blob — which may be perfectly healthy — must survive.
        fingerprint = fingerprint_system(small_rlc_ladder)
        store.put(fingerprint, PENCIL_SPECTRUM, spectral_entry(small_rlc_ladder))
        blob = (
            store.root
            / "objects"
            / fingerprint[:2]
            / f"{fingerprint}.{PENCIL_SPECTRUM}.npz"
        )

        def flaky_load(*args, **kwargs):
            raise PermissionError("transient I/O failure")

        monkeypatch.setattr(np, "load", flaky_load)
        assert store.load(fingerprint, PENCIL_SPECTRUM) is None
        monkeypatch.undo()
        assert blob.exists()  # not quarantined
        assert store.counters()["corrupt"] == 0
        assert store.load(fingerprint, PENCIL_SPECTRUM) is not None

    def test_garbage_blob_is_quarantined(self, store):
        shard = store.root / "objects" / FP[:2]
        shard.mkdir(parents=True, exist_ok=True)
        blob = shard / f"{FP}.{PENCIL_SPECTRUM}.npz"
        blob.write_bytes(b"this is not a zip archive")
        assert store.load(FP, PENCIL_SPECTRUM) is None
        assert not blob.exists()

    def test_corrupt_index_is_rebuilt_from_scan(self, tmp_path, small_rlc_ladder):
        root = tmp_path / "store"
        first = DecompositionStore(root)
        fingerprint = fingerprint_system(small_rlc_ladder)
        first.put(fingerprint, PENCIL_SPECTRUM, spectral_entry(small_rlc_ladder))
        (root / "index.json").write_text("{not json", encoding="utf-8")
        reopened = DecompositionStore(root)
        assert len(reopened) == 1
        assert reopened.load(fingerprint, PENCIL_SPECTRUM) is not None

    def test_concurrent_writers_racing_on_one_key(self, store, small_rlc_ladder):
        fingerprint = fingerprint_system(small_rlc_ladder)
        entry = spectral_entry(small_rlc_ladder)
        errors = []

        def hammer():
            try:
                for _ in range(5):
                    store.put(fingerprint, PENCIL_SPECTRUM, entry)
                    assert store.load(fingerprint, PENCIL_SPECTRUM) is not None
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        tag, context = store.load(fingerprint, PENCIL_SPECTRUM)
        assert tag == "value" and context.is_regular

    def test_two_store_handles_race_on_one_root(self, tmp_path, small_rlc_ladder):
        # Emulates two *processes* publishing the same key: separate handles,
        # separate in-memory indexes, one directory.  Atomic renames keep
        # every observable state a complete blob.
        root = tmp_path / "store"
        left = DecompositionStore(root)
        right = DecompositionStore(root)
        fingerprint = fingerprint_system(small_rlc_ladder)
        entry = spectral_entry(small_rlc_ladder)
        left.put(fingerprint, PENCIL_SPECTRUM, entry)
        right.put(fingerprint, PENCIL_SPECTRUM, entry)
        # Each handle sees the blob even though the *other* wrote last.
        assert left.load(fingerprint, PENCIL_SPECTRUM) is not None
        assert right.load(fingerprint, PENCIL_SPECTRUM) is not None


class TestEviction:
    def _distinct_fingerprints(self, count):
        return [f"{i:02x}" + "00" * 31 for i in range(count)]

    def test_tiny_budget_evicts_lru(self, tmp_path, small_rlc_ladder):
        entry = spectral_entry(small_rlc_ladder)
        probe = DecompositionStore(tmp_path / "probe")
        probe.put(FP, PENCIL_SPECTRUM, entry)
        blob_size = probe.total_bytes
        # Budget fits ~2 blobs; inserting 4 must evict the least recently
        # used ones (but never the just-written entry).
        store = DecompositionStore(tmp_path / "store", size_budget=2 * blob_size)
        fingerprints = self._distinct_fingerprints(4)
        for fingerprint in fingerprints:
            store.put(fingerprint, PENCIL_SPECTRUM, entry)
        assert store.n_evictions >= 2
        assert store.total_bytes <= 2 * blob_size
        assert store.load(fingerprints[0], PENCIL_SPECTRUM) is None  # LRU gone
        assert store.load(fingerprints[-1], PENCIL_SPECTRUM) is not None

    def test_loads_refresh_recency(self, tmp_path, small_rlc_ladder):
        entry = spectral_entry(small_rlc_ladder)
        probe = DecompositionStore(tmp_path / "probe")
        probe.put(FP, PENCIL_SPECTRUM, entry)
        blob_size = probe.total_bytes
        store = DecompositionStore(tmp_path / "store", size_budget=2 * blob_size)
        first, second, third = self._distinct_fingerprints(3)
        store.put(first, PENCIL_SPECTRUM, entry)
        store.put(second, PENCIL_SPECTRUM, entry)
        store.load(first, PENCIL_SPECTRUM)  # touch: second is now the LRU
        store.put(third, PENCIL_SPECTRUM, entry)
        assert store.load(second, PENCIL_SPECTRUM) is None
        assert store.load(first, PENCIL_SPECTRUM) is not None

    def test_budget_never_evicts_below_one_entry(self, tmp_path, small_rlc_ladder):
        store = DecompositionStore(tmp_path / "store", size_budget=1)
        store.put(FP, PENCIL_SPECTRUM, spectral_entry(small_rlc_ladder))
        # The single (oversized) entry survives: the budget bounds growth,
        # it does not make the store refuse to be useful.
        assert store.load(FP, PENCIL_SPECTRUM) is not None


class TestJobRecords:
    def test_round_trip_and_ordering(self, store):
        store.save_job_record({"job_id": "job-b", "finished_at": 2.0})
        store.save_job_record({"job_id": "job-a", "finished_at": 1.0})
        records = store.load_job_records()
        assert [record["job_id"] for record in records] == ["job-a", "job-b"]

    def test_malformed_id_is_refused(self, store):
        with pytest.raises(StoreError):
            store.save_job_record({"job_id": "../evil"})

    def test_corrupt_record_is_skipped_and_removed(self, store):
        store.save_job_record({"job_id": "job-ok", "finished_at": 1.0})
        bad = store.root / "jobs" / "job-bad.json"
        bad.write_text("{truncated", encoding="utf-8")
        records = store.load_job_records()
        assert [record["job_id"] for record in records] == ["job-ok"]
        assert not bad.exists()

    def test_clear_removes_blobs_and_jobs(self, store, small_rlc_ladder):
        store.put(FP, PENCIL_SPECTRUM, spectral_entry(small_rlc_ladder))
        store.save_job_record({"job_id": "job-x"})
        store.clear()
        assert len(store) == 0
        assert store.load(FP, PENCIL_SPECTRUM) is None
        assert store.load_job_records() == []

    def test_index_survives_reopen(self, tmp_path, small_rlc_ladder):
        root = tmp_path / "store"
        first = DecompositionStore(root)
        fingerprint = fingerprint_system(small_rlc_ladder)
        first.put(fingerprint, PENCIL_SPECTRUM, spectral_entry(small_rlc_ladder))
        index = json.loads((root / "index.json").read_text(encoding="utf-8"))
        assert f"{fingerprint}:{PENCIL_SPECTRUM}" in index["entries"]
        reopened = DecompositionStore(root)
        assert len(reopened) == 1
