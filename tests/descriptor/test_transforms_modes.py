"""Tests for equivalence transforms, SVD coordinates and mode counting."""

import numpy as np
import pytest

from repro.descriptor import DescriptorSystem, count_modes, index_of_nilpotency
from repro.descriptor.transforms import (
    restricted_system_equivalence,
    strong_equivalence,
    svd_coordinate_form,
)
from repro.exceptions import SingularPencilError, StructureError


class TestRestrictedSystemEquivalence:
    def test_preserves_transfer_function(self, mixed_passive_system, rng):
        q, _ = np.linalg.qr(rng.standard_normal((4, 4)))
        z, _ = np.linalg.qr(rng.standard_normal((4, 4)))
        transformed = restricted_system_equivalence(mixed_passive_system, q, z)
        s0 = 0.8 + 1.7j
        np.testing.assert_allclose(
            transformed.evaluate(s0), mixed_passive_system.evaluate(s0), atol=1e-10
        )

    def test_preserves_mode_structure(self, mixed_passive_system, rng):
        q, _ = np.linalg.qr(rng.standard_normal((4, 4)))
        z, _ = np.linalg.qr(rng.standard_normal((4, 4)))
        transformed = restricted_system_equivalence(mixed_passive_system, q, z)
        before = count_modes(mixed_passive_system)
        after = count_modes(transformed)
        assert before.n_finite == after.n_finite
        assert before.n_impulsive == after.n_impulsive
        assert before.n_nondynamic == after.n_nondynamic

    def test_projection_reduces_order(self, mixed_passive_system):
        left = np.eye(4)[:, :3]
        right = np.eye(4)[:, :3]
        reduced = restricted_system_equivalence(mixed_passive_system, left, right)
        assert reduced.order == 3


class TestStrongEquivalence:
    def test_requires_annihilation_conditions(self, index1_passive_system):
        n = index1_passive_system.order
        bad_feedforward = np.ones((n, 1))
        with pytest.raises(StructureError):
            strong_equivalence(
                index1_passive_system,
                np.eye(n),
                np.eye(n),
                input_feedforward=bad_feedforward,
            )

    def test_preserves_transfer_with_valid_feedforward(self, index1_passive_system):
        # E = diag(1, 0): feedforward supported on the kernel of E is allowed.
        n = index1_passive_system.order
        r_ff = np.array([[0.0], [0.5]])
        transformed = strong_equivalence(
            index1_passive_system, np.eye(n), np.eye(n), input_feedforward=r_ff
        )
        s0 = 1.1 + 0.3j
        np.testing.assert_allclose(
            transformed.evaluate(s0), index1_passive_system.evaluate(s0), atol=1e-12
        )

    def test_feedthrough_can_change_under_strong_equivalence(self, index1_passive_system):
        n = index1_passive_system.order
        r_ff = np.array([[0.0], [0.5]])
        transformed = strong_equivalence(
            index1_passive_system, np.eye(n), np.eye(n), input_feedforward=r_ff
        )
        assert not np.allclose(transformed.d, index1_passive_system.d)


class TestSvdCoordinates:
    def test_e_becomes_diagonal_with_trailing_zeros(self, small_rlc_ladder):
        form = svd_coordinate_form(small_rlc_ladder)
        r = form.rank
        e_new = form.system.e
        np.testing.assert_allclose(e_new[r:, :], 0.0, atol=1e-10)
        np.testing.assert_allclose(e_new[:, r:], 0.0, atol=1e-10)
        assert np.linalg.matrix_rank(e_new[:r, :r]) == r

    def test_transfer_preserved(self, small_impulsive_ladder):
        form = svd_coordinate_form(small_impulsive_ladder)
        s0 = 0.2 + 1.1j
        np.testing.assert_allclose(
            form.system.evaluate(s0), small_impulsive_ladder.evaluate(s0), atol=1e-9
        )

    def test_blocks_shapes(self, index1_passive_system):
        form = svd_coordinate_form(index1_passive_system)
        a11, a12, a21, a22, b1, b2, c1, c2 = form.blocks
        r = form.rank
        n = index1_passive_system.order
        assert a11.shape == (r, r)
        assert a22.shape == (n - r, n - r)
        assert b2.shape[0] == n - r
        assert c2.shape[1] == n - r


class TestModeCounting:
    def test_mixed_system_counts(self, mixed_passive_system):
        modes = count_modes(mixed_passive_system)
        assert modes.order == 4
        assert modes.n_finite == 1
        assert modes.n_impulsive == 1
        assert modes.n_nondynamic == 2
        assert not modes.is_impulse_free
        assert modes.is_stable

    def test_regular_system_counts(self):
        sys = DescriptorSystem(np.eye(3), -np.eye(3), np.ones((3, 1)), np.ones((1, 3)))
        modes = count_modes(sys)
        assert modes.n_finite == 3
        assert modes.n_impulsive == 0
        assert modes.n_nondynamic == 0

    def test_singular_pencil_rejected(self):
        sys = DescriptorSystem(
            np.diag([1.0, 0.0]), np.diag([1.0, 0.0]), np.ones((2, 1)), np.ones((1, 2))
        )
        with pytest.raises(SingularPencilError):
            count_modes(sys)

    def test_sm1_system_counts(self, sm1_system):
        modes = count_modes(sm1_system)
        assert modes.n_finite == 0
        assert modes.n_nondynamic == 1
        assert modes.n_impulsive == 1


class TestIndex:
    def test_index_of_regular_system_is_zero(self):
        sys = DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 1)), np.ones((1, 2)))
        assert index_of_nilpotency(sys) == 0

    def test_index_one_for_impulse_free_singular_system(self, index1_passive_system):
        assert index_of_nilpotency(index1_passive_system) == 1

    def test_index_two_for_impulsive_system(self, sm1_system, mixed_passive_system):
        assert index_of_nilpotency(sm1_system) == 2
        assert index_of_nilpotency(mixed_passive_system) == 2

    def test_index_three_for_s_squared(self, s_squared_system):
        assert index_of_nilpotency(s_squared_system) == 3

    def test_circuit_indices(self, small_rc_line, small_impulsive_ladder):
        assert index_of_nilpotency(small_rc_line) == 1
        assert index_of_nilpotency(small_impulsive_ladder) == 2
