"""Tests for the DescriptorSystem / StateSpace containers."""

import numpy as np
import pytest

from repro.descriptor import DescriptorSystem, StateSpace
from repro.exceptions import (
    DimensionError,
    NotImplementedForSystemError,
    SingularPencilError,
)


class TestConstruction:
    def test_default_feedthrough_is_zero(self):
        sys = DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 1)), np.ones((1, 2)))
        np.testing.assert_allclose(sys.d, np.zeros((1, 1)))

    def test_shape_validation(self):
        with pytest.raises(DimensionError):
            DescriptorSystem(np.eye(2), -np.eye(3), np.ones((2, 1)), np.ones((1, 2)))
        with pytest.raises(DimensionError):
            DescriptorSystem(np.eye(2), -np.eye(2), np.ones((3, 1)), np.ones((1, 2)))
        with pytest.raises(DimensionError):
            DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 1)), np.ones((1, 3)))
        with pytest.raises(DimensionError):
            DescriptorSystem(
                np.eye(2), -np.eye(2), np.ones((2, 1)), np.ones((1, 2)), np.ones((2, 2))
            )

    def test_shape_properties(self, mixed_passive_system):
        sys = mixed_passive_system
        assert sys.order == 4
        assert sys.n_inputs == 1
        assert sys.n_outputs == 1
        assert sys.is_square_io

    def test_immutability_against_source_mutation(self):
        e = np.eye(2)
        sys = DescriptorSystem(e, -np.eye(2), np.ones((2, 1)), np.ones((1, 2)))
        e[0, 0] = 99.0
        assert sys.e[0, 0] != 99.0 or sys.e is not e  # stored copy is float cast


class TestPencilProperties:
    def test_rank_and_regularity(self, mixed_passive_system):
        assert mixed_passive_system.rank_e() == 2
        assert mixed_passive_system.is_regular()

    def test_dynamic_degree(self, mixed_passive_system, index1_passive_system):
        assert mixed_passive_system.dynamic_degree() == 1
        assert index1_passive_system.dynamic_degree() == 1

    def test_stability_check(self, mixed_passive_system):
        assert mixed_passive_system.is_stable()
        unstable = DescriptorSystem(
            np.eye(1), np.array([[2.0]]), np.ones((1, 1)), np.ones((1, 1))
        )
        assert not unstable.is_stable()

    def test_admissibility(self, index1_passive_system, mixed_passive_system):
        assert index1_passive_system.is_admissible()
        assert not mixed_passive_system.is_admissible()  # impulsive modes present


class TestTransferFunction:
    def test_evaluate_against_analytic(self, index1_passive_system):
        s0 = 0.3 + 2.0j
        expected = 1.0 / (s0 + 1.0) + 1.0
        np.testing.assert_allclose(index1_passive_system.evaluate(s0), [[expected]])

    def test_evaluate_at_pole_raises(self, index1_passive_system):
        with pytest.raises(SingularPencilError):
            index1_passive_system.evaluate(-1.0)

    def test_frequency_response_shape(self, mixed_passive_system):
        response = mixed_passive_system.frequency_response([0.1, 1.0, 10.0])
        assert response.shape == (3, 1, 1)

    def test_parallel_connection_adds_transfer_functions(
        self, index1_passive_system, mixed_passive_system
    ):
        total = index1_passive_system + mixed_passive_system
        s0 = 0.7 + 0.2j
        np.testing.assert_allclose(
            total.evaluate(s0),
            index1_passive_system.evaluate(s0) + mixed_passive_system.evaluate(s0),
            atol=1e-12,
        )

    def test_negation_and_scaling(self, index1_passive_system):
        s0 = 1.0 + 1.0j
        np.testing.assert_allclose(
            (-index1_passive_system).evaluate(s0),
            -index1_passive_system.evaluate(s0),
        )
        np.testing.assert_allclose(
            index1_passive_system.scaled(3.0).evaluate(s0),
            3.0 * index1_passive_system.evaluate(s0),
        )

    def test_transpose_transposes_transfer(self, small_rlc_ladder):
        s0 = 0.5 + 1.5j
        np.testing.assert_allclose(
            small_rlc_ladder.transpose().evaluate(s0),
            small_rlc_ladder.evaluate(s0).T,
            atol=1e-10,
        )


class TestConversions:
    def test_to_state_space_roundtrip(self):
        a = np.array([[-1.0, 0.5], [0.0, -2.0]])
        sys = DescriptorSystem(
            2.0 * np.eye(2), 2.0 * a, np.ones((2, 1)), np.ones((1, 2)), np.ones((1, 1))
        )
        ss = sys.to_state_space()
        np.testing.assert_allclose(ss.a, a, atol=1e-12)
        s0 = 1.3 + 0.1j
        np.testing.assert_allclose(ss.evaluate(s0), sys.evaluate(s0), atol=1e-12)

    def test_to_state_space_rejects_singular_e(self, index1_passive_system):
        with pytest.raises(NotImplementedForSystemError):
            index1_passive_system.to_state_space()

    def test_state_space_to_descriptor_roundtrip(self, rng):
        ss = StateSpace(
            -np.eye(3), rng.standard_normal((3, 2)), rng.standard_normal((2, 3)), np.eye(2)
        )
        ds = ss.to_descriptor()
        s0 = 0.2 + 0.9j
        np.testing.assert_allclose(ds.evaluate(s0), ss.evaluate(s0), atol=1e-12)


class TestStateSpace:
    def test_poles_and_stability(self, rng):
        ss = StateSpace(np.diag([-1.0, -2.0]), np.ones((2, 1)), np.ones((1, 2)), np.zeros((1, 1)))
        np.testing.assert_allclose(np.sort(ss.poles().real), [-2.0, -1.0])
        assert ss.is_stable()
        assert not StateSpace(np.eye(1), np.ones((1, 1)), np.ones((1, 1)), np.zeros((1, 1))).is_stable()

    def test_transpose(self, rng):
        ss = StateSpace(
            -np.eye(3) + 0.1 * rng.standard_normal((3, 3)),
            rng.standard_normal((3, 2)),
            rng.standard_normal((1, 3)),
            rng.standard_normal((1, 2)),
        )
        s0 = 0.4 + 0.6j
        np.testing.assert_allclose(
            ss.transpose().evaluate(s0), ss.evaluate(s0).T, atol=1e-12
        )

    def test_empty_state_space(self):
        ss = StateSpace(np.zeros((0, 0)), np.zeros((0, 2)), np.zeros((2, 0)), np.eye(2))
        np.testing.assert_allclose(ss.evaluate(1j), np.eye(2))
        assert ss.is_stable()


class TestSparseDescriptorSystem:
    @pytest.fixture
    def sparse_pair(self):
        import scipy.sparse

        e = np.diag([1.0, 0.0, 2.0])
        a = np.array([[-1.0, 0.5, 0.0], [0.0, -2.0, 0.0], [0.3, 0.0, -1.5]])
        b = np.array([[1.0], [0.0], [1.0]])
        dense = DescriptorSystem(e, a, b, b.T)
        sparse = DescriptorSystem(
            scipy.sparse.csr_matrix(e), scipy.sparse.csr_matrix(a), b, b.T
        )
        return dense, sparse

    def test_sparse_inputs_accepted_and_flagged(self, sparse_pair):
        dense, sparse = sparse_pair
        assert sparse.is_sparse
        assert not dense.is_sparse
        assert sparse.order == dense.order
        assert sparse.nnz == np.count_nonzero(dense.e) + np.count_nonzero(dense.a)

    def test_lazy_densification(self, sparse_pair):
        dense, sparse = sparse_pair
        assert "e" not in sparse.__dict__  # not densified yet
        np.testing.assert_allclose(sparse.e, dense.e)
        assert "e" in sparse.__dict__  # cached after first touch
        assert sparse.is_sparse  # the sparse stamps remain authoritative

    def test_dense_and_sparse_views_agree_everywhere(self, sparse_pair):
        dense, sparse = sparse_pair
        s0 = 0.7 + 1.3j
        np.testing.assert_allclose(sparse.evaluate(s0), dense.evaluate(s0), atol=1e-12)
        assert sparse.rank_e() == dense.rank_e()
        assert sparse.is_regular() == dense.is_regular()

    def test_sparse_b_c_d_densified_eagerly(self):
        import scipy.sparse

        e = scipy.sparse.identity(2, format="csr")
        a = scipy.sparse.csr_matrix(-np.eye(2))
        b = scipy.sparse.csr_matrix(np.ones((2, 1)))
        system = DescriptorSystem(e, a, b, b.T)
        assert isinstance(system.b, np.ndarray)
        assert isinstance(system.c, np.ndarray)

    def test_sparse_shape_validation(self):
        import scipy.sparse

        rect = scipy.sparse.csr_matrix(np.ones((2, 3)))
        with pytest.raises(DimensionError):
            DescriptorSystem(rect, rect, np.ones((2, 1)), np.ones((1, 2)))
        e = scipy.sparse.identity(2, format="csr")
        a = scipy.sparse.identity(3, format="csr")
        with pytest.raises(DimensionError):
            DescriptorSystem(e, -a, np.ones((2, 1)), np.ones((1, 2)))

    def test_pickle_preserves_sparse_backing(self, sparse_pair):
        import pickle

        _dense, sparse = sparse_pair
        clone = pickle.loads(pickle.dumps(sparse))
        assert clone.is_sparse
        assert "e" not in clone.__dict__
        np.testing.assert_allclose(clone.e, sparse.e)

    def test_sparse_view_of_dense_system(self, sparse_pair):
        import scipy.sparse

        dense, _sparse = sparse_pair
        view = dense.sparse_e
        assert scipy.sparse.issparse(view)
        np.testing.assert_allclose(view.toarray(), dense.e)

    def test_density_of_empty_system(self):
        empty = DescriptorSystem(
            np.zeros((0, 0)), np.zeros((0, 0)), np.zeros((0, 1)), np.zeros((1, 0))
        )
        assert empty.density == 0.0
