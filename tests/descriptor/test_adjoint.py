"""Tests for the adjoint system and the SHH realization of Phi = G + G~."""

import numpy as np
import pytest

from repro.descriptor import DescriptorSystem, adjoint_system, build_phi_realization
from repro.exceptions import DimensionError
from repro.linalg.hamiltonian import is_hamiltonian, is_skew_hamiltonian


class TestAdjoint:
    @pytest.mark.parametrize("omega", [0.0, 0.3, 2.7, 15.0])
    def test_adjoint_equals_conjugate_transpose_on_axis(
        self, small_rlc_ladder, omega
    ):
        adj = adjoint_system(small_rlc_ladder)
        value = small_rlc_ladder.evaluate(1j * omega)
        np.testing.assert_allclose(adj.evaluate(1j * omega), value.conj().T, atol=1e-9)

    def test_adjoint_at_general_point(self, mixed_passive_system):
        s0 = 0.8 + 1.2j
        adj = adjoint_system(mixed_passive_system)
        np.testing.assert_allclose(
            adj.evaluate(s0), mixed_passive_system.evaluate(-s0).T, atol=1e-10
        )

    def test_adjoint_is_involutive_on_transfer(self, small_impulsive_ladder):
        s0 = 0.5 + 0.4j
        twice = adjoint_system(adjoint_system(small_impulsive_ladder))
        np.testing.assert_allclose(
            twice.evaluate(s0), small_impulsive_ladder.evaluate(s0), atol=1e-9
        )


class TestPhiRealization:
    def test_shh_structure(self, small_impulsive_ladder):
        phi = build_phi_realization(small_impulsive_ladder)
        assert phi.is_shh()
        assert is_skew_hamiltonian(phi.e_phi)
        assert is_hamiltonian(phi.a_phi)
        assert phi.order == 2 * small_impulsive_ladder.order

    def test_transfer_is_g_plus_g_tilde(self, mixed_passive_system):
        phi = build_phi_realization(mixed_passive_system)
        s0 = 1.4 + 0.9j
        expected = mixed_passive_system.evaluate(s0) + mixed_passive_system.evaluate(-s0).T
        np.testing.assert_allclose(phi.evaluate(s0), expected, atol=1e-9)

    def test_phi_is_hermitian_on_imaginary_axis(self, small_rlc_ladder):
        phi = build_phi_realization(small_rlc_ladder)
        value = phi.evaluate(2.0j)
        np.testing.assert_allclose(value, value.conj().T, atol=1e-9)

    def test_b_phi_is_j_times_c_phi_transposed(self, sm1_system):
        phi = build_phi_realization(sm1_system)
        np.testing.assert_allclose(phi.b_phi, phi.j @ phi.c_phi.T)

    def test_d_phi_is_symmetric(self, rng):
        sys = DescriptorSystem(
            np.eye(3),
            -np.eye(3),
            rng.standard_normal((3, 2)),
            rng.standard_normal((2, 3)),
            rng.standard_normal((2, 2)),
        )
        phi = build_phi_realization(sys)
        np.testing.assert_allclose(phi.d_phi, phi.d_phi.T)

    def test_nonsquare_system_rejected(self, rng):
        sys = DescriptorSystem(
            np.eye(3), -np.eye(3), rng.standard_normal((3, 1)), rng.standard_normal((2, 3))
        )
        with pytest.raises(DimensionError):
            build_phi_realization(sys)

    def test_to_descriptor_roundtrip(self, index1_passive_system):
        phi = build_phi_realization(index1_passive_system)
        ds = phi.to_descriptor()
        assert ds.order == phi.order
        s0 = 0.2 + 0.6j
        np.testing.assert_allclose(ds.evaluate(s0), phi.evaluate(s0))
