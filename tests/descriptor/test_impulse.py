"""Tests for the impulse controllability/observability characterizations."""

import numpy as np
import pytest

from repro.descriptor import DescriptorSystem
from repro.descriptor.impulse import (
    impulse_uncontrollable_directions,
    impulse_unobservable_directions,
    is_impulse_controllable,
    is_impulse_free,
    is_impulse_observable,
    preimage_of_range,
)


def _impulsive_unobservable_system():
    """Grade-2 chain whose output matrix ignores the chain entirely."""
    e = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 1.0], [0.0, 0.0, 0.0]])
    a = np.diag([-1.0, 1.0, 1.0])
    b = np.array([[1.0], [0.0], [1.0]])
    c = np.array([[1.0, 0.0, 0.0]])  # does not see the impulsive chain
    return DescriptorSystem(e, a, b, c)


class TestImpulseFree:
    def test_regular_e_is_impulse_free(self):
        sys = DescriptorSystem(np.eye(2), -np.eye(2), np.ones((2, 1)), np.ones((1, 2)))
        assert is_impulse_free(sys)

    def test_index1_system_is_impulse_free(self, index1_passive_system):
        assert is_impulse_free(index1_passive_system)

    def test_impulsive_system_is_not(self, sm1_system, mixed_passive_system):
        assert not is_impulse_free(sm1_system)
        assert not is_impulse_free(mixed_passive_system)

    def test_consistency_with_mode_count(self, small_impulsive_ladder, small_rc_line):
        assert not is_impulse_free(small_impulsive_ladder)
        assert is_impulse_free(small_rc_line)


class TestObservabilityControllability:
    def test_minimal_impulsive_system_is_impulse_observable(self, sm1_system):
        # The realization of s*m is minimal: its impulsive mode is observable
        # and controllable.
        assert is_impulse_observable(sm1_system)
        assert is_impulse_controllable(sm1_system)
        assert impulse_unobservable_directions(sm1_system).shape[1] == 0

    def test_unobservable_chain_detected(self):
        sys = _impulsive_unobservable_system()
        assert not is_impulse_observable(sys)
        directions = impulse_unobservable_directions(sys)
        assert directions.shape[1] == 1
        # The direction lies in Ker E and Ker C and maps into Im E.
        assert np.allclose(sys.e @ directions, 0.0, atol=1e-12)
        assert np.allclose(sys.c @ directions, 0.0, atol=1e-12)

    def test_dual_uncontrollable_chain_detected(self):
        sys = _impulsive_unobservable_system().transpose()
        assert not is_impulse_controllable(sys)
        directions = impulse_uncontrollable_directions(sys)
        assert directions.shape[1] == 1

    def test_impulse_free_system_has_no_directions(self, index1_passive_system):
        assert impulse_unobservable_directions(index1_passive_system).shape[1] == 0
        assert impulse_uncontrollable_directions(index1_passive_system).shape[1] == 0

    def test_circuit_models_are_impulse_controllable_and_observable(
        self, small_impulsive_ladder
    ):
        # MNA impedance models driven/observed at ports with a series inductor
        # keep their impulsive modes controllable and observable.
        assert is_impulse_observable(small_impulsive_ladder) == is_impulse_controllable(
            small_impulsive_ladder
        )


class TestPreimage:
    def test_preimage_of_full_range_is_everything(self, rng):
        a = rng.standard_normal((4, 4))
        e = np.eye(4)
        assert preimage_of_range(a, e).shape[1] == 4

    def test_preimage_matches_manual_computation(self):
        e = np.diag([1.0, 0.0])
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        # A v in Im E = span{e1}  <=>  v_1 = 0  => preimage = span{e2}.
        basis = preimage_of_range(a, e)
        assert basis.shape[1] == 1
        assert abs(abs(basis[1, 0]) - 1.0) < 1e-12
