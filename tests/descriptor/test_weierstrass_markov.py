"""Tests for spectral separation, Weierstrass form, Markov parameters and the
additive decomposition."""

import numpy as np
import pytest

from repro.descriptor import (
    DescriptorSystem,
    additive_decomposition,
    first_markov_parameter,
    highest_nonzero_markov_index,
    markov_parameters,
    separate_finite_infinite,
    weierstrass_form,
    zeroth_markov_parameter,
)
from repro.exceptions import SingularPencilError


class TestSeparation:
    def test_dimensions(self, mixed_passive_system):
        sep = separate_finite_infinite(mixed_passive_system)
        assert sep.n_finite == 1
        assert sep.finite_system.order == 1
        assert sep.infinite_system.order == 3
        # Finite block has nonsingular E; infinite block has nonsingular A.
        assert np.linalg.matrix_rank(sep.finite_system.e) == 1
        assert np.linalg.matrix_rank(sep.infinite_system.a) == 3

    def test_nilpotency(self, mixed_passive_system, s_squared_system):
        sep = separate_finite_infinite(mixed_passive_system)
        n = sep.nilpotent_matrix
        assert np.allclose(np.linalg.matrix_power(n, 2), 0.0, atol=1e-10)
        sep2 = separate_finite_infinite(s_squared_system)
        assert np.allclose(np.linalg.matrix_power(sep2.nilpotent_matrix, 3), 0.0, atol=1e-10)
        assert not np.allclose(
            np.linalg.matrix_power(sep2.nilpotent_matrix, 2), 0.0, atol=1e-10
        )

    def test_additivity_of_transfer_functions(self, mixed_passive_system):
        sep = separate_finite_infinite(mixed_passive_system)
        s0 = 0.9 + 0.5j
        total = (
            sep.finite_system.evaluate(s0)
            + sep.infinite_system.evaluate(s0)
            + sep.feedthrough
        )
        np.testing.assert_allclose(total, mixed_passive_system.evaluate(s0), atol=1e-9)

    def test_circuit_model_separation(self, small_impulsive_ladder):
        sep = separate_finite_infinite(small_impulsive_ladder)
        s0 = 0.4 + 2.2j
        total = (
            sep.finite_system.evaluate(s0)
            + sep.infinite_system.evaluate(s0)
            + sep.feedthrough
        )
        np.testing.assert_allclose(total, small_impulsive_ladder.evaluate(s0), atol=1e-8)

    def test_proper_state_space(self, mixed_passive_system):
        sep = separate_finite_infinite(mixed_passive_system)
        proper = sep.proper_state_space()
        s0 = 1.0 + 3.0j
        # Proper part of 1/(s+1) + s + 1 is 1/(s+1) + 1.
        np.testing.assert_allclose(proper.evaluate(s0), [[1.0 / (s0 + 1) + 1.0]], atol=1e-10)

    def test_singular_pencil_rejected(self):
        sys = DescriptorSystem(
            np.diag([1.0, 0.0]), np.diag([1.0, 0.0]), np.ones((2, 1)), np.ones((1, 2))
        )
        with pytest.raises(SingularPencilError):
            separate_finite_infinite(sys)


class TestMarkovParameters:
    def test_mixed_system_parameters(self, mixed_passive_system):
        m = markov_parameters(mixed_passive_system, 3)
        np.testing.assert_allclose(m[0], [[1.0]], atol=1e-10)  # M0 = 1
        np.testing.assert_allclose(m[1], [[1.0]], atol=1e-10)  # M1 = 1 (the s term)
        np.testing.assert_allclose(m[2], [[0.0]], atol=1e-10)

    def test_zeroth_and_first_helpers(self, mixed_passive_system):
        np.testing.assert_allclose(zeroth_markov_parameter(mixed_passive_system), [[1.0]], atol=1e-10)
        np.testing.assert_allclose(first_markov_parameter(mixed_passive_system), [[1.0]], atol=1e-10)

    def test_s_squared_has_m2(self, s_squared_system):
        m = markov_parameters(s_squared_system, 4)
        np.testing.assert_allclose(m[2], [[1.0]], atol=1e-10)
        assert highest_nonzero_markov_index(s_squared_system) == 2

    def test_impulse_free_system_has_no_impulsive_markov(self, index1_passive_system):
        assert highest_nonzero_markov_index(index1_passive_system) == 0
        np.testing.assert_allclose(first_markov_parameter(index1_passive_system), 0.0, atol=1e-10)

    def test_port_inductor_sets_m1_to_inductance(self, small_impulsive_ladder):
        m1 = first_markov_parameter(small_impulsive_ladder)
        # The series port inductor of 0.5 H dominates the s-term of Z(s).
        np.testing.assert_allclose(m1, [[0.5]], atol=1e-8)


class TestAdditiveDecomposition:
    def test_reconstruction(self, mixed_passive_system):
        dec = additive_decomposition(mixed_passive_system)
        s0 = 0.6 + 1.9j
        np.testing.assert_allclose(
            dec.evaluate(s0), mixed_passive_system.evaluate(s0), atol=1e-9
        )

    def test_strictly_proper_part_has_no_feedthrough(self, mixed_passive_system):
        dec = additive_decomposition(mixed_passive_system)
        np.testing.assert_allclose(dec.strictly_proper.d, 0.0)
        assert dec.strictly_proper.order == 1

    def test_m1_accessor(self, mixed_passive_system, index1_passive_system):
        np.testing.assert_allclose(
            additive_decomposition(mixed_passive_system).m1, [[1.0]], atol=1e-10
        )
        np.testing.assert_allclose(
            additive_decomposition(index1_passive_system).m1, [[0.0]], atol=1e-12
        )

    def test_circuit_model_decomposition(self, small_rlc_ladder):
        dec = additive_decomposition(small_rlc_ladder)
        assert not dec.impulsive_markov  # index-1 ladder: polynomial part is constant
        s0 = 2.0j
        np.testing.assert_allclose(
            dec.evaluate(s0), small_rlc_ladder.evaluate(s0), atol=1e-8
        )


class TestWeierstrassForm:
    def test_canonical_blocks(self, mixed_passive_system):
        form = weierstrass_form(mixed_passive_system)
        q = form.a_p.shape[0]
        assert q == 1
        # E -> diag(I, N), A -> diag(A_p, I).
        e_can = form.left @ mixed_passive_system.e @ form.right
        a_can = form.left @ mixed_passive_system.a @ form.right
        np.testing.assert_allclose(e_can[:q, :q], np.eye(q), atol=1e-9)
        np.testing.assert_allclose(a_can[q:, q:], np.eye(3), atol=1e-9)
        np.testing.assert_allclose(e_can[:q, q:], 0.0, atol=1e-9)
        np.testing.assert_allclose(e_can[q:, :q], 0.0, atol=1e-9)

    def test_nilpotent_block(self, mixed_passive_system):
        form = weierstrass_form(mixed_passive_system)
        assert np.allclose(np.linalg.matrix_power(form.nilpotent, 2), 0.0, atol=1e-9)

    def test_conditioning_reported(self, small_impulsive_ladder):
        form = weierstrass_form(small_impulsive_ladder)
        assert form.conditioning >= 1.0
