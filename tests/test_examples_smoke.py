"""Smoke tests: the example scripts import and their main() functions run.

The two reproduction scripts (Table 1 / Figure 2) are exercised only through
their argument parsers here — their full runs are covered by the benchmark
suite and would dominate the unit-test runtime.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    ["quickstart", "proper_part_extraction"],
)
def test_fast_examples_run_to_completion(name, capsys):
    module = _load(name)
    module.main()
    output = capsys.readouterr().out
    assert "PASSIVE" in output or "passivity" in output.lower()


def test_reproduction_scripts_expose_cli():
    table1 = _load("reproduce_table1")
    figure2 = _load("reproduce_figure2")
    # Argument parsing errors exit with code 2; a bogus flag must be rejected.
    with pytest.raises(SystemExit):
        table1.main(["--bogus-flag"])
    with pytest.raises(SystemExit):
        figure2.main(["--bogus-flag"])


def test_macromodel_example_importable():
    module = _load("interconnect_macromodel_check")
    assert callable(module.main)


def test_enforcement_example_importable():
    module = _load("passivity_enforcement_and_mor")
    assert callable(module.main)
