"""Tests for the affine LMI blocks and the phase-I barrier solver."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, DimensionError
from repro.sdp import AffineMatrixBlock, solve_phase_one, symmetric_basis_matrices


class TestAffineMatrixBlock:
    def test_from_matrices_and_evaluate(self):
        constant = np.eye(2)
        a1 = np.array([[0.0, 1.0], [1.0, 0.0]])
        a2 = np.diag([1.0, -1.0])
        block = AffineMatrixBlock.from_matrices(constant, [a1, a2])
        value = block.evaluate(np.array([2.0, 3.0]), shift=0.5)
        expected = constant + 2.0 * a1 + 3.0 * a2 + 0.5 * np.eye(2)
        np.testing.assert_allclose(value, expected)

    def test_constant_is_symmetrized(self):
        block = AffineMatrixBlock.from_matrices(np.array([[1.0, 2.0], [0.0, 1.0]]), [])
        np.testing.assert_allclose(block.constant, block.constant.T)

    def test_shape_validation(self):
        with pytest.raises(DimensionError):
            AffineMatrixBlock(constant=np.ones((2, 3)), coefficients=np.zeros((6, 1)))
        with pytest.raises(DimensionError):
            AffineMatrixBlock(constant=np.eye(2), coefficients=np.zeros((3, 1)))

    def test_symmetric_basis_count(self):
        basis = symmetric_basis_matrices(4)
        assert len(basis) == 10
        for matrix in basis:
            np.testing.assert_allclose(matrix, matrix.T)


class TestPhaseOneSolver:
    def test_trivially_feasible_problem(self):
        # M(y) = I + y * E11 is PSD at y = 0 already.
        block = AffineMatrixBlock.from_matrices(np.eye(2), [np.diag([1.0, 0.0])])
        result = solve_phase_one([block])
        assert result.feasible
        assert result.optimal_t <= 1e-6

    def test_strictly_feasible_problem_found_by_moving_y(self):
        # M(y) = diag(y - 1, 1): feasible only for y >= 1.
        block = AffineMatrixBlock.from_matrices(
            np.diag([-1.0, 1.0]), [np.diag([1.0, 0.0])]
        )
        result = solve_phase_one([block])
        assert result.feasible

    def test_infeasible_problem(self):
        # Two blocks requiring y >= 1 and -y >= 1 simultaneously: infeasible,
        # the best achievable t is 1 (at y = 0).
        block_up = AffineMatrixBlock.from_matrices(np.array([[-1.0]]), [np.array([[1.0]])])
        block_down = AffineMatrixBlock.from_matrices(np.array([[-1.0]]), [np.array([[-1.0]])])
        result = solve_phase_one([block_up, block_down])
        assert not result.feasible
        assert result.optimal_t > 0.5

    def test_marginally_feasible_problem(self):
        # M(y) = [[y, 0], [0, -y]] is PSD only at y = 0 where it is singular:
        # the optimum t* is 0, reported feasible within tolerance.
        block = AffineMatrixBlock.from_matrices(
            np.zeros((2, 2)), [np.diag([1.0, -1.0])]
        )
        result = solve_phase_one([block])
        assert result.feasible
        assert abs(result.optimal_t) < 1e-4

    def test_solver_requires_blocks(self):
        with pytest.raises(ConvergenceError):
            solve_phase_one([])

    def test_mismatched_variable_counts_rejected(self):
        block_a = AffineMatrixBlock.from_matrices(np.eye(2), [np.eye(2)])
        block_b = AffineMatrixBlock.from_matrices(np.eye(2), [np.eye(2), np.eye(2)])
        with pytest.raises(ConvergenceError):
            solve_phase_one([block_a, block_b])

    def test_multivariable_feasibility(self, rng):
        # Random diagonally-dominant feasible problem in 5 variables.
        dimension = 4
        matrices = [np.diag(rng.random(dimension)) for _ in range(5)]
        constant = -0.5 * np.eye(dimension)
        block = AffineMatrixBlock.from_matrices(constant, matrices)
        result = solve_phase_one([block])
        assert result.feasible

    def test_newton_step_budget_respected(self):
        block = AffineMatrixBlock.from_matrices(np.eye(3), [np.diag([1.0, 0.0, 0.0])])
        result = solve_phase_one([block], max_total_newton=3)
        assert result.n_newton_steps <= 3
