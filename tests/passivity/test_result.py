"""Tests for the PassivityReport / TestStep containers."""

from repro.passivity import PassivityReport
from repro.passivity.result import TestStep


class TestReportApi:
    def test_add_step_appends_and_returns(self):
        report = PassivityReport(is_passive=False, method="shh")
        step = report.add_step("check", "a decision step", passed=True, value=3)
        assert isinstance(step, TestStep)
        assert report.steps[-1] is step
        assert step.details["value"] == 3

    def test_step_names_property(self):
        report = PassivityReport(is_passive=True, method="lmi")
        report.add_step("first", "one")
        report.add_step("second", "two", passed=False)
        assert report.step_names == ["first", "second"]

    def test_summary_mentions_failures(self):
        report = PassivityReport(
            is_passive=False, method="shh", failure_reason="because"
        )
        report.add_step("bad_step", "went wrong", passed=False)
        text = report.summary()
        assert "because" in text
        assert "FAIL" in text
        assert "bad_step" in text

    def test_summary_for_passing_run(self):
        report = PassivityReport(is_passive=True, method="weierstrass")
        report.add_step("computational", "no verdict attached")
        text = report.summary()
        assert "True" in text
        assert "weierstrass" in text

    def test_default_fields(self):
        report = PassivityReport(is_passive=True, method="gare")
        assert report.steps == []
        assert report.diagnostics == {}
        assert report.elapsed_seconds == 0.0
        assert report.failure_reason is None
