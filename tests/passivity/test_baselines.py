"""Tests for the baseline passivity tests: LMI, Weierstrass, GARE, sampling."""

import numpy as np
import pytest

from repro.circuits import (
    feedthrough_perturbation,
    impulsive_rlc_ladder,
    random_passive_descriptor,
    rc_line,
    rlc_ladder,
)
from repro.descriptor import DescriptorSystem
from repro.passivity import (
    gare_passivity_test,
    lmi_passivity_test,
    sampling_passivity_check,
    weierstrass_passivity_test,
)


class TestLmiTest:
    def test_passive_system_with_definite_feedthrough(self):
        system = random_passive_descriptor(8, n_ports=2, seed=7, feedthrough_scale=1.0)
        report = lmi_passivity_test(system)
        assert report.is_passive
        assert report.diagnostics["phase_one_t"] < 1e-6

    def test_nonpassive_system_rejected(self):
        system = random_passive_descriptor(8, n_ports=2, seed=7, feedthrough_scale=1.0)
        bad = feedthrough_perturbation(system, 10.0)
        report = lmi_passivity_test(bad)
        assert not report.is_passive
        assert report.diagnostics["phase_one_t"] > 1e-3

    def test_mna_model_with_zero_feedthrough(self):
        # D = 0 makes the LMI only non-strictly feasible; the phase-I optimum
        # approaches 0 from above and the verdict is still "passive".
        report = lmi_passivity_test(rlc_ladder(3).system)
        assert report.is_passive

    def test_order_limit_skips(self):
        system = rlc_ladder(10).system
        report = lmi_passivity_test(system, order_limit=10)
        assert not report.is_passive
        assert "order" in report.failure_reason
        assert report.elapsed_seconds < 0.5

    def test_small_nonpassive_proper_system(self, nonpassive_proper_system):
        report = lmi_passivity_test(nonpassive_proper_system)
        assert not report.is_passive

    def test_report_counts_newton_steps(self):
        system = random_passive_descriptor(6, seed=1, feedthrough_scale=1.0)
        report = lmi_passivity_test(system)
        assert report.diagnostics["newton_steps"] >= 1


class TestWeierstrassTest:
    def test_passive_circuit_models(self):
        for system in (rc_line(5).system, rlc_ladder(4).system,
                       impulsive_rlc_ladder(4, 1).system):
            report = weierstrass_passivity_test(system)
            assert report.is_passive, report.failure_reason
            assert report.diagnostics["transformation_conditioning"] >= 1.0

    def test_m1_reported(self, small_impulsive_ladder):
        report = weierstrass_passivity_test(small_impulsive_ladder)
        np.testing.assert_allclose(report.diagnostics["m1"], [[0.5]], atol=1e-6)

    def test_negative_m1_rejected(self):
        e = np.array([[0.0, 1.0], [0.0, 0.0]])
        sys = DescriptorSystem(e, np.eye(2), np.array([[0.0], [2.0]]), np.array([[1.0, 0.0]]))
        report = weierstrass_passivity_test(sys)
        assert not report.is_passive

    def test_higher_order_markov_rejected(self, s_squared_system):
        report = weierstrass_passivity_test(s_squared_system)
        assert not report.is_passive
        assert "order >= 2" in report.failure_reason

    def test_nonpassive_proper_part_rejected(self, nonpassive_proper_system):
        report = weierstrass_passivity_test(nonpassive_proper_system)
        assert not report.is_passive

    def test_unstable_system_rejected(self):
        sys = DescriptorSystem(np.eye(1), np.array([[0.5]]), np.ones((1, 1)), np.ones((1, 1)))
        report = weierstrass_passivity_test(sys)
        assert not report.is_passive

    def test_agreement_with_shh_on_circuits(self):
        from repro.passivity import shh_passivity_test

        for n_sections in (3, 5):
            system = impulsive_rlc_ladder(n_sections, 1).system
            assert (
                weierstrass_passivity_test(system).is_passive
                == shh_passivity_test(system).is_passive
            )


class TestGareTest:
    def test_admissible_passive_system(self):
        report = gare_passivity_test(rc_line(5).system)
        assert report.is_passive
        assert report.diagnostics["riccati_residual"] < 1e-6

    def test_impulsive_system_refused(self, small_impulsive_ladder):
        report = gare_passivity_test(small_impulsive_ladder)
        assert not report.is_passive
        assert "admissible" in report.failure_reason

    def test_nonpassive_admissible_system(self, nonpassive_proper_system):
        report = gare_passivity_test(nonpassive_proper_system)
        assert not report.is_passive

    def test_regular_passive_state_space(self):
        sys = DescriptorSystem(
            np.eye(2), -np.eye(2), np.ones((2, 1)), np.ones((1, 2)), np.array([[1.0]])
        )
        assert gare_passivity_test(sys).is_passive


class TestSamplingCheck:
    def test_passive_model_passes(self, small_impulsive_ladder):
        report = sampling_passivity_check(small_impulsive_ladder)
        assert report.is_passive
        assert report.diagnostics["summary"].min_eigenvalue >= -1e-8

    def test_nonpassive_model_fails_with_frequency(self, small_impulsive_ladder):
        bad = feedthrough_perturbation(small_impulsive_ladder, 1.0)
        report = sampling_passivity_check(bad)
        assert not report.is_passive
        assert report.diagnostics["summary"].min_eigenvalue < 0

    def test_grid_size_respected(self, index1_passive_system):
        report = sampling_passivity_check(index1_passive_system, n_samples=50)
        assert report.diagnostics["summary"].n_samples <= 51
