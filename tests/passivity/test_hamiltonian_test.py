"""Tests for the Hamiltonian-eigenvalue positive-realness test of proper systems."""

import numpy as np
import pytest

from repro.descriptor import StateSpace
from repro.exceptions import NotStableError
from repro.passivity import proper_positive_real_test


def _rc_like_state_space(n=4, seed=1):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((n, 2))
    a = -np.diag(1.0 + rng.random(n))
    return StateSpace(a, b, b.T, 0.5 * np.eye(2))


class TestPositiveRealVerdicts:
    def test_symmetric_relaxation_system_is_positive_real(self):
        result = proper_positive_real_test(_rc_like_state_space())
        assert result.is_positive_real
        assert result.imaginary_eigenvalues.size == 0

    def test_shifted_down_system_is_not_positive_real(self):
        ss = _rc_like_state_space()
        shifted = StateSpace(ss.a, ss.b, ss.c, ss.d - 3.0 * np.eye(2))
        result = proper_positive_real_test(shifted)
        assert not result.is_positive_real

    def test_indefinite_feedthrough_short_circuits(self):
        ss = StateSpace(-np.eye(1), np.ones((1, 1)), np.ones((1, 1)), np.array([[-1.0]]))
        result = proper_positive_real_test(ss)
        assert not result.is_positive_real
        assert result.feedthrough_indefinite

    def test_scalar_example_with_known_crossing(self):
        # G(s) = 1 - 3/(s+2): real part changes sign at w^2 = ... -> not PR.
        ss = StateSpace(np.array([[-2.0]]), np.array([[1.0]]), np.array([[-3.0]]), np.array([[1.0]]))
        result = proper_positive_real_test(ss)
        assert not result.is_positive_real
        assert result.imaginary_eigenvalues.size >= 1 or result.boundary_check_min_eig < 0

    def test_scalar_positive_real_example(self):
        # G(s) = 1 + 1/(s+1) is positive real.
        ss = StateSpace(np.array([[-1.0]]), np.array([[1.0]]), np.array([[1.0]]), np.array([[1.0]]))
        assert proper_positive_real_test(ss).is_positive_real

    def test_lossless_boundary_case(self):
        # G(s) = 1/s is positive real (lossless); shifted slightly stable version:
        ss = StateSpace(np.array([[-1e-6]]), np.array([[1.0]]), np.array([[1.0]]), np.array([[0.0]]))
        result = proper_positive_real_test(ss)
        assert result.is_positive_real
        assert result.regularization > 0  # singular D + D^T triggered regularization


class TestGuards:
    def test_unstable_system_rejected(self):
        ss = StateSpace(np.array([[1.0]]), np.ones((1, 1)), np.ones((1, 1)), np.eye(1))
        with pytest.raises(NotStableError):
            proper_positive_real_test(ss)

    def test_unstable_allowed_when_not_required(self):
        ss = StateSpace(np.array([[1.0]]), np.ones((1, 1)), np.ones((1, 1)), 5 * np.eye(1))
        result = proper_positive_real_test(ss, require_stable=False)
        assert result is not None

    def test_order_zero_system(self):
        ss = StateSpace(np.zeros((0, 0)), np.zeros((0, 2)), np.zeros((2, 0)), np.eye(2))
        assert proper_positive_real_test(ss).is_positive_real
        ss_bad = StateSpace(np.zeros((0, 0)), np.zeros((0, 2)), np.zeros((2, 0)), -np.eye(2))
        assert not proper_positive_real_test(ss_bad).is_positive_real

    def test_boundary_anchor_reported(self):
        result = proper_positive_real_test(_rc_like_state_space())
        assert result.boundary_check_min_eig > 0
