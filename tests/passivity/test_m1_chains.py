"""Tests for the generalized-eigenvector-chain machinery of Section 3.4."""

import numpy as np
import pytest

from repro.descriptor import DescriptorSystem, first_markov_parameter
from repro.passivity import extract_m1_via_chains, impulsive_chain_data


class TestChainData:
    def test_impulse_free_system_has_no_chains(self, index1_passive_system, small_rc_line):
        assert impulsive_chain_data(index1_passive_system).n_chains == 0
        assert impulsive_chain_data(small_rc_line).n_chains == 0

    def test_sm1_system_has_one_chain(self, sm1_system):
        data = impulsive_chain_data(sm1_system)
        assert data.n_chains == 1
        assert not data.has_higher_grade
        # Chain property: E v2 = A v1.
        np.testing.assert_allclose(
            sm1_system.e @ data.v2_right, sm1_system.a @ data.v1_right, atol=1e-10
        )

    def test_mixed_system_chain(self, mixed_passive_system):
        data = impulsive_chain_data(mixed_passive_system)
        assert data.n_chains == 1
        assert not data.has_higher_grade

    def test_s_squared_system_has_higher_grade(self, s_squared_system):
        data = impulsive_chain_data(s_squared_system)
        assert data.has_higher_grade

    def test_circuit_models(self, small_impulsive_ladder, small_rlc_ladder):
        impulsive = impulsive_chain_data(small_impulsive_ladder)
        assert impulsive.n_chains >= 1
        assert not impulsive.has_higher_grade
        assert impulsive_chain_data(small_rlc_ladder).n_chains == 0

    def test_left_chains_match_transposed_system(self, sm1_system):
        data = impulsive_chain_data(sm1_system)
        data_t = impulsive_chain_data(sm1_system.transpose())
        assert data.v1_left.shape[1] == data_t.v1_right.shape[1]


class TestM1Extraction:
    def test_sm1_value(self, sm1_system):
        m1 = extract_m1_via_chains(sm1_system)
        np.testing.assert_allclose(m1, [[2.0]], atol=1e-10)

    def test_matches_spectral_separation(self, mixed_passive_system, small_impulsive_ladder):
        for system in (mixed_passive_system, small_impulsive_ladder):
            via_chains = extract_m1_via_chains(system)
            via_separation = first_markov_parameter(system)
            np.testing.assert_allclose(via_chains, via_separation, atol=1e-8)

    def test_impulse_free_system_gives_zero(self, index1_passive_system):
        np.testing.assert_allclose(
            extract_m1_via_chains(index1_passive_system), [[0.0]], atol=1e-12
        )

    def test_reuses_precomputed_chain_data(self, sm1_system):
        data = impulsive_chain_data(sm1_system)
        m1 = extract_m1_via_chains(sm1_system, chain_data=data)
        np.testing.assert_allclose(m1, [[2.0]], atol=1e-10)

    def test_negative_m1_detected(self):
        # G(s) = -s: M1 = -1.
        e = np.array([[0.0, 1.0], [0.0, 0.0]])
        a = np.eye(2)
        b = np.array([[0.0], [1.0]])
        c = np.array([[1.0, 0.0]])
        sys = DescriptorSystem(e, a, b, c)
        m1 = extract_m1_via_chains(sys)
        np.testing.assert_allclose(m1, [[-1.0]], atol=1e-10)

    def test_multiport_m1_symmetry_for_symmetric_network(self, rng):
        # Two ports sharing a series inductor through a symmetric network give
        # a symmetric M1.
        from repro.circuits import Netlist, assemble_mna

        netlist = Netlist()
        netlist.add_port("p1", "a")
        netlist.add_port("p2", "b")
        netlist.add_inductor("l1", "a", "c", 1.0)
        netlist.add_inductor("l2", "b", "c", 1.0)
        netlist.add_resistor("r1", "c", "0", 1.0)
        netlist.add_capacitor("c1", "c", "0", 1.0)
        system = assemble_mna(netlist).system
        m1 = extract_m1_via_chains(system)
        np.testing.assert_allclose(m1, m1.T, atol=1e-9)
        assert np.min(np.linalg.eigvalsh(0.5 * (m1 + m1.T))) >= -1e-10
