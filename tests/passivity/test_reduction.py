"""Tests for the structure-preserving Phi reductions (Sections 3.1-3.2)."""

import numpy as np
import pytest

from repro.descriptor import build_phi_realization, count_modes
from repro.exceptions import ReductionError
from repro.linalg.basics import is_skew_symmetric, is_symmetric
from repro.linalg.hamiltonian import is_hamiltonian, is_skew_hamiltonian
from repro.passivity import (
    remove_impulsive_modes,
    remove_nondynamic_modes,
    restore_shh_structure,
)


class TestImpulsiveRemoval:
    def test_sm1_removal(self, sm1_system):
        phi = build_phi_realization(sm1_system)
        reduction = remove_impulsive_modes(phi)
        assert reduction.n_removed == 2
        assert reduction.unobservable_basis.shape[1] == 1
        # The reduced pencil is skew-symmetric / symmetric with B = C^T.
        assert is_skew_symmetric(reduction.system.e)
        assert is_symmetric(reduction.system.a)
        np.testing.assert_allclose(
            reduction.system.b, reduction.system.c.T, atol=1e-10
        )

    def test_transfer_preserved(self, mixed_passive_system):
        phi = build_phi_realization(mixed_passive_system)
        reduction = remove_impulsive_modes(phi)
        s0 = 0.7 + 1.3j
        np.testing.assert_allclose(
            reduction.system.evaluate(s0), phi.evaluate(s0), atol=1e-8
        )
        assert reduction.transfer_defect < 1e-8

    def test_impulse_free_input_removes_nothing_but_rotates(self, small_rlc_ladder):
        phi = build_phi_realization(small_rlc_ladder)
        reduction = remove_impulsive_modes(phi)
        assert reduction.n_removed == 0
        assert reduction.system.order == phi.order
        assert is_skew_symmetric(reduction.system.e)
        assert is_symmetric(reduction.system.a)

    def test_reduced_system_is_impulse_free_for_passive_inputs(
        self, small_impulsive_ladder
    ):
        phi = build_phi_realization(small_impulsive_ladder)
        reduction = remove_impulsive_modes(phi)
        assert reduction.n_removed > 0
        assert count_modes(reduction.system).n_impulsive == 0

    def test_unobservable_directions_satisfy_definition(self, small_impulsive_ladder):
        phi = build_phi_realization(small_impulsive_ladder)
        reduction = remove_impulsive_modes(phi)
        z_ob = reduction.unobservable_basis
        assert z_ob.shape[1] >= 1
        np.testing.assert_allclose(phi.e_phi @ z_ob, 0.0, atol=1e-9)
        np.testing.assert_allclose(phi.c_phi @ z_ob, 0.0, atol=1e-9)

    def test_projectors_are_j_related(self, sm1_system):
        phi = build_phi_realization(sm1_system)
        reduction = remove_impulsive_modes(phi)
        np.testing.assert_allclose(
            reduction.left_projector, phi.j @ reduction.right_projector, atol=1e-12
        )


class TestNondynamicRemoval:
    def _reduced_phi(self, system):
        phi = build_phi_realization(system)
        return remove_impulsive_modes(phi).system

    def test_removes_all_kernel_directions(self, small_rlc_ladder):
        reduced = self._reduced_phi(small_rlc_ladder)
        result = remove_nondynamic_modes(reduced)
        expected_removed = reduced.order - np.linalg.matrix_rank(reduced.e)
        assert result.n_removed == expected_removed
        assert np.linalg.matrix_rank(result.system.e) == result.system.order

    def test_transfer_preserved(self, index1_passive_system):
        reduced = self._reduced_phi(index1_passive_system)
        result = remove_nondynamic_modes(reduced)
        s0 = 0.4 + 0.8j
        np.testing.assert_allclose(
            result.system.evaluate(s0), reduced.evaluate(s0), atol=1e-9
        )

    def test_structure_preserved(self, small_impulsive_ladder):
        reduced = self._reduced_phi(small_impulsive_ladder)
        result = remove_nondynamic_modes(reduced)
        assert is_skew_symmetric(result.system.e)
        assert is_symmetric(result.system.a)
        np.testing.assert_allclose(result.system.b, result.system.c.T, atol=1e-9)

    def test_nonsingular_e_passthrough(self, rng):
        from repro.descriptor import DescriptorSystem

        e = np.array([[0.0, 2.0], [-2.0, 0.0]])
        a = np.eye(2)
        sys = DescriptorSystem(e, a, np.ones((2, 1)), np.ones((1, 2)))
        result = remove_nondynamic_modes(sys)
        assert result.n_removed == 0
        assert result.system is sys

    def test_impulsive_input_raises(self, s_squared_system):
        phi = build_phi_realization(s_squared_system)
        reduced = remove_impulsive_modes(phi).system
        # Phi of s^2 retains impulsive modes: the Schur-complement step must
        # refuse because A22 is singular.
        if count_modes(reduced).n_impulsive > 0:
            with pytest.raises(ReductionError):
                remove_nondynamic_modes(reduced)


class TestShhRestoration:
    def test_restored_pencil_is_shh(self, small_impulsive_ladder):
        phi = build_phi_realization(small_impulsive_ladder)
        reduced = remove_impulsive_modes(phi).system
        proper = remove_nondynamic_modes(reduced).system
        restoration = restore_shh_structure(proper)
        assert is_skew_hamiltonian(restoration.e_shh)
        assert is_hamiltonian(restoration.a_shh)
        # E is nonsingular after the nondynamic removal.
        assert np.linalg.matrix_rank(restoration.e_shh) == restoration.e_shh.shape[0]

    def test_transfer_preserved(self, small_rlc_ladder):
        phi = build_phi_realization(small_rlc_ladder)
        reduced = remove_impulsive_modes(phi).system
        proper = remove_nondynamic_modes(reduced).system
        restoration = restore_shh_structure(proper)
        s0 = 1.5j + 0.2
        np.testing.assert_allclose(
            restoration.to_descriptor().evaluate(s0), phi.evaluate(s0), atol=1e-8
        )

    def test_rejects_unstructured_input(self, rng):
        from repro.descriptor import DescriptorSystem

        sys = DescriptorSystem(
            rng.standard_normal((4, 4)),
            rng.standard_normal((4, 4)),
            rng.standard_normal((4, 1)),
            rng.standard_normal((1, 4)),
        )
        with pytest.raises(ReductionError):
            restore_shh_structure(sys)
