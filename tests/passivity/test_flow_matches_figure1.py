"""The step trail of the SHH test mirrors the boxes of the paper's Figure 1."""

import pytest

from repro.circuits import impulsive_rlc_ladder, rlc_ladder
from repro.passivity import shh_passivity_test

#: The Figure-1 boxes in execution order, mapped to the step names produced by
#: :class:`repro.passivity.shh_test.ShhPassivityTest`.
FIGURE1_SEQUENCE = [
    "validate",                     # "Start with minimal descriptor system"
    "stability",                    # standing assumption check
    "build_phi",                    # "Form a new descriptor system Phi = G + G~"
    "remove_impulsive_modes",       # "Remove impulse uncontrollable and unobservable modes"
    "impulse_free_check",           # "Check if Phi(s) impulse-free"
    "remove_nondynamic_modes",      # "Remove nondynamic modes in Phi(s)"
    "markov_structure",             # "Check if #removed ... equals ..."
    "m1_check",                     # "Extract M1 / Is M1 positive semidefinite"
    "restore_shh",                  # transform into a regular, proper system
    "extract_proper_part",          # "Extract stable and proper part"
    "proper_part_positive_real",    # "Is this proper part passive?"
]


class TestFlowOrder:
    def test_full_flow_for_passive_impulsive_model(self):
        report = shh_passivity_test(impulsive_rlc_ladder(4, 1).system)
        assert report.is_passive
        assert report.step_names == FIGURE1_SEQUENCE

    def test_full_flow_for_impulse_free_model(self):
        report = shh_passivity_test(rlc_ladder(4).system)
        assert report.is_passive
        assert report.step_names == FIGURE1_SEQUENCE

    def test_flow_stops_at_first_failed_box(self, s_squared_system):
        report = shh_passivity_test(s_squared_system)
        assert not report.is_passive
        # The trail is a prefix of the full sequence: no step after the failure.
        names = report.step_names
        assert names == FIGURE1_SEQUENCE[: len(names)]
        assert report.steps[-1].passed is False

    def test_every_decision_box_reports_a_verdict(self):
        report = shh_passivity_test(impulsive_rlc_ladder(3, 1).system)
        decisions = {
            "validate",
            "stability",
            "impulse_free_check",
            "markov_structure",
            "m1_check",
            "proper_part_positive_real",
        }
        for step in report.steps:
            if step.name in decisions:
                assert step.passed is not None
