"""End-to-end tests of the proposed SHH passivity test (Figure 1 flow)."""

import numpy as np
import pytest

from repro.circuits import (
    feedthrough_perturbation,
    impulsive_rlc_ladder,
    negative_resistor_perturbation,
    random_passive_descriptor,
    rc_line,
    rlc_ladder,
)
from repro.descriptor import DescriptorSystem
from repro.passivity import ShhPassivityTest, extract_proper_part, shh_passivity_test


class TestPassiveVerdicts:
    def test_purely_impulsive_passive_system(self, sm1_system):
        report = shh_passivity_test(sm1_system)
        assert report.is_passive
        np.testing.assert_allclose(report.diagnostics["m1"], [[2.0]], atol=1e-10)

    def test_mixed_passive_system(self, mixed_passive_system):
        report = shh_passivity_test(mixed_passive_system)
        assert report.is_passive
        assert report.failure_reason is None

    def test_index1_passive_system(self, index1_passive_system):
        assert shh_passivity_test(index1_passive_system).is_passive

    def test_rc_line_and_ladders(self):
        for system in (rc_line(6).system, rlc_ladder(5).system,
                       impulsive_rlc_ladder(5, 2).system):
            report = shh_passivity_test(system)
            assert report.is_passive, report.failure_reason

    def test_random_passive_descriptors(self):
        for seed in range(4):
            system = random_passive_descriptor(10, n_ports=2, seed=seed)
            report = shh_passivity_test(system)
            assert report.is_passive, (seed, report.failure_reason)

    def test_two_port_ladder(self):
        system = rlc_ladder(4, n_ports=2).system
        report = shh_passivity_test(system)
        assert report.is_passive, report.failure_reason


class TestNonPassiveVerdicts:
    def test_negative_m1(self):
        e = np.array([[0.0, 1.0], [0.0, 0.0]])
        sys = DescriptorSystem(e, np.eye(2), np.array([[0.0], [2.0]]), np.array([[1.0, 0.0]]))
        report = shh_passivity_test(sys)
        assert not report.is_passive
        assert "M1" in report.failure_reason or "residue" in report.failure_reason

    def test_skew_m1_not_passive(self):
        e_block = np.array([[0.0, 1.0], [0.0, 0.0]])
        e = np.kron(np.eye(2), e_block)
        b = np.zeros((4, 2))
        b[1, 1] = -1.0
        b[3, 0] = 1.0
        c = np.zeros((2, 4))
        c[0, 0] = 1.0
        c[1, 2] = 1.0
        sys = DescriptorSystem(e, np.eye(4), b, c)
        report = shh_passivity_test(sys)
        assert not report.is_passive

    def test_s_squared_not_passive(self, s_squared_system):
        report = shh_passivity_test(s_squared_system)
        assert not report.is_passive

    def test_non_positive_real_proper_part(self, nonpassive_proper_system):
        report = shh_passivity_test(nonpassive_proper_system)
        assert not report.is_passive
        assert report.steps[-1].name == "proper_part_positive_real"

    def test_unstable_system_rejected_early(self):
        sys = DescriptorSystem(np.eye(1), np.array([[1.0]]), np.ones((1, 1)), np.ones((1, 1)))
        report = shh_passivity_test(sys)
        assert not report.is_passive
        assert "left half plane" in report.failure_reason

    def test_feedthrough_perturbation_detected(self):
        model = impulsive_rlc_ladder(4, 1)
        system = model.system
        response = system.frequency_response(np.logspace(-2, 2, 100))
        margin = min(
            float(np.min(np.linalg.eigvalsh(0.5 * (r + r.conj().T)))) for r in response
        )
        bad = feedthrough_perturbation(system, 1.5 * margin)
        report = shh_passivity_test(bad)
        assert not report.is_passive

    def test_negative_resistor_perturbation_detected(self):
        model = rlc_ladder(4)
        bad = negative_resistor_perturbation(model, conductance=2.0)
        report = shh_passivity_test(bad)
        assert not report.is_passive

    def test_nonsquare_system_rejected(self, rng):
        sys = DescriptorSystem(
            np.eye(3), -np.eye(3), rng.standard_normal((3, 2)), rng.standard_normal((1, 3))
        )
        report = shh_passivity_test(sys)
        assert not report.is_passive
        assert "square" in report.failure_reason

    def test_singular_pencil_rejected(self):
        sys = DescriptorSystem(
            np.diag([1.0, 0.0]), np.diag([-1.0, 0.0]), np.ones((2, 1)), np.ones((1, 2))
        )
        report = shh_passivity_test(sys)
        assert not report.is_passive
        assert "singular" in report.failure_reason


class TestReportContents:
    def test_elapsed_time_recorded(self, small_rlc_ladder):
        report = shh_passivity_test(small_rlc_ladder)
        assert report.elapsed_seconds > 0.0
        assert report.method == "shh"

    def test_diagnostics_for_impulsive_model(self, small_impulsive_ladder):
        report = shh_passivity_test(small_impulsive_ladder)
        assert report.diagnostics["n_impulsive_directions_removed"] > 0
        assert report.diagnostics["n_impulsive_chains"] >= 1
        assert "m1_eigenvalues" in report.diagnostics
        assert report.diagnostics["proper_part_order"] > 0

    def test_summary_is_printable(self, small_rlc_ladder):
        report = shh_passivity_test(small_rlc_ladder)
        text = report.summary()
        assert "passive" in text
        assert "proper_part_positive_real" in text

    def test_stability_check_can_be_disabled(self):
        sys = DescriptorSystem(np.eye(1), np.array([[1.0]]), np.ones((1, 1)), np.ones((1, 1)))
        driver = ShhPassivityTest(check_stability=False)
        report = driver.run(sys)
        # Without the stability gate the flow proceeds and fails later (the
        # Hamiltonian splitting has no even stable/anti-stable split).
        assert not report.is_passive
        assert "stability" not in report.step_names


class TestProperPartSidetrack:
    def test_extracted_proper_part_matches_analytic(self, mixed_passive_system):
        proper = extract_proper_part(mixed_passive_system)
        s0 = 0.5 + 0.8j
        np.testing.assert_allclose(
            proper.evaluate(s0), [[1.0 / (s0 + 1.0) + 1.0]], atol=1e-8
        )

    def test_extracted_proper_part_of_circuit_model(self, small_impulsive_ladder):
        proper = extract_proper_part(small_impulsive_ladder)
        from repro.descriptor import additive_decomposition

        reference = additive_decomposition(small_impulsive_ladder).proper_part
        for omega in (0.0, 0.7, 3.0, 20.0):
            np.testing.assert_allclose(
                proper.evaluate(1j * omega), reference.evaluate(1j * omega), atol=1e-6
            )
