"""Tests for the stable-proper-part extraction (Section 3.3)."""

import numpy as np
import pytest

from repro.descriptor import build_phi_realization
from repro.passivity import (
    extract_stable_proper_part,
    remove_impulsive_modes,
    remove_nondynamic_modes,
    restore_shh_structure,
)


def _pipeline_to_restoration(system):
    phi = build_phi_realization(system)
    reduced = remove_impulsive_modes(phi).system
    proper = remove_nondynamic_modes(reduced).system
    return restore_shh_structure(proper)


class TestExtraction:
    def test_stable_part_is_stable_and_half_order(self, small_rlc_ladder):
        restoration = _pipeline_to_restoration(small_rlc_ladder)
        extraction = extract_stable_proper_part(restoration)
        n_total = restoration.e_shh.shape[0]
        assert extraction.stable_part.order == n_total // 2
        assert extraction.stable_part.is_stable()
        assert extraction.hamiltonian_residual < 1e-8

    def test_stable_part_matches_strictly_proper_part_of_g(self, mixed_passive_system):
        # Phi(s) = G_sp(s) + G_sp~(s) + const, so the stable strictly-proper
        # part recovered from Phi is G_sp of the original system:
        # for G = 1/(s+1) + s + 1 that is 1/(s+1).
        restoration = _pipeline_to_restoration(mixed_passive_system)
        extraction = extract_stable_proper_part(restoration)
        s0 = 0.9 + 1.4j
        np.testing.assert_allclose(
            extraction.stable_part.evaluate(s0), [[1.0 / (s0 + 1.0)]], atol=1e-8
        )

    def test_phi_half_doubles_back_to_phi_proper(self, small_rlc_ladder):
        restoration = _pipeline_to_restoration(small_rlc_ladder)
        extraction = extract_stable_proper_part(restoration)
        omega = 1.3
        half_value = extraction.phi_half.evaluate(1j * omega)
        phi_value = build_phi_realization(small_rlc_ladder).evaluate(1j * omega)
        np.testing.assert_allclose(
            half_value + half_value.conj().T, phi_value, atol=1e-7
        )

    def test_adjoint_defect_is_small(self, small_rlc_ladder, small_impulsive_ladder):
        for system in (small_rlc_ladder, small_impulsive_ladder):
            restoration = _pipeline_to_restoration(system)
            extraction = extract_stable_proper_part(restoration)
            assert extraction.adjoint_defect < 1e-6

    def test_antistable_block_mirrors_stable_spectrum(self, small_rlc_ladder):
        restoration = _pipeline_to_restoration(small_rlc_ladder)
        extraction = extract_stable_proper_part(restoration)
        stable_eigs = np.sort(np.linalg.eigvals(extraction.stable_part.a).real)
        anti_eigs = np.sort(np.linalg.eigvals(extraction.antistable_a).real)
        np.testing.assert_allclose(stable_eigs, -anti_eigs[::-1], atol=1e-7)

    def test_purely_impulsive_system_yields_constant(self, sm1_system):
        restoration = _pipeline_to_restoration(sm1_system)
        extraction = extract_stable_proper_part(restoration)
        assert extraction.stable_part.order == 0
        np.testing.assert_allclose(extraction.phi_half.d, 0.0, atol=1e-10)
