"""The vectorized sampling check must reproduce the scalar loop bit for bit.

The stacked frequency-grid pipeline (``DescriptorSystem.evaluate_grid`` +
``batched_hermitian_min_eig``) replaced a per-point Python loop; these tests
pin the replacement by re-running the original per-point algorithm and
asserting bitwise-equal verdicts and summaries.
"""

import numpy as np
import pytest

from repro.circuits import rlc_ladder
from repro.config import DEFAULT_TOLERANCES
from repro.descriptor.system import DescriptorSystem
from repro.exceptions import SingularPencilError
from repro.passivity.sampling import sampling_passivity_check


def _scalar_reference(system, omegas, tol):
    """The pre-vectorization per-point sweep, verbatim."""
    min_eig = np.inf
    argmin = 0.0
    evaluated = 0
    for omega in omegas:
        try:
            value = system.evaluate(1j * float(omega), tol)
        except SingularPencilError:
            continue
        evaluated += 1
        hermitian = 0.5 * (value + value.conj().T)
        smallest = float(np.min(np.linalg.eigvalsh(hermitian)))
        if smallest < min_eig:
            min_eig = smallest
            argmin = float(omega)
    return min_eig, argmin, evaluated


def _grid(omega_min=1e-4, omega_max=1e4, n_samples=60, include_zero=True):
    omegas = np.logspace(np.log10(omega_min), np.log10(omega_max), n_samples)
    if include_zero:
        omegas = np.concatenate([[0.0], omegas])
    return omegas


@pytest.fixture
def passive_system():
    return rlc_ladder(5).system


@pytest.fixture
def nonpassive_system():
    base = rlc_ladder(4).system
    return DescriptorSystem(base.e, base.a, base.b, base.c, base.d - 2.0)


class TestBitwiseAgreement:
    def test_passive_summary_bitwise(self, passive_system):
        tol = DEFAULT_TOLERANCES
        report = sampling_passivity_check(passive_system, n_samples=60, tol=tol)
        min_eig, argmin, evaluated = _scalar_reference(
            passive_system, _grid(), tol
        )
        summary = report.diagnostics["summary"]
        assert report.is_passive
        assert summary.min_eigenvalue == min_eig
        assert summary.argmin_omega == argmin
        assert summary.n_samples == evaluated

    def test_nonpassive_summary_bitwise(self, nonpassive_system):
        tol = DEFAULT_TOLERANCES
        report = sampling_passivity_check(nonpassive_system, n_samples=60, tol=tol)
        min_eig, argmin, evaluated = _scalar_reference(
            nonpassive_system, _grid(), tol
        )
        summary = report.diagnostics["summary"]
        assert not report.is_passive
        assert summary.min_eigenvalue == min_eig
        assert summary.argmin_omega == argmin
        assert summary.n_samples == evaluated

    def test_evaluate_grid_matches_evaluate_bitwise(self, passive_system):
        tol = DEFAULT_TOLERANCES
        omegas = _grid(n_samples=25)
        values, valid = passive_system.evaluate_grid(1j * omegas, tol)
        assert valid.all()
        for k, omega in enumerate(omegas):
            assert np.array_equal(
                values[k], passive_system.evaluate(1j * float(omega), tol)
            )

    def test_chunked_path_matches_unchunked(self, passive_system, monkeypatch):
        # Force tiny chunks by evaluating a grid larger than one chunk of a
        # big system would allow; chunk boundaries must not change values.
        tol = DEFAULT_TOLERANCES
        omegas = np.logspace(-2, 2, 9)
        full, valid_full = passive_system.evaluate_grid(1j * omegas, tol)
        pieces = [
            passive_system.evaluate_grid(1j * omegas[k : k + 2], tol)[0]
            for k in range(0, omegas.size, 2)
        ]
        assert valid_full.all()
        assert np.array_equal(full, np.concatenate(pieces))


class TestSingularGridPoints:
    def test_singular_points_skipped_like_scalar_loop(self):
        # A lossless LC resonator has poles on the imaginary axis: grid
        # points that hit (numerically) singular pencils must be skipped and
        # the evaluated count reduced, exactly like the scalar loop did.
        e = np.eye(2)
        a = np.array([[0.0, 1.0], [-1.0, 0.0]])
        b = np.array([[1.0], [0.0]])
        c = np.array([[1.0, 0.0]])
        d = np.array([[1.0]])
        system = DescriptorSystem(e, a, b, c, d)
        omegas = np.array([0.5, 1.0, 2.0])
        tol = DEFAULT_TOLERANCES
        values, valid = system.evaluate_grid(1j * omegas, tol)
        scalar_valid = []
        for omega in omegas:
            try:
                system.evaluate(1j * float(omega), tol)
                scalar_valid.append(True)
            except SingularPencilError:
                scalar_valid.append(False)
        assert valid.tolist() == scalar_valid

    def test_frequency_response_raises_on_singular_point(self):
        e = np.eye(2)
        a = np.array([[0.0, 1.0], [-1.0, 0.0]])
        b = np.array([[1.0], [0.0]])
        c = np.array([[1.0, 0.0]])
        d = np.array([[1.0]])
        system = DescriptorSystem(e, a, b, c, d)
        with pytest.raises(SingularPencilError):
            system.frequency_response([0.5, 1.0, 2.0])
