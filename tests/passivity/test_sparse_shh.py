"""Unit tests of the sparsity-aware ``shh-sparse`` passivity test."""

import numpy as np
import pytest

from repro.circuits import (
    coupled_line_bus,
    feedthrough_perturbation,
    impulsive_rlc_ladder,
    negative_resistor_perturbation,
    random_passive_descriptor,
    rc_grid,
    rc_line,
    rlc_grid,
    rlc_ladder,
)
from repro.engine import DecompositionCache
from repro.passivity import (
    shh_passivity_test,
    sparse_shh_passivity_test,
    structural_passivity_certificate,
)


class TestStructuralCertificate:
    def test_mna_models_are_certified(self):
        for system in (
            rc_grid(4, 4, sparse=True).system,
            rlc_grid(3, 3, sparse=True).system,
            rlc_ladder(4).system,
            impulsive_rlc_ladder(4, 1).system,
        ):
            certificate = structural_passivity_certificate(system)
            assert certificate.certified, certificate

    def test_random_passive_descriptor_is_certified(self):
        system = random_passive_descriptor(12, seed=3, feedthrough_scale=1.0)
        assert structural_passivity_certificate(system).certified

    def test_negative_conductance_breaks_dissipation(self):
        system = negative_resistor_perturbation(rlc_ladder(4), 3.0)
        certificate = structural_passivity_certificate(system)
        assert not certificate.dissipation_nsd
        assert not certificate.certified

    def test_shifted_feedthrough_breaks_certificate(self):
        system = feedthrough_perturbation(rc_line(5).system, 1.0)
        certificate = structural_passivity_certificate(system)
        assert not certificate.feedthrough_psd

    def test_non_reciprocal_system_not_certified(self):
        base = rc_line(5).system
        from repro.descriptor import DescriptorSystem

        skewed = DescriptorSystem(base.e, base.a, base.b, 2.0 * base.c, base.d)
        assert not structural_passivity_certificate(skewed).reciprocal


class TestSparsePaths:
    def test_certificate_path_on_passive_grid(self):
        report = sparse_shh_passivity_test(rc_grid(6, 6, sparse=True).system)
        assert report.is_passive
        assert report.diagnostics["sparse_path"] == "structural-certificate"
        assert "sparse_deflation" not in report.step_names

    def test_reduction_path_on_perturbed_grid(self):
        bad = feedthrough_perturbation(rc_grid(5, 5, sparse=True).system, 5.0)
        report = sparse_shh_passivity_test(bad)
        assert not report.is_passive
        assert report.diagnostics["sparse_path"] == "sparse-reduction"

    def test_reduction_path_accepts_passive_but_uncertified_grid(self):
        # Scaling C by a positive factor keeps the impedance passive but
        # breaks C = B^T, so the certificate fails and the reduction path
        # must still reach the correct (passive) verdict.
        system = rc_grid(4, 4, sparse=True).system
        from repro.descriptor import DescriptorSystem

        nudged = DescriptorSystem(
            system.e, system.a, system.b, system.c * (1.0 + 1e-4), system.d
        )
        report = sparse_shh_passivity_test(nudged)
        dense = shh_passivity_test(nudged)
        assert report.diagnostics["sparse_path"] == "sparse-reduction"
        assert report.is_passive == dense.is_passive

    def test_dense_fallback_on_impulsive_nonpassive_model(self):
        bad = feedthrough_perturbation(impulsive_rlc_ladder(4, 1).system, 1.0)
        report = sparse_shh_passivity_test(bad)
        assert not report.is_passive
        assert report.diagnostics["sparse_path"] == "dense-fallback"
        assert report.method == "shh-sparse"

    def test_unsupported_structure_beyond_fallback_limit(self, sm1_system):
        bad = feedthrough_perturbation(sm1_system, 1.0)
        report = sparse_shh_passivity_test(bad, dense_fallback_order=1)
        assert not report.is_passive
        assert report.diagnostics["sparse_path"] == "unsupported"
        assert "fallback limit" in report.failure_reason

    def test_certificate_can_be_disabled(self):
        system = rc_grid(4, 4, sparse=True).system
        report = sparse_shh_passivity_test(system, structural_certificate=False)
        assert report.is_passive
        assert report.diagnostics["sparse_path"] == "sparse-reduction"

    def test_nonsquare_system_rejected(self):
        from repro.descriptor import DescriptorSystem

        system = DescriptorSystem(
            np.eye(2), -np.eye(2), np.ones((2, 2)), np.ones((1, 2))
        )
        report = sparse_shh_passivity_test(system)
        assert not report.is_passive
        assert "square" in report.failure_reason

    def test_unstable_system_rejected(self):
        from repro.descriptor import DescriptorSystem

        system = DescriptorSystem(
            np.eye(1), np.array([[0.5]]), np.ones((1, 1)), np.ones((1, 1))
        )
        report = sparse_shh_passivity_test(system, structural_certificate=False)
        assert not report.is_passive
        assert "left half plane" in report.failure_reason

    def test_singular_pencil_reported_not_passive(self):
        from repro.descriptor import DescriptorSystem

        # E = A = diag(1, 0) with the LMI structure intact: the certificate
        # holds but the pencil is singular, which the LU probe must catch.
        e = np.diag([1.0, 0.0])
        a = np.diag([-1.0, 0.0])
        b = np.array([[1.0], [0.0]])
        system = DescriptorSystem(e, a, b, b.T)
        report = sparse_shh_passivity_test(system)
        assert not report.is_passive
        assert "singular" in report.failure_reason


class TestCacheIntegration:
    def test_deflation_shared_through_cache(self):
        cache = DecompositionCache()
        bad = feedthrough_perturbation(rc_grid(4, 4, sparse=True).system, 5.0)
        first = sparse_shh_passivity_test(bad, cache=cache)
        second = sparse_shh_passivity_test(bad, cache=cache)
        assert first.is_passive == second.is_passive is False
        assert cache.stats.misses_for("sparse_deflation") == 1
        assert cache.stats.hits_for("sparse_deflation") == 1

    def test_cache_accessor_matches_direct_computation(self):
        cache = DecompositionCache()
        system = rc_line(6).system
        deflation = cache.sparse_deflation(system)
        assert deflation.n_eliminated >= 1
        assert cache.sparse_deflation(system) is deflation


class TestAgreementOnDenseInputs:
    @pytest.mark.parametrize("factory", [
        lambda: rlc_ladder(5).system,
        lambda: rc_line(6).system,
        lambda: impulsive_rlc_ladder(5, 2).system,
        lambda: coupled_line_bus(2, 2, sparse=False).system,
        lambda: random_passive_descriptor(10, seed=7, feedthrough_scale=1.0),
    ])
    def test_dense_input_systems_verdicts_match_shh(self, factory):
        system = factory()
        assert (
            sparse_shh_passivity_test(system).is_passive
            == shh_passivity_test(system).is_passive
        )
