"""Legacy setup shim.

The environment ships a setuptools without the ``wheel`` package, so editable
installs go through the legacy ``setup.py develop`` path
(``pip install -e . --no-use-pep517 --no-build-isolation``).  All metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
