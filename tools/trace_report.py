"""Render a per-job pipeline trace as an indented stage timeline.

The service serves each finished job's span tree as JSON
(``GET /jobs/<id>/trace``, or the ``trace`` SSE events of a scenario run
submitted with ``"trace": true``).  This tool turns that JSON into a
human-readable timeline: one line per span, indented by nesting depth,
with wall/CPU milliseconds, a proportional wall-time bar, and the span's
attributes (cache outcomes, transport byte counts, queue position)::

    python tools/trace_report.py trace.json
    python tools/trace_report.py http://127.0.0.1:8123/jobs/<id>/trace
    curl -s localhost:8123/jobs/<id>/trace | python tools/trace_report.py -

Accepts any of the shapes the service produces: the ``/trace`` endpoint
document (``{"job_id", "state", "spans": [...]}``), a bare span-forest
list, or a single span object.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, Iterator, List, Tuple

#: Width of the proportional wall-time bar column.
BAR_WIDTH = 24


def load_trace(source: str) -> Dict[str, Any]:
    """Load the trace JSON from a file path, an HTTP URL, or ``-`` (stdin)."""
    if source == "-":
        return json.load(sys.stdin)
    if source.startswith("http://") or source.startswith("https://"):
        from urllib.request import urlopen

        with urlopen(source) as response:  # noqa: S310 - operator-given URL
            return json.loads(response.read().decode("utf-8"))
    with open(source, "r", encoding="utf-8") as stream:
        return json.load(stream)


def _spans_of(document: Any) -> List[Dict[str, Any]]:
    """Extract the root span list from any of the service's trace shapes."""
    if isinstance(document, list):
        return document
    if isinstance(document, dict):
        if "spans" in document:
            return list(document["spans"] or [])
        if "name" in document:
            return [document]
    raise ValueError(
        "not a trace document: expected a span list, a span object, or "
        'a {"spans": [...]} wrapper'
    )


def _walk(
    spans: List[Dict[str, Any]], depth: int = 0
) -> Iterator[Tuple[int, Dict[str, Any]]]:
    for span in spans:
        yield depth, span
        yield from _walk(span.get("children") or [], depth + 1)


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    body = " ".join(f"{key}={attrs[key]}" for key in sorted(attrs))
    return f"  [{body}]"


def render(document: Any) -> str:
    """Render one trace document as the indented timeline text."""
    spans = _spans_of(document)
    lines: List[str] = []
    if isinstance(document, dict) and "job_id" in document:
        state = document.get("state", "?")
        lines.append(f"job {document['job_id']}  ({state})")
    rows = list(_walk(spans))
    if not rows:
        lines.append("(no spans recorded)")
        return "\n".join(lines)

    total_wall = sum(
        float(span.get("wall", 0.0)) for depth, span in rows if depth == 0
    )
    widest = max(2 * depth + len(str(span.get("name", "?"))) for depth, span in rows)
    header = f"{'stage'.ljust(widest)}  {'wall ms':>9}  {'cpu ms':>9}  share"
    lines.append(header)
    lines.append("-" * (len(header) + BAR_WIDTH))
    for depth, span in rows:
        name = ("  " * depth + str(span.get("name", "?"))).ljust(widest)
        wall = float(span.get("wall", 0.0))
        cpu = float(span.get("cpu", 0.0))
        share = wall / total_wall if total_wall > 0 else 0.0
        bar = "#" * max(1, round(share * BAR_WIDTH)) if wall > 0 else ""
        lines.append(
            f"{name}  {1e3 * wall:>9.3f}  {1e3 * cpu:>9.3f}  "
            f"{bar.ljust(BAR_WIDTH)}{_format_attrs(span.get('attrs') or {})}"
        )
    lines.append(f"total wall: {1e3 * total_wall:.3f} ms over {len(rows)} spans")
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (see the module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "source",
        help="trace JSON: a file path, a /jobs/<id>/trace URL, or - for stdin",
    )
    args = parser.parse_args(argv)
    try:
        document = load_trace(args.source)
    except Exception as error:
        print(f"error: cannot load {args.source}: {error}", file=sys.stderr)
        return 1
    try:
        print(render(document))
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
