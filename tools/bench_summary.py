"""Aggregate all ``BENCH_*.json`` artifacts into one trajectory table.

Every benchmark in ``benchmarks/`` writes a machine-readable
``BENCH_<name>.json`` document (``benchmark``, ``schema_version``, ``mode``,
an ``environment`` block, and benchmark-specific rounds).  This tool walks a
set of those files and prints one aligned table — benchmark, mode, and the
headline figures (speedups, throughputs, target verdicts) — so a CI run or a
local sweep of benchmarks condenses into something a human can scan.

The extraction is schema-tolerant: headline metrics are found by key-name
convention anywhere in the document (``*speedup*``, ``*_per_second``,
``*ratio``, ``*overhead*``, ``*_met``, ``verdicts_agree``,
``verdict_flips``), so new benchmarks — e.g. ``BENCH_obs.json`` from the
observability-overhead gate — join the table without touching this file as
long as they follow the naming conventions.

Usage::

    python tools/bench_summary.py                 # all BENCH_*.json in cwd
    python tools/bench_summary.py BENCH_sweep.json path/to/BENCH_service.json
    python tools/bench_summary.py --markdown      # pipe-table output
"""

from __future__ import annotations

import argparse
import glob
import json
import os
from typing import Any, Dict, List, Tuple

#: Key-name suffixes/patterns promoted to the headline column, in the order
#: they appear in the table cell.
_METRIC_PATTERNS = (
    "speedup",
    "_per_second",
    "ratio",
    "overhead",
    "verdict_flips",
    "_met",
    "verdicts_agree",
)

#: Keys that are noise even when their name matches a pattern.
_SKIP_KEYS = frozenset({"schema_version"})


def _walk(node: Any, prefix: str = "") -> List[Tuple[str, Any]]:
    """Flatten a JSON document to (dotted.path, leaf) pairs, lists indexed."""
    items: List[Tuple[str, Any]] = []
    if isinstance(node, dict):
        for key, value in node.items():
            path = f"{prefix}.{key}" if prefix else key
            items.extend(_walk(value, path))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            items.extend(_walk(value, f"{prefix}[{index}]"))
    else:
        items.append((prefix, node))
    return items


def _headline(document: Dict[str, Any]) -> List[str]:
    """The headline metric strings of one benchmark document."""
    metrics: List[str] = []
    for path, value in _walk(document):
        leaf = path.rsplit(".", 1)[-1]
        if leaf in _SKIP_KEYS or "environment" in path:
            continue
        if not any(pattern in leaf for pattern in _METRIC_PATTERNS):
            continue
        if isinstance(value, bool):
            rendered = "yes" if value else "NO"
        elif isinstance(value, float):
            rendered = f"{value:.2f}"
        elif isinstance(value, int):
            rendered = str(value)
        else:
            # Free-text targets and the like: context, not a metric.
            continue
        # Compress the path: keep at most the enclosing round + key.
        parts = path.split(".")
        label = ".".join(parts[-2:]) if len(parts) > 1 else path
        metrics.append(f"{label}={rendered}")
    return metrics


def summarize(paths: List[str]) -> List[Dict[str, Any]]:
    """Load each artifact; return table rows (unreadable files become notes)."""
    rows = []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as stream:
                document = json.load(stream)
        except (OSError, ValueError) as error:
            rows.append(
                {
                    "file": os.path.basename(path),
                    "benchmark": "(unreadable)",
                    "mode": "-",
                    "metrics": [f"{type(error).__name__}: {error}"],
                }
            )
            continue
        rows.append(
            {
                "file": os.path.basename(path),
                "benchmark": str(document.get("benchmark", "?")),
                "mode": str(document.get("mode", "?")),
                "metrics": _headline(document),
            }
        )
    return rows


def render(rows: List[Dict[str, Any]], markdown: bool = False) -> str:
    """Render the rows as an aligned text table or a Markdown pipe table."""
    header = ("file", "benchmark", "mode", "headline metrics")
    table = [
        (
            row["file"],
            row["benchmark"],
            row["mode"],
            "; ".join(row["metrics"]) or "-",
        )
        for row in rows
    ]
    if markdown:
        lines = [
            "| " + " | ".join(header) + " |",
            "| " + " | ".join("---" for _ in header) + " |",
        ]
        lines += ["| " + " | ".join(row) + " |" for row in table]
        return "\n".join(lines)
    widths = [
        max(len(header[col]), *(len(row[col]) for row in table)) if table else len(header[col])
        for col in range(3)
    ]
    lines = [
        "  ".join(header[col].ljust(widths[col]) for col in range(3))
        + "  "
        + header[3]
    ]
    lines.append("-" * (sum(widths) + 6 + len(header[3])))
    for row in table:
        lines.append(
            "  ".join(row[col].ljust(widths[col]) for col in range(3))
            + "  "
            + row[3]
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI entry point (see the module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths",
        nargs="*",
        help="artifact files (default: BENCH_*.json in the current directory)",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit a Markdown pipe table"
    )
    args = parser.parse_args(argv)

    paths = args.paths or sorted(glob.glob("BENCH_*.json"))
    if not paths:
        print("no BENCH_*.json artifacts found")
        return 1
    print(render(summarize(paths), markdown=args.markdown))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
