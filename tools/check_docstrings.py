"""Docstring-coverage gate for the frozen public API.

Walks the ``__all__`` exports of the public namespaces (``repro``,
``repro.engine``, ``repro.service``, ``repro.obs``) and fails when any
exported symbol —
or any public method/property a symbol's class defines itself — lacks a
docstring.  This is the executable form of the documentation contract:
``docs/api.md`` promises NumPy-style docstrings for every public symbol,
and CI runs this script so the promise cannot silently rot.

Usage::

    PYTHONPATH=src python tools/check_docstrings.py            # gate (exit 1 on gaps)
    PYTHONPATH=src python tools/check_docstrings.py --report   # coverage summary
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
from typing import List, Tuple

#: The namespaces whose ``__all__`` constitutes the frozen public API.
PUBLIC_MODULES = ("repro", "repro.engine", "repro.service", "repro.obs")


def _has_doc(obj: object) -> bool:
    """True when the object carries a non-empty docstring of its own.

    Inherited docstrings count only if the member itself is inherited;
    a redefined member must restate its contract.
    """
    doc = getattr(obj, "__doc__", None)
    return bool(doc and doc.strip())


def _is_local(obj: object) -> bool:
    """True when the object is defined inside this repository's package."""
    module = getattr(obj, "__module__", "") or ""
    return module.startswith("repro")


def _class_members(cls: type) -> List[Tuple[str, object]]:
    """Public methods/properties the class *itself* defines (not inherited).

    Dataclass-generated plumbing (``__init__`` etc.) and dunders are out of
    scope — the class docstring documents the fields; enum members carry no
    per-member docstrings either.
    """
    members: List[Tuple[str, object]] = []
    for name, attr in vars(cls).items():
        if name.startswith("_"):
            continue
        if isinstance(attr, property):
            members.append((name, attr))
        elif inspect.isfunction(attr):
            members.append((name, attr))
        elif isinstance(attr, (classmethod, staticmethod)):
            members.append((name, attr.__func__))
    return members


def check_module(module_name: str) -> Tuple[List[str], int]:
    """Return (missing-docstring labels, symbols checked) for one module."""
    module = importlib.import_module(module_name)
    missing: List[str] = []
    checked = 0
    exported = getattr(module, "__all__", None)
    if exported is None:
        missing.append(f"{module_name}: module defines no __all__")
        return missing, checked
    for symbol in exported:
        if not hasattr(module, symbol):
            missing.append(f"{module_name}.{symbol}: listed in __all__ but absent")
            continue
        obj = getattr(module, symbol)
        checked += 1
        label = f"{module_name}.{symbol}"
        if inspect.ismodule(obj):
            if not _has_doc(obj):
                missing.append(f"{label}: missing module docstring")
            continue
        if not inspect.isclass(obj) and not callable(obj):
            # Exported constants (cost classes, cache-kind strings, version
            # numbers) cannot carry runtime docstrings; documented in
            # docs/api.md and the owning module's docstring instead.
            continue
        if not _has_doc(obj):
            missing.append(f"{label}: missing docstring")
        if inspect.isclass(obj) and _is_local(obj):
            for name, member in _class_members(obj):
                checked += 1
                if not _has_doc(member):
                    missing.append(f"{label}.{name}: missing docstring")
    return missing, checked


def main(argv=None) -> int:
    """Run the gate over :data:`PUBLIC_MODULES`; exit 1 when gaps exist."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report", action="store_true", help="print per-module coverage"
    )
    args = parser.parse_args(argv)

    all_missing: List[str] = []
    total = 0
    for module_name in PUBLIC_MODULES:
        missing, checked = check_module(module_name)
        total += checked
        all_missing.extend(missing)
        if args.report:
            covered = checked - sum(
                1 for entry in missing if entry.startswith(module_name)
            )
            print(f"{module_name}: {covered}/{checked} documented")

    if all_missing:
        print(f"docstring coverage FAILED: {len(all_missing)} gap(s) in "
              f"{total} public symbols")
        for entry in sorted(set(all_missing)):
            print(f"  - {entry}")
        return 1
    print(f"docstring coverage OK: all {total} public symbols documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
