"""End-to-end observability smoke: boot the service, sweep, scrape /metrics.

CI's answer to "does the whole observability plane actually light up?":

1. start ``python -m repro.service --metrics`` as a subprocess on a free
   port,
2. submit an 8-corner scenario sweep over HTTP and wait for it to finish,
3. fetch one finished job's ``/jobs/<id>/trace`` and require the pipeline
   spans,
4. scrape ``GET /metrics`` and assert the required metric families are
   present in valid Prometheus text,
5. write the scrape to ``--output`` so CI can upload it as an artifact.

Exits non-zero (with a reason on stderr) when any step fails.  Usage::

    PYTHONPATH=src python tools/metrics_smoke.py --output metrics-scrape.txt
"""

from __future__ import annotations

import argparse
import json
import socket
import subprocess
import sys
import time
from typing import Any, Dict, List
from urllib.error import URLError
from urllib.request import Request, urlopen

#: Metric families whose absence fails the smoke.
REQUIRED_FAMILIES = (
    "repro_stage_seconds",
    "repro_jobs_submitted",
    "repro_jobs_completed",
    "repro_queue_depth",
    "repro_queue_wait_max_seconds",
    "repro_journal_lag",
    "repro_cache_factorizations",
    "repro_uptime_seconds",
)

#: Span names one finished job's trace must contain.
REQUIRED_SPANS = ("queue.wait", "engine.dispatch")


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _http(method: str, url: str, payload: Any = None, timeout: float = 10.0) -> Any:
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    with urlopen(request, timeout=timeout) as response:
        body = response.read().decode("utf-8")
        content_type = response.headers.get("Content-Type", "")
    if content_type.startswith("application/json"):
        return json.loads(body)
    return body


def _wait_ready(base: str, deadline: float) -> None:
    while True:
        try:
            _http("GET", f"{base}/stats", timeout=2.0)
            return
        except (URLError, OSError):
            if time.monotonic() > deadline:
                raise RuntimeError("service did not become ready in time")
            time.sleep(0.2)


def _scenario_spec() -> Dict[str, Any]:
    # An 8-corner sweep of a small RLC grid — the scenario document shape
    # of repro.service.scenario.scenario_from_jsonable.
    from repro.circuits import rlc_grid
    from repro.service import system_to_jsonable

    return {
        "kind": "scenario",
        "family": "corners",
        "system": system_to_jsonable(rlc_grid(4, 5).system),
        "n_corners": 8,
        "scale": 2e-4,
        "seed": 0,
        "pattern": "a",
        "method": "gare",
    }


def _span_names(spans: List[Dict[str, Any]]) -> List[str]:
    names: List[str] = []
    stack = list(spans)
    while stack:
        span = stack.pop()
        names.append(str(span.get("name", "?")))
        stack.extend(span.get("children") or [])
    return names


def run_smoke(output: str, executor: str, startup_timeout: float) -> int:
    """Run the full boot→sweep→trace→scrape smoke; returns an exit code."""
    port = _free_port()
    base = f"http://127.0.0.1:{port}"
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service",
            "--port",
            str(port),
            "--workers",
            "2",
            "--executor",
            executor,
            "--metrics",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    try:
        _wait_ready(base, time.monotonic() + startup_timeout)
        print(f"service up on {base} (executor={executor})")

        scenario = _http("POST", f"{base}/scenarios", _scenario_spec())
        scenario_id = scenario["scenario_id"]
        deadline = time.monotonic() + 120.0
        while True:
            status = _http("GET", f"{base}/scenarios/{scenario_id}")
            if status["state"] in ("done", "failed", "cancelled"):
                break
            if time.monotonic() > deadline:
                raise RuntimeError("scenario did not finish in time")
            time.sleep(0.25)
        if status["state"] != "done":
            raise RuntimeError(f"scenario ended {status['state']!r}")
        cells = status.get("cells") or []
        print(f"scenario {scenario_id} done: {len(cells)} cells")

        job_id = cells[0]["job_id"]
        trace = _http("GET", f"{base}/jobs/{job_id}/trace")
        names = _span_names(trace.get("spans") or [])
        missing_spans = [name for name in REQUIRED_SPANS if name not in names]
        if missing_spans:
            raise RuntimeError(
                f"trace of job {job_id} lacks spans {missing_spans}; got {sorted(set(names))}"
            )
        print(f"trace of job {job_id}: {len(names)} spans")

        scrape = _http("GET", f"{base}/metrics")
        if not isinstance(scrape, str) or "# TYPE" not in scrape:
            raise RuntimeError("GET /metrics did not return Prometheus text")
        missing = [
            family
            for family in REQUIRED_FAMILIES
            if f"# TYPE {family} " not in scrape
        ]
        if missing:
            raise RuntimeError(f"/metrics lacks families {missing}")
        with open(output, "w", encoding="utf-8") as stream:
            stream.write(scrape)
        lines = scrape.count("\n")
        print(f"scrape OK: {lines} lines, {len(REQUIRED_FAMILIES)} required families -> {output}")
        return 0
    except Exception as error:
        print(f"SMOKE FAILED: {error}", file=sys.stderr)
        return 1
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


def main(argv=None) -> int:
    """CLI entry point (see the module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default="metrics-scrape.txt",
        help="file receiving the /metrics scrape (CI artifact)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="service executor mode to boot",
    )
    parser.add_argument(
        "--startup-timeout",
        type=float,
        default=30.0,
        help="seconds to wait for the service to become ready",
    )
    args = parser.parse_args(argv)
    return run_smoke(args.output, args.executor, args.startup_timeout)


if __name__ == "__main__":
    raise SystemExit(main())
