"""Quickstart: build an RLC descriptor model and test its passivity.

Run with::

    python examples/quickstart.py

The script builds a small RLC interconnect model with MNA (a genuine
descriptor system: singular E, impulsive modes from a series port inductor),
checks it through the engine's ``check_passivity`` entry point — which
profiles the system, auto-selects the right method (the proposed
skew-Hamiltonian/Hamiltonian test here, since the model has impulsive modes)
and shares the expensive decompositions through a cache — and prints the full
decision trail of the paper's Figure-1 flow.
"""

from __future__ import annotations

import numpy as np

from repro import DecompositionCache, check_passivity, select_method
from repro.circuits import impulsive_rlc_ladder
from repro.descriptor import count_modes


def main() -> None:
    # An RLC ladder with 5 sections, one inductor-only stub (an L-cutset that
    # raises the MNA index to 2) and a series inductor at the driving port
    # (which makes the impedance grow like s*L at high frequency).
    model = impulsive_rlc_ladder(
        n_sections=5, n_impulsive_stubs=1, series_port_inductor=0.5
    )
    system = model.system

    print("=== Model ===")
    print(system)
    modes = count_modes(system)
    print(
        f"mode inventory: {modes.n_finite} finite, {modes.n_nondynamic} nondynamic, "
        f"{modes.n_impulsive} impulsive"
    )
    print(f"stable finite spectrum: {modes.is_stable}")
    print()

    print("=== Engine passivity check (method='auto') ===")
    cache = DecompositionCache()
    spec = select_method(system, cache=cache)
    print(f"auto-selected method: {spec.name} ({spec.description})")
    report = check_passivity(system, method="auto", cache=cache)
    print(report.summary())
    print(
        f"cache: {cache.stats.hits} hit(s), {cache.stats.misses} computation(s) "
        "— the profile's chain analysis was reused by the test"
    )
    print()

    if "m1" in report.diagnostics:
        m1 = np.atleast_2d(report.diagnostics["m1"])
        print(f"extracted M1 (residue at infinity): {m1.ravel()}")
        print("  -> equals the series port inductance, as expected for Z(s) ~ s*L")
    print()
    print(f"verdict: the model is {'PASSIVE' if report.is_passive else 'NOT passive'}")


if __name__ == "__main__":
    main()
