"""Reproduce Table 1 of the paper: CPU time of three passivity tests vs. order.

Run with::

    python examples/reproduce_table1.py [--full] [--lmi-limit N] [--csv PATH]

Without ``--full`` the sweep stops at order 100 and the LMI test at order 40,
which keeps the runtime to a couple of minutes; ``--full`` reproduces the
complete grid of the paper (orders up to 400, LMI up to 60 — expect a long
LMI run, exactly as the paper's 1550 s entry suggests).
"""

from __future__ import annotations

import argparse
import csv
import sys

from repro.bench import PAPER_TABLE1, format_table1, table1_rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run the complete paper grid")
    parser.add_argument(
        "--lmi-limit", type=int, default=None,
        help="highest order on which to run the LMI test (default 40, 60 with --full)",
    )
    parser.add_argument("--csv", default=None, help="write the measured rows to a CSV file")
    args = parser.parse_args(argv)

    orders = (20, 40, 60, 80, 100, 200, 400) if args.full else (20, 40, 60, 80, 100)
    lmi_limit = args.lmi_limit if args.lmi_limit is not None else (60 if args.full else 40)

    print(f"orders: {orders}; LMI test up to order {lmi_limit} (NIL beyond, as in the paper)")
    print("generating models and timing the three tests ...")
    rows = table1_rows(orders=orders, lmi_order_limit=lmi_limit)

    print()
    print("Table 1 — CPU times (seconds) for different passivity tests")
    print(format_table1(rows))
    print()
    print("paper reference machine: Matlab 7.0.4, 2.8 GHz PC (2006); "
          "measured numbers come from this machine and are not expected to match "
          "in absolute terms — the scaling shape is the reproduction target.")

    for row in rows:
        for method in ("lmi", "proposed", "weierstrass"):
            verdict = row.passive.get(method)
            if verdict is False:
                print(f"WARNING: {method} reported NON-passive at order {row.order}")

    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                ["order", "lmi_seconds", "proposed_seconds", "weierstrass_seconds",
                 "lmi_paper", "proposed_paper", "weierstrass_paper"]
            )
            for row in rows:
                paper = PAPER_TABLE1.get(row.order, {})
                writer.writerow(
                    [
                        row.order,
                        row.seconds.get("lmi"),
                        row.seconds.get("proposed"),
                        row.seconds.get("weierstrass"),
                        paper.get("lmi"),
                        paper.get("proposed"),
                        paper.get("weierstrass"),
                    ]
                )
        print(f"wrote {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
