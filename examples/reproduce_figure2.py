"""Reproduce Figure 2 of the paper: CPU-time-vs-order curves of the tests.

Run with::

    python examples/reproduce_figure2.py [--full] [--csv PATH]

The script produces the two series of the figure (log-scale comparison of all
three tests, linear-scale close-up of the proposed vs. Weierstrass tests),
prints them as a table plus a coarse ASCII log-log plot, and optionally writes
a CSV ready for plotting.
"""

from __future__ import annotations

import argparse
import csv
import math
import sys

from repro.bench import figure2_series


def ascii_loglog_plot(series, width=64, height=16):
    """Tiny dependency-free log-log scatter plot of the timing curves."""
    points = []
    markers = {"lmi": "L", "proposed": "P", "weierstrass": "W"}
    for method, marker in markers.items():
        for order, seconds in zip(series["order"], series[method]):
            if seconds is not None and seconds > 0:
                points.append((math.log10(order), math.log10(seconds), marker))
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y, marker in points:
        col = int((x - x_min) / max(x_max - x_min, 1e-9) * (width - 1))
        row = int((y - y_min) / max(y_max - y_min, 1e-9) * (height - 1))
        grid[height - 1 - row][col] = marker
    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" log10(order) from {x_min:.2f} to {x_max:.2f}; "
                 f"log10(seconds) from {y_min:.2f} to {y_max:.2f}")
    lines.append(" markers: L = LMI test, P = proposed SHH test, W = Weierstrass test")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the paper's full order grid")
    parser.add_argument("--csv", default=None, help="write the series to a CSV file")
    args = parser.parse_args(argv)

    orders = (20, 40, 60, 80, 100, 150, 200, 300, 400) if args.full else (20, 40, 60, 80, 100, 150)
    lmi_limit = 60 if args.full else 40
    print(f"timing the tests over orders {orders} (LMI up to {lmi_limit}) ...")
    series = figure2_series(orders=orders, lmi_order_limit=lmi_limit)

    print()
    print("Figure 2 data — CPU times (seconds)")
    print(f"{'order':>8s} {'LMI':>12s} {'proposed':>12s} {'weierstrass':>12s}")
    for i, order in enumerate(series["order"]):
        def fmt(value):
            return "NIL" if value is None else f"{value:.4f}"
        print(f"{order:>8d} {fmt(series['lmi'][i]):>12s} "
              f"{fmt(series['proposed'][i]):>12s} {fmt(series['weierstrass'][i]):>12s}")

    print()
    print("Figure 2 (top panel), ASCII rendition (log-log):")
    print(ascii_loglog_plot(series))

    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["order", "lmi_seconds", "proposed_seconds", "weierstrass_seconds"])
            for i, order in enumerate(series["order"]):
                writer.writerow(
                    [order, series["lmi"][i], series["proposed"][i], series["weierstrass"][i]]
                )
        print(f"wrote {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
