"""Scenario: decoupling the proper part of an impulsive descriptor system.

The paper's "sidetrack": the same SHH reduction pipeline that decides
passivity also hands back the stable proper part of the model, which is what a
downstream model-order-reduction or time-domain simulation flow actually wants
to work with (the impulsive part being a simple ``s * M1`` term handled
analytically).

The script:

1. builds an impulsive RLC model,
2. extracts its proper part through the SHH pipeline,
3. extracts it again with the conventional spectral-separation route,
4. compares both against the original frequency response
   ``G(j w) - j w M1`` and prints the worst-case deviations.

Run with::

    python examples/proper_part_extraction.py
"""

from __future__ import annotations

import numpy as np

from repro.circuits import impulsive_rlc_ladder
from repro.descriptor import additive_decomposition, first_markov_parameter
from repro.passivity import extract_proper_part, shh_passivity_test


def main() -> None:
    model = impulsive_rlc_ladder(n_sections=6, n_impulsive_stubs=2,
                                 series_port_inductor=0.8)
    system = model.system
    print(f"model order {system.order}, ports {system.n_inputs}")

    report = shh_passivity_test(system)
    print(f"passivity: {report.is_passive}")

    m1 = first_markov_parameter(system)
    print(f"M1 (impulsive part coefficient): {m1.ravel()}")

    proper_shh = extract_proper_part(system)
    proper_qz = additive_decomposition(system).proper_part
    print(
        f"proper part order: SHH pipeline = {proper_shh.order}, "
        f"spectral separation = {proper_qz.order}"
    )

    omegas = np.logspace(-2, 3, 40)
    worst_vs_reference = 0.0
    worst_between_methods = 0.0
    for omega in omegas:
        reference = system.evaluate(1j * omega) - 1j * omega * m1
        via_shh = proper_shh.evaluate(1j * omega)
        via_qz = proper_qz.evaluate(1j * omega)
        worst_vs_reference = max(
            worst_vs_reference, float(np.max(np.abs(via_shh - reference)))
        )
        worst_between_methods = max(
            worst_between_methods, float(np.max(np.abs(via_shh - via_qz)))
        )

    print(f"max |G_p(jw) - (G(jw) - jw M1)| over the sweep : {worst_vs_reference:.3e}")
    print(f"max deviation between the two extraction routes: {worst_between_methods:.3e}")

    print()
    print("sample of the extracted proper response (real part at a few frequencies):")
    for omega in (0.0, 0.5, 2.0, 10.0):
        value = proper_shh.evaluate(1j * omega)
        print(f"  w = {omega:6.2f}  Re G_p = {value.real.ravel()}")


if __name__ == "__main__":
    main()
