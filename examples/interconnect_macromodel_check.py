"""Scenario: vetting interconnect macromodels before global simulation.

This is the use case that motivates the paper: MNA-extracted interconnect
models (RC lines, RLC ladders, models with impulsive modes) must be certified
passive before they are embedded in a full-chip simulation, and non-passive
models — for example models corrupted by an active perturbation or by an
over-aggressive reduction — must be caught.

The script runs a small "model sign-off" campaign:

1. a family of passive models of increasing order is certified with the
   proposed SHH test and cross-checked with the Weierstrass baseline and a
   frequency sweep,
2. deliberately corrupted variants are shown to be rejected, together with the
   reason reported by the test.

Run with::

    python examples/interconnect_macromodel_check.py
"""

from __future__ import annotations

import numpy as np

from repro.circuits import (
    feedthrough_perturbation,
    impulsive_rlc_ladder,
    negative_resistor_perturbation,
    rc_line,
    rlc_ladder,
)
from repro.passivity import (
    sampling_passivity_check,
    shh_passivity_test,
    weierstrass_passivity_test,
)


def certify(name, system) -> None:
    shh = shh_passivity_test(system)
    weierstrass = weierstrass_passivity_test(system)
    sweep = sampling_passivity_check(system)
    agreement = "agree" if (shh.is_passive == weierstrass.is_passive == sweep.is_passive) else "DISAGREE"
    print(
        f"{name:32s} order={system.order:4d}  "
        f"SHH={'pass' if shh.is_passive else 'FAIL':4s}  "
        f"Weierstrass={'pass' if weierstrass.is_passive else 'FAIL':4s}  "
        f"sweep={'pass' if sweep.is_passive else 'FAIL':4s}  [{agreement}]  "
        f"({shh.elapsed_seconds * 1e3:7.1f} ms SHH)"
    )
    if not shh.is_passive:
        print(f"{'':32s} reason: {shh.failure_reason}")


def main() -> None:
    print("--- sign-off of passive macromodels -------------------------------")
    certify("RC line (12 segments)", rc_line(12).system)
    certify("RLC ladder (8 sections)", rlc_ladder(8).system)
    certify("RLC ladder, 2-port", rlc_ladder(6, n_ports=2).system)
    certify("impulsive ladder (1 L-stub)", impulsive_rlc_ladder(6, 1).system)
    certify("impulsive ladder (3 L-stubs)", impulsive_rlc_ladder(8, 3).system)

    print()
    print("--- corrupted models must be rejected -----------------------------")
    base = impulsive_rlc_ladder(6, 1)
    # Find the true passivity margin (minimum resistance of the port impedance)
    # so the corruptions are guaranteed to cross it.
    response = base.system.frequency_response(np.logspace(-3, 3, 300))
    margin = min(
        float(np.min(np.linalg.eigvalsh(0.5 * (value + value.conj().T))))
        for value in response
    )
    print(f"passivity margin of the reference model: {margin:.4f} ohm")
    certify(
        "series-loss removed (shifted D)",
        feedthrough_perturbation(base.system, 1.3 * margin),
    )
    certify(
        "negative shunt conductance", negative_resistor_perturbation(base, 2.5)
    )

    print()
    print("--- a model that is still passive after a small perturbation ------")
    certify(
        "small shift (inside margin)",
        feedthrough_perturbation(base.system, 0.5 * margin),
    )


if __name__ == "__main__":
    main()
