"""Scenario: repair a slightly non-passive macromodel, then reduce its order.

The paper's conclusion points out that passivity enforcement and descriptor
model order reduction "can readily be developed on top of this framework".
This example exercises both applications:

1. a passive RLC descriptor model is corrupted by a small constant shift
   (mimicking a fitting error) so that it fails the SHH passivity test,
2. :func:`repro.applications.enforce_passivity` measures the violation,
   repairs the model, and re-certifies it,
3. the repaired model is reduced with
   :func:`repro.applications.reduce_descriptor_system`, which balances and
   truncates the proper part while re-attaching the impulsive part ``s M1``
   exactly,
4. the reduced model is certified passive again and its frequency-response
   error is compared against the balanced-truncation bound.

Run with::

    python examples/passivity_enforcement_and_mor.py
"""

from __future__ import annotations

import numpy as np

from repro.applications import enforce_passivity, reduce_descriptor_system
from repro.circuits import feedthrough_perturbation, impulsive_rlc_ladder
from repro.descriptor import first_markov_parameter
from repro.passivity import shh_passivity_test


def main() -> None:
    # Reference model: 30-ish states, impulsive modes, passive by construction.
    reference = impulsive_rlc_ladder(8, 2, series_port_inductor=0.4).system
    print(f"reference model: order {reference.order}")

    # Corrupt it: remove a bit more series loss than the model actually has.
    response = reference.frequency_response(np.logspace(-3, 3, 300))
    margin = min(
        float(np.min(np.linalg.eigvalsh(0.5 * (v + v.conj().T)))) for v in response
    )
    corrupted = feedthrough_perturbation(reference, 1.2 * margin)
    report = shh_passivity_test(corrupted)
    print(f"corrupted model passive? {report.is_passive}  ({report.failure_reason})")

    # Step 1: enforcement.
    result = enforce_passivity(corrupted)
    print(
        f"enforcement: violation {result.original_violation:.4f} -> "
        f"{result.remaining_violation:.2e}, feedthrough shift {result.feedthrough_shift:.4f}"
    )
    print(f"repaired model certified passive? {result.report.is_passive}")

    # Step 2: model order reduction of the repaired model.
    repaired = result.system
    reduced = reduce_descriptor_system(repaired, proper_order=8)
    print(
        f"reduction: proper part {reduced.hankel_singular_values.size} -> "
        f"{reduced.proper_order} states, total order {repaired.order} -> "
        f"{reduced.system.order}, a-priori error bound {reduced.error_bound:.3e}"
    )
    print(f"Hankel singular values: {np.round(reduced.hankel_singular_values[:10], 5)}")

    # The impulsive part is preserved exactly.
    np.testing.assert_allclose(
        first_markov_parameter(reduced.system),
        first_markov_parameter(repaired),
        atol=1e-8,
    )
    print("M1 of the reduced model matches the repaired model exactly.")

    # Certify the reduced model and measure the actual error.
    reduced_report = shh_passivity_test(reduced.system)
    print(f"reduced model certified passive? {reduced_report.is_passive}")
    worst = 0.0
    for omega in np.logspace(-2, 3, 50):
        delta = repaired.evaluate(1j * omega) - reduced.system.evaluate(1j * omega)
        worst = max(worst, float(np.linalg.norm(delta, 2)))
    print(
        f"measured worst-case response error {worst:.3e} "
        f"(bound {reduced.error_bound:.3e})"
    )


if __name__ == "__main__":
    main()
