"""Parameter-sweep benchmark: incremental re-certification vs cold re-runs.

Drives the perturbation-aware incremental tier on its canonical workload —
an N-corner multiplicative parameter sweep of one power-grid macromodel —
and measures:

* **sweep throughput**: wall-clock of certifying every corner cold (shared
  cache, no ancestors) vs incrementally (one cold root, every corner a
  certified spectral + Riccati update of it), plus the per-corner times and
  the speedup ratio the ISSUE acceptance pins (>= 5x on a 64-corner
  order >= 200 sweep in the full mode),
* **verdict agreement**: the incremental pass must reproduce the cold pass's
  is_passive decision on *every* corner (zero flips),
* **update telemetry**: ``incremental_hits`` / ``incremental_fallbacks`` /
  ``update_residual_max`` from ``CacheStats``,
* **enforcement-loop throughput**: the iterative perturb -> re-test
  enforcement of a non-passive model with in-place incremental re-certs vs
  the same shift schedule re-certified cold each iteration.

Everything is written to a machine-readable ``BENCH_sweep.json``
(benchmark-trajectory artifact, same conventions as ``BENCH_service.json``).

Usage::

    PYTHONPATH=src python benchmarks/bench_sweep.py            # full (64 corners, order 204)
    PYTHONPATH=src python benchmarks/bench_sweep.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_sweep.py --check    # assert speedup + zero flips
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Dict, List

import numpy as np
import scipy

from repro.applications import enforce_passivity_iterative
from repro.circuits import feedthrough_perturbation, rlc_grid_corners, rlc_ladder
from repro.engine import check_passivity
from repro.engine.cache import DecompositionCache

SCHEMA_VERSION = 1

#: Full-mode acceptance: incremental sweep >= 5x faster than cold re-runs.
FULL_MIN_SPEEDUP = 5.0
#: Smoke-mode floor: tiny corners are overhead-dominated, only sanity-gate.
SMOKE_MIN_SPEEDUP = 1.5


def _family(mode: str) -> List:
    """The swept corner family (nominal system first)."""
    if mode == "smoke":
        # Order 54: seconds-sized for CI, still exercises the full update path.
        return rlc_grid_corners(5, 6, n_corners=16, scale=2e-4, seed=0, pattern="a")
    # Order 204 (>= 200 per the acceptance criterion), 64 corners.
    return rlc_grid_corners(9, 12, n_corners=64, scale=2e-4, seed=0, pattern="a")


def _sweep_round(family: List) -> Dict:
    """Certify every corner cold and incrementally; compare."""
    nominal, corners = family[0], family[1:]

    cold_cache = DecompositionCache()
    start = time.perf_counter()
    cold_reports = [
        check_passivity(system, method="gare", cache=cold_cache)
        for system in family
    ]
    cold_seconds = time.perf_counter() - start

    warm_cache = DecompositionCache()
    start = time.perf_counter()
    warm_reports = [check_passivity(nominal, method="gare", cache=warm_cache)]
    warm_reports += [
        check_passivity(system, method="gare", cache=warm_cache, ancestor=nominal)
        for system in corners
    ]
    warm_seconds = time.perf_counter() - start

    flips = sum(
        1
        for cold, warm in zip(cold_reports, warm_reports)
        if cold.is_passive != warm.is_passive
    )
    stats = warm_cache.stats
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else None
    return {
        "corners": len(family),
        "order": int(nominal.order),
        "cold_seconds": cold_seconds,
        "incremental_seconds": warm_seconds,
        "cold_seconds_per_corner": cold_seconds / len(family),
        "incremental_seconds_per_corner": warm_seconds / len(family),
        "speedup": speedup,
        "verdict_flips": flips,
        "all_passive_cold": all(r.is_passive for r in cold_reports),
        "incremental_hits": stats.incremental_hits,
        "incremental_fallbacks": stats.incremental_fallbacks,
        "update_residual_max": stats.update_residual_max,
    }


def _enforcement_round(mode: str) -> Dict:
    """Iterative enforcement: in-place incremental re-certs vs cold re-certs."""
    n_sections = 10 if mode == "smoke" else 30
    base = rlc_ladder(n_sections).system
    response = base.frequency_response(np.logspace(-3, 3, 120))
    margin = min(
        float(np.min(np.linalg.eigvalsh(0.5 * (v + v.conj().T)))) for v in response
    )
    bad = feedthrough_perturbation(base, margin + 0.3)
    # A deliberately understated first shift forces several escalation
    # iterations, which is exactly the loop the incremental tier accelerates.
    result = enforce_passivity_iterative(
        bad, margin_fraction=-0.5, growth=2.0, max_iterations=8
    )

    # Replay the loop's shift schedule twice, timing only the perturb ->
    # re-test core (the violation measurement is identical either way):
    # once cold per candidate, once with in-place incremental re-certs.
    from repro.applications.enforcement import _psd_part, _reassemble

    def replay(incremental: bool):
        cache = DecompositionCache()
        decomposition = cache.additive(bad)
        m1_psd = _psd_part(decomposition.m1)
        start = time.perf_counter()
        reports = []
        for index, shift in enumerate(result.shifts):
            candidate = _reassemble(decomposition, m1_psd, shift, bad.n_inputs)
            ancestor = "auto" if incremental and index else None
            reports.append(
                check_passivity(
                    candidate, method="gare", cache=cache, ancestor=ancestor
                )
            )
        return time.perf_counter() - start, reports

    cold_seconds, cold_reports = replay(incremental=False)
    warm_seconds, warm_reports = replay(incremental=True)

    flips = sum(
        1
        for cold, warm in zip(cold_reports, warm_reports)
        if cold.is_passive != warm.is_passive
    )
    flips += int(result.report.is_passive != cold_reports[-1].is_passive)
    return {
        "order": int(base.order),
        "iterations": result.iterations,
        "incremental_recerts": result.incremental_recerts,
        "repaired_passive": bool(result.report.is_passive),
        "cold_seconds": cold_seconds,
        "incremental_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else None,
        "verdict_flips": flips,
    }


def run_benchmark(mode: str) -> Dict:
    """Run the sweep and enforcement rounds and assemble the JSON document."""
    family = _family(mode)
    sweep = _sweep_round(family)
    print(
        f"[sweep] {sweep['corners']} corners of order {sweep['order']}: "
        f"cold {sweep['cold_seconds']:.2f}s "
        f"({sweep['cold_seconds_per_corner'] * 1e3:.0f} ms/corner), "
        f"incremental {sweep['incremental_seconds']:.2f}s "
        f"({sweep['incremental_seconds_per_corner'] * 1e3:.0f} ms/corner), "
        f"speedup {sweep['speedup']:.2f}x, "
        f"hits {sweep['incremental_hits']}, "
        f"fallbacks {sweep['incremental_fallbacks']}, "
        f"flips {sweep['verdict_flips']}"
    )
    enforcement = _enforcement_round(mode)
    print(
        f"[enforcement] order {enforcement['order']}: "
        f"{enforcement['iterations']} iterations "
        f"({enforcement['incremental_recerts']} incremental re-certs), "
        f"cold {enforcement['cold_seconds'] * 1e3:.0f} ms, "
        f"incremental {enforcement['incremental_seconds'] * 1e3:.0f} ms, "
        f"speedup {enforcement['speedup']:.2f}x"
    )
    min_speedup = SMOKE_MIN_SPEEDUP if mode == "smoke" else FULL_MIN_SPEEDUP
    return {
        "benchmark": "incremental_sweep",
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "speedup_target": f">= {min_speedup}x sweep throughput vs cold re-runs",
        "speedup_target_met": bool(
            sweep["speedup"] is not None and sweep["speedup"] >= min_speedup
        ),
        "verdicts_agree": sweep["verdict_flips"] == 0
        and enforcement["verdict_flips"] == 0,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "sweep_round": sweep,
        "enforcement_round": enforcement,
    }


def main(argv=None) -> int:
    """CLI entry point (see the module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized workloads (seconds)"
    )
    parser.add_argument(
        "--output",
        default="BENCH_sweep.json",
        help="path of the machine-readable result file",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the speedup target holds with zero "
        "verdict flips",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "default"
    document = run_benchmark(mode)
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2)
    print(f"wrote {args.output}")

    if args.check:
        failures = []
        if not document["speedup_target_met"]:
            failures.append(
                f"sweep speedup below target "
                f"({document['sweep_round']['speedup']:.2f}x, "
                f"target {document['speedup_target']})"
            )
        if not document["verdicts_agree"]:
            failures.append("incremental verdicts flipped vs cold verdicts")
        if document["sweep_round"]["incremental_hits"] == 0:
            failures.append("incremental tier never engaged")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print("CHECK OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
