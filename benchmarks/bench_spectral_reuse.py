"""Spectral-context reuse benchmark: the auto path with and without sharing.

Quantifies the compute-once ``SpectralContext`` refactor on dense admissible
workloads (``rlc_grid`` / ``coupled_line_bus`` meshes, order >= 200 in the
default mode).  Three configurations of ``check_passivity(system, "auto")``
are timed per workload:

* ``no_reuse`` — the pre-context behaviour: the structural profile and the
  selected method each run their own spectral analysis (profile without a
  cache, method runner without a cache), re-classifying the pencil three
  times per call.
* ``shared_cold`` — a fresh :class:`DecompositionCache` per call: profile,
  method and reduction share **one** ordered QZ within the call.
* ``shared_warm`` — a persistent cache across calls: after the first call
  every spectral intermediate is a hit and zero factorizations are performed.

Alongside the wall-clock, the script counts the actual
``scipy.linalg.qz``/``ordqz`` invocations of each configuration, and writes
everything to a machine-readable ``BENCH_spectral.json`` (the repo's first
benchmark-trajectory artifact; future PRs append comparable runs).

Usage::

    PYTHONPATH=src python benchmarks/bench_spectral_reuse.py            # default
    PYTHONPATH=src python benchmarks/bench_spectral_reuse.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_spectral_reuse.py --check    # assert >= 1.5x

``--check`` exits non-zero unless every order >= 200 workload meets the
acceptance target (>= 1.5x speedup from context reuse).
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from typing import Callable, Dict, List, Tuple

import numpy as np
import scipy
import scipy.linalg

from repro.bench import QZCounter
from repro.config import DEFAULT_TOLERANCES
from repro.circuits import coupled_line_bus, rlc_grid
from repro.engine import DecompositionCache, check_passivity, profile_system, select_method

#: Acceptance target of the spectral-context PR.
MIN_SPEEDUP = 1.5

SCHEMA_VERSION = 1


def _run_no_reuse(system) -> object:
    """Emulate the pre-context auto path: profile and method both uncached."""
    tol = DEFAULT_TOLERANCES
    profile = profile_system(system, tol, cache=None)
    spec = select_method(system, tol, profile=profile)
    return spec.run(system, tol=tol, cache=None)


def _run_shared_cold(system) -> object:
    return check_passivity(system, method="auto", cache=DecompositionCache())


def _time_config(
    runner: Callable[[], object], repeats: int
) -> Tuple[float, int, object]:
    """Median wall-clock, QZ count of one representative run, last report."""
    with QZCounter() as counter:
        report = runner()
    qz_calls = counter.total
    seconds: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        report = runner()
        seconds.append(time.perf_counter() - start)
    return statistics.median(seconds), qz_calls, report


def _workloads(mode: str) -> List[Tuple[str, Callable[[], object]]]:
    if mode == "smoke":
        # CI-sized: the same generators, small enough for a seconds-long run.
        return [
            ("rlc_grid-5x5", lambda: rlc_grid(5, 5, sparse=False).system),
            (
                "coupled_line_bus-2x4",
                lambda: coupled_line_bus(2, 4, sparse=False).system,
            ),
        ]
    grids = [
        # rows=11, cols=11 -> order 11*11 + 10*11 = 231.
        ("rlc_grid-11x11", lambda: rlc_grid(11, 11, sparse=False).system),
        # 4 lines x 17 sections -> order 4 * (3*17 + 1) = 208.
        (
            "coupled_line_bus-4x17",
            lambda: coupled_line_bus(4, 17, sparse=False).system,
        ),
    ]
    if mode == "full":
        grids.append(
            ("rlc_grid-14x14", lambda: rlc_grid(14, 14, sparse=False).system)
        )
    return grids


def run_benchmark(mode: str, repeats: int) -> Dict:
    results = []
    for name, factory in _workloads(mode):
        system = factory()
        entry: Dict = {"name": name, "order": system.order}

        no_reuse_s, no_reuse_qz, report = _time_config(
            lambda: _run_no_reuse(system), repeats
        )
        entry["method"] = report.method
        entry["is_passive"] = bool(report.is_passive)

        cold_s, cold_qz, _ = _time_config(
            lambda: _run_shared_cold(system), repeats
        )

        warm_cache = DecompositionCache()
        check_passivity(system, method="auto", cache=warm_cache)  # populate
        warm_s, warm_qz, warm_report = _time_config(
            lambda: check_passivity(system, method="auto", cache=warm_cache),
            repeats,
        )
        entry["warm_factorizations"] = warm_report.diagnostics["engine"][
            "factorizations"
        ]

        entry["repeats"] = repeats
        entry["seconds"] = {
            "no_reuse": no_reuse_s,
            "shared_cold": cold_s,
            "shared_warm": warm_s,
        }
        entry["qz_calls"] = {
            "no_reuse": no_reuse_qz,
            "shared_cold": cold_qz,
            "shared_warm": warm_qz,
        }
        entry["speedup"] = {
            "cold_vs_no_reuse": no_reuse_s / cold_s if cold_s > 0 else float("inf"),
            "warm_vs_no_reuse": no_reuse_s / warm_s if warm_s > 0 else float("inf"),
        }
        entry["meets_target"] = bool(
            entry["speedup"]["warm_vs_no_reuse"] >= MIN_SPEEDUP
        )
        results.append(entry)
        print(
            f"{name} (order {system.order}, {report.method}): "
            f"no_reuse {no_reuse_s * 1e3:.1f} ms ({no_reuse_qz} QZ) | "
            f"cold {cold_s * 1e3:.1f} ms ({cold_qz} QZ) | "
            f"warm {warm_s * 1e3:.1f} ms ({warm_qz} QZ) | "
            f"speedup cold {entry['speedup']['cold_vs_no_reuse']:.2f}x, "
            f"warm {entry['speedup']['warm_vs_no_reuse']:.2f}x"
        )

    large = [r for r in results if r["order"] >= 200]
    return {
        "benchmark": "spectral_reuse",
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "min_speedup_target": MIN_SPEEDUP,
        "target_scope": "order >= 200 workloads, warm_vs_no_reuse",
        # null when no qualifying workload ran (smoke mode): the target was
        # not evaluated, which is different from failing it.
        "target_met": all(r["meets_target"] for r in large) if large else None,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "workloads": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized workloads (seconds, not minutes)"
    )
    parser.add_argument(
        "--full", action="store_true", help="add the largest workload round"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per configuration"
    )
    parser.add_argument(
        "--output",
        default="BENCH_spectral.json",
        help="path of the machine-readable result file",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero unless every order >= 200 workload is >= {MIN_SPEEDUP}x",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else ("full" if args.full else "default")
    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 3)
    payload = run_benchmark(mode, repeats)

    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        large = [w for w in payload["workloads"] if w["order"] >= 200]
        if not large:
            print("--check requires at least one order >= 200 workload", file=sys.stderr)
            return 2
        if payload["target_met"] is not True:
            failing = [w["name"] for w in large if not w["meets_target"]]
            print(
                f"speedup target {MIN_SPEEDUP}x missed on: {', '.join(failing)}",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
