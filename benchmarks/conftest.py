"""Shared configuration of the benchmark suite.

Two environment variables control the sweep size so that the default
``pytest benchmarks/ --benchmark-only`` run finishes in a few minutes while a
full paper-scale reproduction stays one flag away:

* ``REPRO_BENCH_FULL=1`` — benchmark the complete Table 1 grid
  (orders 20..400 and the LMI test up to order 60, exactly like the paper).
  Without it the grid stops at order 100 and the LMI test at order 40.
* ``REPRO_BENCH_SMOKE=1`` — CI smoke mode: a reduced order grid (20, 40) with
  the LMI test at order 20 only, keeping the whole run under a minute.
* ``REPRO_BENCH_LMI_LIMIT=<order>`` — override the LMI cut-off explicitly.
"""

from __future__ import annotations

import os

import pytest

from repro.circuits import paper_benchmark_model


def full_run() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def smoke_run() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def table1_orders() -> tuple:
    if smoke_run():
        return (20, 40)
    if full_run():
        return (20, 40, 60, 80, 100, 200, 400)
    return (20, 40, 60, 80, 100)


def lmi_order_limit() -> int:
    if "REPRO_BENCH_LMI_LIMIT" in os.environ:
        return int(os.environ["REPRO_BENCH_LMI_LIMIT"])
    if smoke_run():
        return 20
    return 60 if full_run() else 40


@pytest.fixture(scope="session")
def benchmark_models():
    """Pre-assembled benchmark models keyed by order (assembly excluded from timing)."""
    return {
        order: paper_benchmark_model(order, n_impulsive_stubs=2).system
        for order in table1_orders()
    }
