"""Batched-execution benchmark: micro-batch throughput and shm transport.

Measures the two hot-path optimizations of the process-pool engine:

* **micro-batch throughput**: a fleet of small (order ≤ 100) dense systems
  swept through :class:`~repro.engine.BatchRunner`'s process backend with
  the ``batch_small_systems`` policy off vs. on — jobs per second for each.
  On real parallel hardware (``cores > 1``) batching must buy at least
  ``2x`` jobs/s: per-system dispatch overhead dominates sub-ms jobs, and
  grouping amortizes it.
* **payload bytes moved**: a large (order ~1k default, ~256 smoke)
  :class:`~repro.linalg.pencil.SpectralContext` shipped to a worker as
  pickled bytes vs. as a shared-memory :class:`~repro.engine.ArrayShipment`
  descriptor.  With shm available the descriptor must be at least ``10x``
  smaller than the pickled context — the payload stays in the segment.

Everything is written to a machine-readable ``BENCH_batched.json``
(benchmark-trajectory artifact, same conventions as ``BENCH_service.json``).

Usage::

    PYTHONPATH=src python benchmarks/bench_batched.py            # default
    PYTHONPATH=src python benchmarks/bench_batched.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_batched.py --check    # assert targets
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import time
from typing import Dict, List

import numpy as np
import scipy

from repro.circuits import rlc_ladder
from repro.config import DEFAULT_TOLERANCES
from repro.engine.runner import BatchRunner
from repro.engine.shm import ArrayArena, ship_context, shm_available
from repro.linalg.pencil import compute_spectral_context

SCHEMA_VERSION = 1

#: Micro-batching must at least double small-job throughput (cores > 1).
MIN_BATCH_SPEEDUP = 2.0
#: The shm descriptor must beat pickling the context by at least this factor.
MIN_PICKLE_BYTES_RATIO = 10.0


def _small_fleet(mode: str) -> List:
    """Small dense systems (order ≤ 100) whose jobs are dispatch-dominated."""
    count = 16 if mode == "smoke" else 32
    return [rlc_ladder(2 + (k % 4)).system for k in range(count)]


def _sweep(systems: List, batch: bool) -> Dict:
    """One process-backend sweep; returns timing + transport telemetry."""
    runner = BatchRunner(
        backend="process",
        batch_small_systems=batch,
        precompute_spectral=False,
    )
    start = time.perf_counter()
    outcome = runner.run(systems, methods=("gare",))
    elapsed = time.perf_counter() - start
    n_jobs = len(outcome.results)
    failed = [r for r in outcome.results if not r.ok]
    return {
        "batch_small_systems": batch,
        "jobs": n_jobs,
        "seconds": elapsed,
        "jobs_per_second": n_jobs / elapsed if elapsed > 0 else 0.0,
        "n_batches": outcome.n_batches,
        "n_batched_jobs": outcome.n_batched_jobs,
        "batch_occupancy": outcome.batch_occupancy,
        "transport": outcome.transport,
        "shm_bytes": outcome.shm_bytes,
        "workers": outcome.n_workers,
        "failures": len(failed),
    }


def _transport_round(mode: str) -> Dict:
    """Bytes crossing the pickle pipe: context pickled vs. shm descriptor."""
    order = 256 if mode == "smoke" else 1000
    rng = np.random.default_rng(2006)
    a = rng.standard_normal((order, order)) - 2.0 * order * np.eye(order)
    context = compute_spectral_context(np.eye(order), a, DEFAULT_TOLERANCES)
    pickled_context_bytes = len(pickle.dumps(context.to_arrays()))
    entry = {
        "order": order,
        "context_payload_bytes": int(
            sum(v.nbytes for v in context.to_arrays().values())
        ),
        "pickled_context_bytes": pickled_context_bytes,
        "shm_available": shm_available(),
        "shm_descriptor_bytes": None,
        "shm_payload_bytes": None,
        "pickle_bytes_ratio": None,
    }
    if shm_available():
        with ArrayArena(min_bytes=0) as arena:
            shipment = ship_context(arena, context)
            descriptor_bytes = len(pickle.dumps(shipment))
            entry["shm_descriptor_bytes"] = descriptor_bytes
            entry["shm_payload_bytes"] = shipment.nbytes
            entry["pickle_bytes_ratio"] = (
                pickled_context_bytes / descriptor_bytes if descriptor_bytes else None
            )
            arena.release(shipment)
    return entry


def run_benchmark(mode: str) -> Dict:
    """Run both rounds and assemble the JSON document."""
    systems = _small_fleet(mode)
    unbatched = _sweep(systems, batch=False)
    print(
        f"[throughput] unbatched: {unbatched['jobs']} jobs in "
        f"{unbatched['seconds'] * 1e3:.1f} ms "
        f"({unbatched['jobs_per_second']:.1f} jobs/s)"
    )
    batched = _sweep(systems, batch=True)
    print(
        f"[throughput] batched:   {batched['jobs']} jobs in "
        f"{batched['seconds'] * 1e3:.1f} ms "
        f"({batched['jobs_per_second']:.1f} jobs/s, "
        f"{batched['n_batches']} batches, "
        f"occupancy {batched['batch_occupancy']:.1f})"
    )
    speedup = (
        batched["jobs_per_second"] / unbatched["jobs_per_second"]
        if unbatched["jobs_per_second"] > 0
        else None
    )

    transport = _transport_round(mode)
    if transport["pickle_bytes_ratio"] is not None:
        print(
            f"[transport] order-{transport['order']} context: "
            f"{transport['pickled_context_bytes']} pickled bytes vs "
            f"{transport['shm_descriptor_bytes']} descriptor bytes "
            f"({transport['pickle_bytes_ratio']:.0f}x fewer on the pipe)"
        )
    else:
        print("[transport] shared memory unavailable; pickle-only round")

    return {
        "benchmark": "batched_transport",
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "throughput_target": f">= {MIN_BATCH_SPEEDUP}x jobs/s (cores > 1)",
        "transport_target": f">= {MIN_PICKLE_BYTES_RATIO}x fewer pickled bytes",
        "batch_speedup": speedup,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "throughput_rounds": [unbatched, batched],
        "transport_round": transport,
    }


def main(argv=None) -> int:
    """CLI entry point (see the module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized workloads (seconds)"
    )
    parser.add_argument(
        "--output",
        default="BENCH_batched.json",
        help="path of the machine-readable result file",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the speedup and byte-ratio targets hold",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "default"
    document = run_benchmark(mode)
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2)
    print(f"wrote {args.output}")

    if args.check:
        failures = []
        for entry in document["throughput_rounds"]:
            if entry["failures"]:
                failures.append(
                    f"{entry['failures']} job(s) failed in the "
                    f"{'batched' if entry['batch_small_systems'] else 'unbatched'} sweep"
                )
        cores = os.cpu_count() or 1
        speedup = document["batch_speedup"]
        if cores > 1:
            # Real parallel hardware: grouping must amortize dispatch.
            if speedup is None or speedup < MIN_BATCH_SPEEDUP:
                failures.append(
                    f"micro-batching speedup {speedup} below "
                    f"{MIN_BATCH_SPEEDUP}x (cores = {cores})"
                )
        elif speedup is not None and speedup < 0.7:
            # Single-core box: only guard against a regression.
            failures.append(
                f"micro-batching degraded throughput ({speedup}x, single core)"
            )
        ratio = document["transport_round"]["pickle_bytes_ratio"]
        if document["transport_round"]["shm_available"]:
            if ratio is None or ratio < MIN_PICKLE_BYTES_RATIO:
                failures.append(
                    f"shm descriptor saved only {ratio}x pickled bytes "
                    f"(target {MIN_PICKLE_BYTES_RATIO}x)"
                )
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print("CHECK OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
