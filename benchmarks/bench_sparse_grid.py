"""Sparse backend benchmark: ``shh-sparse`` vs. the dense path on RC grids.

Acceptance target of the sparse-backend PR: on a >= 2k-node grid the sparse
path must beat the dense path by >= 5x in speed *or* memory.  Both are
measured here:

* **speedup** — dense ``shh`` vs. ``shh-sparse`` head-to-head on grids the
  dense pipeline can still handle (the dense cost grows like O((2n)^3); at
  order ~256 the measured gap is already two to three orders of magnitude),
* **memory** — on the >= 2k-node grid the CSR stamps are compared against the
  2 * n^2 * 8 bytes the dense pipeline's ``E``/``A`` views would occupy (the
  dense run itself would take tens of minutes there, which is precisely the
  cap the sparse backend removes).

Sizes follow the shared smoke/full conventions of ``benchmarks/conftest.py``:
``REPRO_BENCH_SMOKE=1`` shrinks the head-to-head grid to 12x12 for CI, the
default is 16x16, and ``REPRO_BENCH_FULL=1`` adds a 24x24 head-to-head round.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import full_run, smoke_run
from repro.circuits import rc_grid
from repro.engine import check_passivity


def head_to_head_grids() -> tuple:
    if smoke_run():
        return ((12, 12),)
    if full_run():
        return ((16, 16), (24, 24))
    return ((16, 16),)


#: The acceptance-scale grid: 46 x 46 = 2116 nodes >= 2k.
LARGE_GRID = (46, 46)

HEAD_TO_HEAD = head_to_head_grids()


@pytest.fixture(scope="module")
def grid_systems():
    systems = {}
    for rows, cols in HEAD_TO_HEAD:
        systems[(rows, cols, "dense")] = rc_grid(rows, cols, sparse=False).system
        systems[(rows, cols, "sparse")] = rc_grid(rows, cols, sparse=True).system
    systems["large"] = rc_grid(*LARGE_GRID, sparse=True).system
    return systems


@pytest.mark.parametrize("rows,cols", HEAD_TO_HEAD)
def test_sparse_speedup_over_dense_path(benchmark, grid_systems, rows, cols):
    """Head-to-head: the sparse method must be >= 5x faster than dense SHH."""
    dense_system = grid_systems[(rows, cols, "dense")]
    sparse_system = grid_systems[(rows, cols, "sparse")]

    start = time.perf_counter()
    dense_report = check_passivity(dense_system, method="shh")
    dense_seconds = time.perf_counter() - start
    assert dense_report.is_passive, dense_report.failure_reason

    # Manual timing for the assertion (works under --benchmark-disable too);
    # the pedantic run below feeds the benchmark report when enabled.
    start = time.perf_counter()
    sparse_report = check_passivity(sparse_system, "shh-sparse")
    sparse_seconds = time.perf_counter() - start
    assert sparse_report.is_passive, sparse_report.failure_reason

    benchmark.pedantic(
        check_passivity,
        args=(sparse_system, "shh-sparse"),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )

    speedup = dense_seconds / sparse_seconds
    benchmark.extra_info["order"] = dense_system.order
    benchmark.extra_info["dense_seconds"] = dense_seconds
    benchmark.extra_info["speedup"] = speedup
    # Guard against timer noise on tiny grids: only assert when the dense
    # side did measurable work (it does, from 12x12 up).
    if dense_seconds >= 0.05:
        assert speedup >= 5.0, f"speedup {speedup:.1f}x below the 5x target"


def test_large_grid_memory_reduction(grid_systems):
    """>= 2k nodes: CSR stamps must undercut the dense E/A views >= 5x."""
    system = grid_systems["large"]
    assert system.order >= 2000
    sparse_bytes = 0
    for matrix in (system.sparse_e, system.sparse_a):
        sparse_bytes += matrix.data.nbytes + matrix.indices.nbytes + matrix.indptr.nbytes
    dense_bytes = 2 * system.order ** 2 * 8
    reduction = dense_bytes / sparse_bytes
    assert reduction >= 5.0, f"memory reduction {reduction:.1f}x below the 5x target"


def test_large_grid_sparse_verdict(benchmark, grid_systems):
    """The >= 2k-node grid itself: auto-dispatched sparse verdict, timed."""
    system = grid_systems["large"]
    report = benchmark.pedantic(
        check_passivity,
        args=(system,),
        kwargs={"method": "auto"},
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    assert report.method == "shh-sparse"
    assert report.is_passive, report.failure_reason
    benchmark.extra_info["order"] = system.order
    benchmark.extra_info["nnz"] = system.nnz
