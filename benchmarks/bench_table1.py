"""Reproduction of Table 1: CPU time of the three passivity tests vs. model order.

Paper reference values (seconds, Matlab 7.0.4 on a 2.8 GHz PC):

    order    LMI        proposed   Weierstrass
    20       5.633      0.1328     0.0859
    40       144.18     0.1875     0.1407
    60       1550.25    0.3047     0.2578
    80       NIL        0.5547     0.5136
    100      NIL        0.9922     1.0078
    200      NIL        14.7891    15.285
    400      NIL        155.1875   185.016

Absolute numbers differ on this substrate (NumPy instead of Matlab+GUPTRI,
modern hardware); the qualitative claims under test are:

* the LMI test cost grows like ~n^5-n^6 and becomes impractical quickly,
* the proposed SHH test and the Weierstrass test are both O(n^3) and of
  comparable cost, with the proposed test avoiding ill-conditioned transforms.

Run ``REPRO_BENCH_FULL=1 pytest benchmarks/bench_table1.py --benchmark-only``
for the complete paper grid.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import lmi_order_limit, table1_orders
from repro.engine import check_passivity

ORDERS = table1_orders()
LMI_ORDERS = tuple(order for order in ORDERS if order <= lmi_order_limit())


# Each timed call goes through the engine with a fresh per-call cache, so the
# timing includes the method's full decomposition work, like the paper's
# Table 1 (a warm shared cache would hide the dominant cost).


@pytest.mark.parametrize("order", ORDERS)
def test_table1_proposed_shh(benchmark, benchmark_models, order):
    """Table 1, 'Proposed method' column (engine dispatch, method='proposed')."""
    system = benchmark_models[order]
    report = benchmark.pedantic(
        check_passivity,
        args=(system, "proposed"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert report.method == "shh"
    assert report.is_passive, report.failure_reason


@pytest.mark.parametrize("order", ORDERS)
def test_table1_weierstrass(benchmark, benchmark_models, order):
    """Table 1, 'Weierstrass decomposition' column."""
    system = benchmark_models[order]
    report = benchmark.pedantic(
        check_passivity,
        args=(system, "weierstrass"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert report.is_passive, report.failure_reason


@pytest.mark.parametrize("order", LMI_ORDERS)
def test_table1_lmi(benchmark, benchmark_models, order):
    """Table 1, 'LMI Test' column (orders above the limit are NIL in the paper).

    The timing is the reproduction target here.  On these MNA workloads
    (``D = 0``, impulsive modes) the positive-real LMIs are only *marginally*
    feasible — ``X = I`` satisfies them with zero margin — so the generic
    interior-point verdict is not reliable and is recorded as extra info
    rather than asserted; see EXPERIMENTS.md for the discussion.  The
    benchmark asserts that the solver actually ran to its decision.
    """
    system = benchmark_models[order]
    report = benchmark.pedantic(
        check_passivity,
        args=(system, "lmi"),
        kwargs={"order_limit": None},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert report.diagnostics["newton_steps"] >= 1
    benchmark.extra_info["reported_passive"] = report.is_passive
    benchmark.extra_info["phase_one_t"] = report.diagnostics["phase_one_t"]
