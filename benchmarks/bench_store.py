"""Persistent-store benchmark: warm-start speedup and cross-process dedup.

Quantifies the L2 decomposition store on the workloads the ISSUE targets
(dense admissible grids, order >= 200 in the default mode):

* **Warm-start round** — per workload, three configurations of
  ``check_passivity(system, "auto")`` are timed:

  - ``cold_store`` — a fresh :class:`DecompositionCache` writing through to
    a *fresh* (empty) store: full compute plus the persistence cost,
  - ``warm_start`` — a **fresh cache** attached to the *populated* store:
    every decomposition rehydrates from disk, zero QZ factorizations,
  - ``no_store`` — a fresh store-less cache, for reference.

  The acceptance target is ``cold_store / warm_start >= 3`` on order >= 200
  workloads: restarting a service (or booting a new worker) must be at
  least 3x cheaper than computing from scratch.

* **Cross-process dedup round** — a *separate interpreter* (``subprocess``)
  checks a system against the shared store twice: the first process pays
  the factorizations, the second must report **zero** QZ calls and
  ``l2_hits > 0``.  This is the fleet-wide compute-once guarantee.

Results go to a machine-readable ``BENCH_store.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_store.py            # default
    PYTHONPATH=src python benchmarks/bench_store.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_store.py --check    # assert targets

``--check`` exits non-zero unless every order >= 200 workload meets the
>= 3x warm-start target (skipped when no such workload ran, e.g. in smoke
mode) and the cross-process round performed zero QZ factorizations (always
evaluated).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Tuple

import numpy as np
import scipy

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
sys.path.insert(0, str(REPO_SRC))

from repro.bench import QZCounter  # noqa: E402
from repro.circuits import coupled_line_bus, rlc_grid  # noqa: E402
from repro.engine import DecompositionCache, check_passivity  # noqa: E402
from repro.store import DecompositionStore  # noqa: E402

#: Acceptance target of the persistent-store PR.
MIN_WARM_SPEEDUP = 3.0

SCHEMA_VERSION = 1

#: The subprocess used by the cross-process round (reports one JSON line).
_SUBPROCESS_SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro.bench import QZCounter
from repro.circuits import rlc_grid
from repro.engine import DecompositionCache
from repro import check_passivity
from repro.store import DecompositionStore

cache = DecompositionCache(store=DecompositionStore(sys.argv[1]))
system = rlc_grid({rows}, {cols}, sparse=False).system
with QZCounter() as counter:
    report = check_passivity(system, method="auto", cache=cache)
print(json.dumps({{
    "is_passive": bool(report.is_passive),
    "qz_total": counter.total,
    "factorizations": cache.stats.factorizations,
    "l2_hits": cache.stats.l2_hits,
}}))
"""


def _median_seconds(runner: Callable[[], object], repeats: int) -> float:
    seconds: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        runner()
        seconds.append(time.perf_counter() - start)
    return statistics.median(seconds)


def _workloads(mode: str) -> List[Tuple[str, Callable[[], object]]]:
    if mode == "smoke":
        return [
            ("rlc_grid-5x5", lambda: rlc_grid(5, 5, sparse=False).system),
        ]
    grids = [
        # rows=11, cols=11 -> order 231 (>= 200: in target scope).
        ("rlc_grid-11x11", lambda: rlc_grid(11, 11, sparse=False).system),
        # 4 lines x 17 sections -> order 208.
        (
            "coupled_line_bus-4x17",
            lambda: coupled_line_bus(4, 17, sparse=False).system,
        ),
    ]
    if mode == "full":
        grids.append(
            ("rlc_grid-14x14", lambda: rlc_grid(14, 14, sparse=False).system)
        )
    return grids


def _warm_start_round(mode: str, repeats: int, scratch: Path) -> List[Dict]:
    results = []
    for name, factory in _workloads(mode):
        system = factory()
        entry: Dict = {"name": name, "order": system.order, "repeats": repeats}

        store_root = scratch / f"store-{name}"

        def run_cold() -> object:
            # Fresh cache, fresh (emptied) store: compute + persist.
            shutil.rmtree(store_root, ignore_errors=True)
            return check_passivity(
                system,
                method="auto",
                cache=DecompositionCache(store=DecompositionStore(store_root)),
            )

        def run_warm() -> object:
            # Fresh cache, *populated* store: pure rehydration.
            return check_passivity(
                system,
                method="auto",
                cache=DecompositionCache(store=DecompositionStore(store_root)),
            )

        def run_no_store() -> object:
            return check_passivity(
                system, method="auto", cache=DecompositionCache()
            )

        cold_s = _median_seconds(run_cold, repeats)
        # run_cold leaves the store populated; count the warm QZ calls once.
        warm_cache = DecompositionCache(store=DecompositionStore(store_root))
        with QZCounter() as counter:
            report = check_passivity(system, method="auto", cache=warm_cache)
        entry["method"] = report.method
        entry["is_passive"] = bool(report.is_passive)
        entry["warm_qz_calls"] = counter.total
        entry["warm_l2_hits"] = warm_cache.stats.l2_hits
        warm_s = _median_seconds(run_warm, repeats)
        no_store_s = _median_seconds(run_no_store, repeats)
        store_bytes = DecompositionStore(store_root).total_bytes

        entry["seconds"] = {
            "cold_store": cold_s,
            "warm_start": warm_s,
            "no_store": no_store_s,
        }
        entry["store_bytes"] = store_bytes
        entry["speedup"] = {
            "warm_vs_cold": cold_s / warm_s if warm_s > 0 else float("inf"),
            "warm_vs_no_store": no_store_s / warm_s if warm_s > 0 else float("inf"),
        }
        entry["meets_target"] = bool(
            entry["speedup"]["warm_vs_cold"] >= MIN_WARM_SPEEDUP
        )
        results.append(entry)
        print(
            f"{name} (order {system.order}, {report.method}): "
            f"cold {cold_s * 1e3:.1f} ms | warm {warm_s * 1e3:.1f} ms "
            f"({entry['warm_qz_calls']} QZ, {entry['warm_l2_hits']} L2 hits, "
            f"{store_bytes / 1024:.0f} KiB on disk) | "
            f"speedup {entry['speedup']['warm_vs_cold']:.2f}x"
        )
    return results


def _cross_process_round(mode: str, scratch: Path) -> Dict:
    rows = cols = 5 if mode == "smoke" else 8
    store_root = scratch / "store-cross-process"
    script = _SUBPROCESS_SCRIPT.format(src=str(REPO_SRC), rows=rows, cols=cols)

    def spawn() -> Dict:
        completed = subprocess.run(
            [sys.executable, "-c", script, str(store_root)],
            capture_output=True,
            text=True,
            timeout=600,
            env=dict(os.environ),
        )
        if completed.returncode != 0:
            raise RuntimeError(
                f"cross-process probe failed:\n{completed.stderr}"
            )
        return json.loads(completed.stdout.strip().splitlines()[-1])

    first = spawn()
    second = spawn()
    entry = {
        "workload": f"rlc_grid-{rows}x{cols}",
        "first_process": first,
        "second_process": second,
        "dedup_ok": bool(
            first["qz_total"] >= 1
            and second["qz_total"] == 0
            and second["factorizations"] == 0
            and second["l2_hits"] > 0
        ),
    }
    print(
        f"cross-process ({entry['workload']}): first {first['qz_total']} QZ | "
        f"second {second['qz_total']} QZ, {second['l2_hits']} L2 hits -> "
        f"{'OK' if entry['dedup_ok'] else 'FAILED'}"
    )
    return entry


def run_benchmark(mode: str, repeats: int) -> Dict:
    scratch = Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        workloads = _warm_start_round(mode, repeats, scratch)
        cross_process = _cross_process_round(mode, scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    large = [w for w in workloads if w["order"] >= 200]
    return {
        "benchmark": "store_warm_start",
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "min_warm_speedup_target": MIN_WARM_SPEEDUP,
        "target_scope": "order >= 200 workloads, warm_vs_cold",
        # null when no qualifying workload ran (smoke mode): the target was
        # not evaluated, which is different from failing it.
        "target_met": all(w["meets_target"] for w in large) if large else None,
        "cross_process": cross_process,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
        },
        "workloads": workloads,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized workloads (seconds, not minutes)"
    )
    parser.add_argument(
        "--full", action="store_true", help="add the largest workload round"
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="timing repeats per configuration"
    )
    parser.add_argument(
        "--output",
        default="BENCH_store.json",
        help="path of the machine-readable result file",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=f"exit non-zero unless order >= 200 workloads reach "
        f">= {MIN_WARM_SPEEDUP}x and the cross-process round is QZ-free",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else ("full" if args.full else "default")
    repeats = args.repeats if args.repeats is not None else (1 if args.smoke else 3)
    payload = run_benchmark(mode, repeats)

    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")

    if args.check:
        failures = []
        if not payload["cross_process"]["dedup_ok"]:
            failures.append(
                "cross-process round was not QZ-free "
                f"({payload['cross_process']})"
            )
        if payload["target_met"] is False:
            failing = [
                w["name"]
                for w in payload["workloads"]
                if w["order"] >= 200 and not w["meets_target"]
            ]
            failures.append(
                f"warm-start target {MIN_WARM_SPEEDUP}x missed on: "
                f"{', '.join(failing)}"
            )
        if failures:
            for failure in failures:
                print(failure, file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
