"""Service throughput benchmark: queue scaling and fingerprint-level dedup.

Drives the :class:`~repro.service.PassivityService` job queue with a traffic
mix modeled on the heavy-duplicate serving scenario — many concurrent
clients submitting a small set of distinct macromodels — and measures:

* **throughput scaling with worker count**: the same job batch at
  ``--workers`` 1/2/4 (jobs per second, per pool size),
* **fingerprint-level dedup**: submissions vs. executed jobs vs. actual
  decomposition factorizations (the ``stats()`` telemetry the ISSUE
  acceptance criterion pins: ≥ 8 concurrent submissions of 4 distinct
  fingerprints must cost ≤ 4 factorizations),
* **serving overhead**: service wall-clock vs. the same cells run directly
  through ``check_passivity`` with a shared cache.

Everything is written to a machine-readable ``BENCH_service.json``
(benchmark-trajectory artifact, same conventions as
``BENCH_spectral.json``).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # default
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_service.py --check    # assert dedup + scaling
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import threading
import time
from typing import Dict, List

import numpy as np
import scipy

from repro.circuits import coupled_line_bus, rlc_grid, rlc_ladder
from repro.service import PassivityService

SCHEMA_VERSION = 1

#: Acceptance: duplicate traffic must not multiply the factorization count.
MAX_FACTORIZATIONS_PER_FINGERPRINT = 1


def _dedup_systems(mode: str) -> List:
    """The distinct-fingerprint working set of the duplicate-traffic round."""
    if mode == "smoke":
        return [rlc_ladder(n).system for n in (4, 5, 6, 7)]
    return [
        rlc_grid(4, 4, sparse=False).system,
        rlc_grid(5, 5, sparse=False).system,
        coupled_line_bus(2, 3, sparse=False).system,
        rlc_ladder(12).system,
    ]


def _scaling_systems(mode: str, n_jobs: int) -> List:
    """``n_jobs`` systems with *distinct* fingerprints for the scaling rounds.

    Dedup would collapse duplicate traffic to almost no work (that is the
    point of the dedup round), so worker scaling is measured on unique
    ~O(10 ms) dense jobs whose LAPACK kernels release the GIL.
    """
    if mode == "smoke":
        return [rlc_ladder(6 + k).system for k in range(n_jobs)]
    # Orders ~60-100: heavy enough for pool parallelism to dominate the
    # queue overhead, light enough for a minutes-free default run.
    return [rlc_ladder(25 + 2 * k).system for k in range(n_jobs)]


def _drive(
    systems: List,
    n_clients: int,
    submissions_per_client: int,
    workers: int,
    distinct_per_client: bool,
) -> Dict:
    """Run one traffic round against a fresh service; return its metrics.

    ``distinct_per_client=True`` partitions ``systems`` so every submission
    is a unique fingerprint (scaling measurement); ``False`` round-robins a
    small working set so clients collide on fingerprints (dedup
    measurement).
    """
    service = PassivityService(max_workers=workers)
    barrier = threading.Barrier(n_clients)
    errors: List[str] = []

    def pick(client_index: int, k: int):
        if distinct_per_client:
            return systems[
                (client_index * submissions_per_client + k) % len(systems)
            ]
        return systems[(client_index + k) % len(systems)]

    def client(client_index: int) -> None:
        barrier.wait()
        handles = [
            service.submit(pick(client_index, k))
            for k in range(submissions_per_client)
        ]
        for handle in handles:
            try:
                handle.result(timeout=600.0)
            except Exception as error:  # noqa: BLE001 - recorded, not raised
                errors.append(f"{type(error).__name__}: {error}")

    with service:
        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(n_clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        stats = service.stats()

    n_jobs = n_clients * submissions_per_client
    return {
        "workers": workers,
        "clients": n_clients,
        "submissions": n_jobs,
        "distinct_fingerprints": len(systems),
        "seconds": elapsed,
        "throughput_jobs_per_second": n_jobs / elapsed if elapsed > 0 else 0.0,
        "completed": stats.completed,
        "deduplicated": stats.deduplicated,
        "factorizations": stats.cache["factorizations"],
        "pencil_factorizations": stats.cache["by_kind"]
        .get("pencil_spectrum", {})
        .get("factorizations", 0),
        "errors": errors,
    }


def run_benchmark(mode: str, worker_counts: List[int]) -> Dict:
    """Run the scaling and dedup rounds and assemble the JSON document."""
    n_jobs = 8 if mode == "smoke" else 16
    unique = _scaling_systems(mode, n_jobs)

    # Scaling: every submission is a distinct fingerprint, so each job is
    # real work and throughput tracks the worker pool.  Each round uses a
    # fresh service (fresh cache): rounds are comparable cold runs.
    scaling_rounds = []
    for workers in worker_counts:
        entry = _drive(unique, n_clients=4, submissions_per_client=n_jobs // 4,
                       workers=workers, distinct_per_client=True)
        scaling_rounds.append(entry)
        print(
            f"[scaling] workers={workers}: {entry['submissions']} jobs in "
            f"{entry['seconds'] * 1e3:.1f} ms "
            f"({entry['throughput_jobs_per_second']:.1f} jobs/s)"
        )

    # Dedup: heavy duplicate traffic over a 4-fingerprint working set (the
    # ISSUE acceptance shape: >= 8 concurrent submissions, <= 4
    # factorizations).
    dedup_round = _drive(
        _dedup_systems(mode),
        n_clients=8,
        submissions_per_client=4,
        workers=max(worker_counts),
        distinct_per_client=False,
    )
    print(
        f"[dedup] {dedup_round['submissions']} submissions of "
        f"{dedup_round['distinct_fingerprints']} fingerprints: "
        f"dedup {dedup_round['deduplicated']}, "
        f"pencil factorizations {dedup_round['pencil_factorizations']}"
    )

    base = scaling_rounds[0]["throughput_jobs_per_second"]
    best = max(r["throughput_jobs_per_second"] for r in scaling_rounds)
    dedup_ok = (
        dedup_round["pencil_factorizations"]
        <= MAX_FACTORIZATIONS_PER_FINGERPRINT
        * dedup_round["distinct_fingerprints"]
        and not dedup_round["errors"]
    )
    return {
        "benchmark": "service_throughput",
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "dedup_target": (
            f"<= {MAX_FACTORIZATIONS_PER_FINGERPRINT} pencil factorization(s) "
            f"per distinct fingerprint"
        ),
        "dedup_target_met": dedup_ok,
        "scaling_vs_one_worker": best / base if base > 0 else None,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "scaling_rounds": scaling_rounds,
        "dedup_round": dedup_round,
    }


def main(argv=None) -> int:
    """CLI entry point (see the module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized workloads (seconds)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="worker pool sizes of the scaling rounds",
    )
    parser.add_argument(
        "--output",
        default="BENCH_service.json",
        help="path of the machine-readable result file",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless dedup holds and throughput scales",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "default"
    document = run_benchmark(mode, list(args.workers))
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2)
    print(f"wrote {args.output}")

    if args.check:
        failures = []
        if not document["dedup_target_met"]:
            failures.append("fingerprint-level dedup target not met")
        scaling = document["scaling_vs_one_worker"]
        cores = os.cpu_count() or 1
        if mode == "default" and len(args.workers) > 1 and cores > 1:
            # Real parallel hardware and real-sized jobs: a bigger pool must
            # buy throughput.
            if scaling is None or scaling < 1.2:
                failures.append(
                    f"throughput did not scale with workers "
                    f"(best/base = {scaling}, cores = {cores})"
                )
        elif scaling is not None and scaling < 0.7:
            # Smoke mode (sub-ms jobs, overhead-dominated) or a single-core
            # box: scaling is not meaningful; only guard that queue overhead
            # does not degrade with pool size.
            failures.append(
                f"throughput degraded with workers (best/base = {scaling}, "
                f"mode = {mode}, cores = {cores})"
            )
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print("CHECK OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
