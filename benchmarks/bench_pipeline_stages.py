"""Ablation: cost breakdown of the proposed test's pipeline stages.

The paper notes that the bottleneck of the proposed test is the identification
of the stable invariant subspace (Eq. 22).  This benchmark times each stage of
the Figure-1 flow separately so the cost distribution can be inspected:

1. forming ``Phi`` (trivial),
2. impulsive-mode removal (SVD based, Section 3.1),
3. nondynamic-mode removal (Section 3.2),
4. conversion to a standard Hamiltonian matrix + stable/anti-stable splitting
   + Lyapunov decoupling (Section 3.3 — expected to dominate),
5. the final Hamiltonian positive-realness check.
"""

from __future__ import annotations

import pytest

from repro.circuits import paper_benchmark_model
from repro.descriptor import build_phi_realization
from repro.passivity import (
    extract_stable_proper_part,
    proper_positive_real_test,
    remove_impulsive_modes,
    remove_nondynamic_modes,
    restore_shh_structure,
)

ORDER = 80


@pytest.fixture(scope="module")
def staged_inputs():
    system = paper_benchmark_model(ORDER, n_impulsive_stubs=2).system
    phi = build_phi_realization(system)
    impulsive = remove_impulsive_modes(phi)
    nondynamic = remove_nondynamic_modes(impulsive.system)
    restoration = restore_shh_structure(nondynamic.system)
    extraction = extract_stable_proper_part(restoration)
    return {
        "system": system,
        "phi": phi,
        "impulsive": impulsive,
        "nondynamic": nondynamic,
        "restoration": restoration,
        "extraction": extraction,
    }


def test_stage_build_phi(benchmark, staged_inputs):
    benchmark(build_phi_realization, staged_inputs["system"])


def test_stage_remove_impulsive(benchmark, staged_inputs):
    benchmark.pedantic(
        remove_impulsive_modes, args=(staged_inputs["phi"],), rounds=3, iterations=1
    )


def test_stage_remove_nondynamic(benchmark, staged_inputs):
    benchmark.pedantic(
        remove_nondynamic_modes,
        args=(staged_inputs["impulsive"].system,),
        rounds=3,
        iterations=1,
    )


def test_stage_proper_part_extraction(benchmark, staged_inputs):
    benchmark.pedantic(
        extract_stable_proper_part,
        args=(staged_inputs["restoration"],),
        rounds=3,
        iterations=1,
    )


def test_stage_final_positive_real_check(benchmark, staged_inputs):
    benchmark.pedantic(
        proper_positive_real_test,
        args=(staged_inputs["extraction"].phi_half,),
        rounds=3,
        iterations=1,
    )
