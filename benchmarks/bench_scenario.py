"""Streaming-scenario benchmark: SSE push vs the status-quo poll loop.

Certifies one N-corner sweep of a power-grid macromodel two ways and
measures the *client's time-to-all-verdicts*:

* **streamed**: one ``submit_scenario`` call — the service expands the
  corners server-side, chains each to the family root through the
  perturbation-aware incremental tier, and pushes every verdict to an
  in-process subscriber the moment it lands (the ``GET
  /scenarios/<id>/events`` data path without socket noise),
* **polled**: the pre-scenario workflow — every corner submitted as its
  own independent job and a client loop polling each status at a fixed
  interval until all verdicts are known (no server-side expansion, no
  ancestor chaining, poll-quantized latency).

Gates (``--check``): streamed >= 3x faster to the last verdict, zero
verdict flips between the two passes (and vs a direct cold
``check_passivity`` of every corner), and the incremental tier actually
engaged (``incremental_hits > 0``).

Everything is written to a machine-readable ``BENCH_scenario.json``
(benchmark-trajectory artifact, same conventions as ``BENCH_sweep.json``).

Usage::

    PYTHONPATH=src python benchmarks/bench_scenario.py            # full (32 corners, order 204)
    PYTHONPATH=src python benchmarks/bench_scenario.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_scenario.py --check    # assert the gates
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Dict, List

import numpy as np
import scipy

from repro.circuits import rlc_grid_corners
from repro.engine import check_passivity
from repro.service import PassivityService, ScenarioSpec

SCHEMA_VERSION = 1

#: Acceptance gate: streamed time-to-all-verdicts >= 3x faster than polling.
MIN_SPEEDUP = 3.0
#: The status-quo client's poll cadence (the latency the push path removes).
POLL_INTERVAL = 0.05


def _family(mode: str) -> List:
    """The swept corner family (nominal system first)."""
    if mode == "smoke":
        # Order 54: seconds-sized for CI, still exercises the full path.
        return rlc_grid_corners(5, 6, n_corners=16, scale=2e-4, seed=0, pattern="a")
    # Order 204, 32 corners — the e2e acceptance shape.
    return rlc_grid_corners(9, 12, n_corners=32, scale=2e-4, seed=0, pattern="a")


def _spec(family: List) -> ScenarioSpec:
    # `n_corners` counts the nominal cell (corner_family semantics), so the
    # scenario's cell i is exactly family[i] of the polled/truth passes.
    return ScenarioSpec(
        family="corners",
        system=family[0],
        n_corners=len(family),
        scale=2e-4,
        seed=0,
        pattern="a",
        method="gare",
    )


def _streamed_round(family: List) -> Dict:
    """One scenario submission, verdicts consumed off the event stream."""
    with PassivityService(max_workers=2) as service:
        start = time.perf_counter()
        handle = service.submit_scenario(_spec(family))
        subscription = handle.subscribe()
        verdicts: Dict[int, bool] = {}
        first_verdict = None
        n_events = 0
        while True:
            event = subscription.get(timeout=600.0)
            if event is None:
                break
            n_events += 1
            if event.event == "corner":
                verdicts[event.data["index"]] = event.data["is_passive"]
                if first_verdict is None:
                    first_verdict = time.perf_counter() - start
            if event.terminal:
                break
        seconds = time.perf_counter() - start
        stats = service.stats()
        return {
            "corners": len(family),
            "order": int(family[0].order),
            "seconds": seconds,
            "seconds_to_first_verdict": first_verdict,
            "events": n_events,
            "streamed_events": stats.streamed_events,
            "dropped_events": stats.dropped_events,
            "incremental_hits": stats.incremental_hits,
            "incremental_fallbacks": stats.incremental_fallbacks,
            "verdicts": verdicts,
        }


def _polled_round(family: List) -> Dict:
    """Independent per-corner jobs, verdicts gathered by a poll loop."""
    with PassivityService(max_workers=2) as service:
        start = time.perf_counter()
        handles = [
            service.submit(system, method="gare") for system in family
        ]
        verdicts: Dict[int, bool] = {}
        polls = 0
        while len(verdicts) < len(handles):
            time.sleep(POLL_INTERVAL)
            for index, handle in enumerate(handles):
                if index in verdicts:
                    continue
                polls += 1
                status = handle.status()
                if status.state.is_terminal:
                    verdicts[index] = handle.result().is_passive
        seconds = time.perf_counter() - start
        return {
            "corners": len(family),
            "seconds": seconds,
            "polls": polls,
            "poll_interval": POLL_INTERVAL,
            "verdicts": verdicts,
        }


def run_benchmark(mode: str) -> Dict:
    """Run both rounds, cross-check verdicts, assemble the JSON document."""
    family = _family(mode)
    # Ground truth: a direct cold check of every corner (shared nothing).
    truth = [check_passivity(system, method="gare") for system in family]

    streamed = _streamed_round(family)
    print(
        f"[streamed] {streamed['corners']} corners of order {streamed['order']}: "
        f"{streamed['seconds']:.2f}s to the summary "
        f"(first verdict {streamed['seconds_to_first_verdict'] * 1e3:.0f} ms), "
        f"{streamed['events']} events, "
        f"hits {streamed['incremental_hits']}, "
        f"fallbacks {streamed['incremental_fallbacks']}"
    )
    polled = _polled_round(family)
    print(
        f"[polled] {polled['corners']} corners: {polled['seconds']:.2f}s "
        f"to all verdicts ({polled['polls']} status polls at "
        f"{POLL_INTERVAL * 1e3:.0f} ms)"
    )

    # Corner i of the scenario is family[i] of the polled/truth passes
    # (the expansion regenerates the same seeded corners, nominal first).
    flips = 0
    for index in range(len(family)):
        streamed_verdict = streamed["verdicts"].get(index)
        polled_verdict = polled["verdicts"].get(index)
        truth_verdict = truth[index].is_passive
        if streamed_verdict is None or polled_verdict is None:
            flips += 1
        elif not streamed_verdict == polled_verdict == truth_verdict:
            flips += 1

    speedup = (
        polled["seconds"] / streamed["seconds"]
        if streamed["seconds"] > 0
        else None
    )
    print(
        f"[scenario] streamed vs polled speedup {speedup:.2f}x, "
        f"verdict flips {flips}"
    )
    streamed = dict(streamed, verdicts=None)
    polled = dict(polled, verdicts=None)
    return {
        "benchmark": "streaming_scenario",
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "speedup": speedup,
        "speedup_target": f">= {MIN_SPEEDUP}x time-to-all-verdicts vs poll loop",
        "speedup_target_met": bool(speedup is not None and speedup >= MIN_SPEEDUP),
        "verdicts_agree": flips == 0,
        "verdict_flips": flips,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "streamed_round": streamed,
        "polled_round": polled,
    }


def main(argv=None) -> int:
    """CLI entry point (see the module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized workloads (seconds)"
    )
    parser.add_argument(
        "--output",
        default="BENCH_scenario.json",
        help="path of the machine-readable result file",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless streamed is >= 3x faster with zero "
        "verdict flips and incremental_hits > 0",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "default"
    document = run_benchmark(mode)
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2)
    print(f"wrote {args.output}")

    if args.check:
        failures = []
        if not document["speedup_target_met"]:
            failures.append(
                f"streamed speedup below target ({document['speedup']:.2f}x, "
                f"target {document['speedup_target']})"
            )
        if not document["verdicts_agree"]:
            failures.append("streamed/polled/cold verdicts disagree")
        if document["streamed_round"]["incremental_hits"] == 0:
            failures.append("incremental tier never engaged")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print("CHECK OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
