"""Ablation: orthogonal spectral separation vs. the true Weierstrass form.

The paper's main argument against the Weierstrass route is numerical: the
canonical form requires non-orthogonal transformations whose conditioning can
be arbitrarily bad, whereas the proposed pipeline uses orthogonal projections
wherever possible.  This ablation quantifies that gap on the benchmark
workloads by timing the two decompositions and recording the conditioning of
the transformation matrices each one applies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import paper_benchmark_model
from repro.descriptor import separate_finite_infinite, weierstrass_form

ORDERS = (20, 40, 80)


@pytest.fixture(scope="module")
def ablation_models():
    return {
        order: paper_benchmark_model(order, n_impulsive_stubs=2).system
        for order in ORDERS
    }


@pytest.mark.parametrize("order", ORDERS)
def test_orthogonal_separation(benchmark, ablation_models, order):
    """Orthogonal ordered-QZ separation (what the SHH pipeline relies on)."""
    system = ablation_models[order]
    separation = benchmark.pedantic(
        separate_finite_infinite, args=(system,), rounds=1, iterations=1, warmup_rounds=0
    )
    assert separation.n_finite > 0


@pytest.mark.parametrize("order", ORDERS)
def test_weierstrass_canonical_form(benchmark, ablation_models, order):
    """Full (quasi-)Weierstrass form with its non-orthogonal scalings."""
    system = ablation_models[order]
    form = benchmark.pedantic(
        weierstrass_form, args=(system,), rounds=1, iterations=1, warmup_rounds=0
    )
    assert form.conditioning >= 1.0


@pytest.mark.parametrize("order", ORDERS)
def test_conditioning_gap(ablation_models, order):
    """The Weierstrass transformations are (much) worse conditioned than the
    orthogonal+unit-triangular ones used by the separation."""
    system = ablation_models[order]
    separation = separate_finite_infinite(system)
    orthogonal_cond = float(
        np.linalg.cond(separation.left) * np.linalg.cond(separation.right)
    )
    weierstrass_cond = weierstrass_form(system).conditioning
    assert weierstrass_cond >= orthogonal_cond
