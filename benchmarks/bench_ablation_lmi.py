"""Ablation: where the LMI baseline's cost comes from.

The extended positive-real LMI has ~n^2 scalar unknowns; each interior-point
Newton step assembles a dense Hessian over those unknowns, which is the
O(n^5)-O(n^6) cost driver the paper quotes.  This benchmark separates the two
ingredients — building the affine LMI blocks and running the phase-I solve —
and records the Newton-iteration counts so the per-iteration cost can be
derived from the timings.
"""

from __future__ import annotations

import pytest

from repro.circuits import paper_benchmark_model
from repro.passivity.lmi_test import build_positive_real_lmi_blocks
from repro.sdp import solve_phase_one

ORDERS = (15, 20, 30)


@pytest.fixture(scope="module")
def lmi_inputs():
    inputs = {}
    for order in ORDERS:
        system = paper_benchmark_model(max(order, 12), n_impulsive_stubs=1).system
        blocks, basis = build_positive_real_lmi_blocks(system)
        inputs[order] = {"system": system, "blocks": blocks, "basis": basis}
    return inputs


@pytest.mark.parametrize("order", ORDERS)
def test_lmi_block_assembly(benchmark, lmi_inputs, order):
    system = lmi_inputs[order]["system"]
    blocks, basis = benchmark.pedantic(
        build_positive_real_lmi_blocks, args=(system,), rounds=1, iterations=1
    )
    assert basis.shape[1] >= system.order


@pytest.mark.parametrize("order", ORDERS)
def test_lmi_phase_one_solve(benchmark, lmi_inputs, order):
    """Phase-I solve cost; the verdict on these marginally-feasible MNA
    problems is recorded as extra info (see bench_table1 / EXPERIMENTS.md)."""
    blocks = lmi_inputs[order]["blocks"]
    result = benchmark.pedantic(
        solve_phase_one, args=(blocks,), rounds=1, iterations=1
    )
    assert result.n_newton_steps >= 1
    benchmark.extra_info["feasible"] = result.feasible
    benchmark.extra_info["optimal_t"] = result.optimal_t
