"""Reproduction of Figure 2: CPU-time-vs-order curves of the passivity tests.

The figure has two panels:

* top — log-scale CPU time of the LMI test, the proposed test and the
  Weierstrass test over the model order (same data as Table 1, denser grid),
* bottom — linear-scale close-up of the proposed vs. Weierstrass tests up to
  order 400, showing the two O(n^3) methods staying within a small factor of
  each other (with the proposed test ahead at large order in the paper).

This module benchmarks the per-order timing of the two fast methods on the
figure's denser grid and, as a by-product of the assertions, checks the
qualitative orderings.  The complete series (including the LMI curve and a CSV
dump for plotting) is produced by ``examples/reproduce_figure2.py``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import full_run
from repro.circuits import paper_benchmark_model
from repro.engine import check_passivity

FIGURE2_ORDERS = (20, 40, 60, 80, 100, 150, 200, 300, 400) if full_run() else (
    20, 50, 80, 120,
)


@pytest.fixture(scope="module")
def figure2_models():
    return {
        order: paper_benchmark_model(order, n_impulsive_stubs=2).system
        for order in FIGURE2_ORDERS
    }


@pytest.mark.parametrize("order", FIGURE2_ORDERS)
def test_figure2_proposed_series(benchmark, figure2_models, order):
    """Figure 2 (both panels), 'Proposed Passivity Test' series."""
    report = benchmark.pedantic(
        check_passivity,
        args=(figure2_models[order], "proposed"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert report.is_passive, report.failure_reason


@pytest.mark.parametrize("order", FIGURE2_ORDERS)
def test_figure2_weierstrass_series(benchmark, figure2_models, order):
    """Figure 2 (both panels), 'Weierstrass Test' series."""
    report = benchmark.pedantic(
        check_passivity,
        args=(figure2_models[order], "weierstrass"),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert report.is_passive, report.failure_reason


def test_figure2_shape_both_methods_are_cubic(figure2_models):
    """Qualitative Figure-2 check: both fast methods scale like ~n^3.

    Fitting ``log t = p log n + c`` over the grid must give an exponent well
    below the LMI test's ~5-6 (we allow 1.5 <= p <= 4.5 to absorb BLAS
    crossover effects at small orders).
    """
    import math
    import time

    orders, times = [], []
    for order, system in figure2_models.items():
        start = time.perf_counter()
        check_passivity(system, method="proposed")
        times.append(time.perf_counter() - start)
        orders.append(order)
    if len(orders) < 3:
        pytest.skip("not enough grid points for a slope estimate")
    logs_n = [math.log(o) for o in orders]
    logs_t = [math.log(max(t, 1e-9)) for t in times]
    n = len(orders)
    mean_n = sum(logs_n) / n
    mean_t = sum(logs_t) / n
    slope = sum((a - mean_n) * (b - mean_t) for a, b in zip(logs_n, logs_t)) / sum(
        (a - mean_n) ** 2 for a in logs_n
    )
    assert 1.0 <= slope <= 4.5, f"unexpected growth exponent {slope:.2f}"
