"""Observability-overhead benchmark: the tracer + metrics plane must be cheap.

PR 10's unified observability plane leaves spans (:func:`repro.obs.trace_span`)
and stage-histogram observations on the engine's hottest seams — cache
``get_or_compute``, ordered QZ, Riccati refinement, the incremental update
tier.  This benchmark prices exactly that instrumentation: it runs the
order-204 incremental corner sweep from ``bench_sweep.py`` twice — once with
the plane disabled (:func:`repro.obs.set_enabled`\\ ``(False)``: every
``trace_span`` degenerates to a shared no-op context) and once enabled with a
live :class:`~repro.obs.JobTrace` collecting every span — and gates the
enabled/disabled wall-clock ratio below :data:`MAX_OVERHEAD_RATIO` (< 3%
overhead) with zero verdict flips between the two passes.

The two configurations alternate within every round and the **order inside
the pair flips round to round** (off-on, on-off, ...); the minimum
wall-clock per configuration is then compared.  Grouping all disabled
rounds before all enabled ones — or even always running one configuration
second in its pair — lets machine drift (thermal throttling, a neighbour
landing on the box) masquerade as tracer overhead, which dwarfs the real
sub-percent cost being measured.

Everything is written to a machine-readable ``BENCH_obs.json`` (same artifact
conventions as ``BENCH_sweep.json``; ``tools/bench_summary.py`` picks up the
``overhead_ratio`` / ``overhead_target_met`` headline).

Usage::

    PYTHONPATH=src python benchmarks/bench_obs.py            # full (order 204)
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_obs.py --check    # gate < 3%
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Dict, List

import numpy as np
import scipy

from repro.circuits import rlc_grid_corners
from repro.engine import check_passivity
from repro.engine.cache import DecompositionCache
from repro.obs import METRICS, JobTrace, set_enabled, use_trace

SCHEMA_VERSION = 1

#: Acceptance gate: enabled/disabled wall-clock ratio must stay below this
#: (1.03 == less than 3% overhead for the full tracer + metrics plane).
MAX_OVERHEAD_RATIO = 1.03

#: Smoke-mode gate: the CI workload finishes in tens of milliseconds where
#: scheduler noise alone exceeds 3%, so the gate loosens to 10% there (the
#: real < 3% acceptance number comes from the full order-204 run).
SMOKE_MAX_OVERHEAD_RATIO = 1.10


def _family(mode: str) -> List:
    """The swept corner family (same workload as ``bench_sweep.py``)."""
    if mode == "smoke":
        return rlc_grid_corners(5, 6, n_corners=16, scale=2e-4, seed=0, pattern="a")
    return rlc_grid_corners(9, 12, n_corners=64, scale=2e-4, seed=0, pattern="a")


def _sweep_once(family: List, traced: bool):
    """One incremental sweep pass; returns (wall_seconds, verdicts, spans)."""
    nominal, corners = family[0], family[1:]
    cache = DecompositionCache()
    trace = JobTrace()
    start = time.perf_counter()
    if traced:
        with use_trace(trace):
            reports = [check_passivity(nominal, method="gare", cache=cache)]
            reports += [
                check_passivity(
                    system, method="gare", cache=cache, ancestor=nominal
                )
                for system in corners
            ]
    else:
        reports = [check_passivity(nominal, method="gare", cache=cache)]
        reports += [
            check_passivity(system, method="gare", cache=cache, ancestor=nominal)
            for system in corners
        ]
    seconds = time.perf_counter() - start
    return seconds, [bool(r.is_passive) for r in reports], len(trace)


def _timed_round(family: List, enabled: bool):
    """One sweep with the plane forced to ``enabled``; restores the state."""
    previous = set_enabled(enabled)
    try:
        return _sweep_once(family, traced=enabled)
    finally:
        set_enabled(previous)


def run_benchmark(mode: str, rounds: int) -> Dict:
    """Price the plane on the sweep workload and assemble the JSON document."""
    family = _family(mode)
    order = int(family[0].order)
    max_ratio = SMOKE_MAX_OVERHEAD_RATIO if mode == "smoke" else MAX_OVERHEAD_RATIO

    # Warm-up: JIT-free Python, but first-touch costs (BLAS thread pools,
    # import side effects) should not land inside either timed pass.
    _sweep_once(family, traced=False)

    off_walls: List[float] = []
    on_walls: List[float] = []
    off_verdicts: List[bool] = []
    on_verdicts: List[bool] = []
    spans = 0
    for index in range(rounds):
        for enabled in ((False, True) if index % 2 == 0 else (True, False)):
            seconds, verdicts, tree_size = _timed_round(family, enabled)
            if enabled:
                on_walls.append(seconds)
                on_verdicts, spans = verdicts, tree_size
            else:
                off_walls.append(seconds)
                off_verdicts = verdicts
    off_wall, on_wall = min(off_walls), min(on_walls)

    flips = sum(1 for a, b in zip(off_verdicts, on_verdicts) if a != b)
    ratio = on_wall / off_wall if off_wall > 0 else None
    stage_count = int(
        METRICS.stage_quantiles().get("engine.dispatch", {}).get("count", 0)
    )
    print(
        f"[obs] {len(family)} corners of order {order}, {rounds} round(s): "
        f"plane off {off_wall:.3f}s, on {on_wall:.3f}s, "
        f"overhead {100.0 * (ratio - 1.0):.2f}% "
        f"({spans} spans/sweep), flips {flips}"
    )
    return {
        "benchmark": "observability_overhead",
        "schema_version": SCHEMA_VERSION,
        "mode": mode,
        "overhead_target": f"< {100.0 * (max_ratio - 1.0):.0f}% "
        f"tracer+metrics overhead on the incremental corner sweep",
        "overhead_ratio": ratio,
        "overhead_target_met": bool(ratio is not None and ratio < max_ratio),
        "verdict_flips": flips,
        "verdicts_agree": flips == 0,
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
        "sweep_round": {
            "corners": len(family),
            "order": order,
            "rounds": rounds,
            "disabled_seconds": off_wall,
            "enabled_seconds": on_wall,
            "disabled_walls": off_walls,
            "enabled_walls": on_walls,
            "spans_per_sweep": spans,
            "dispatch_observations": stage_count,
        },
    }


def main(argv=None) -> int:
    """CLI entry point (see the module docstring)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized workload (seconds)"
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=5,
        help="interleaved timed repetitions per configuration "
        "(min-of-rounds compared)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_obs.json",
        help="path of the machine-readable result file",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the overhead gate holds with zero "
        "verdict flips",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "default"
    document = run_benchmark(mode, max(1, args.rounds))
    with open(args.output, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2)
    print(f"wrote {args.output}")

    if args.check:
        failures = []
        if not document["overhead_target_met"]:
            failures.append(
                f"observability overhead above target "
                f"(ratio {document['overhead_ratio']:.4f}, "
                f"target {document['overhead_target']})"
            )
        if not document["verdicts_agree"]:
            failures.append("verdicts flipped between plane-off and plane-on")
        if document["sweep_round"]["spans_per_sweep"] == 0:
            failures.append("the enabled pass recorded no spans")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print("CHECK OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
