"""Model order reduction of descriptor systems via the SHH proper-part split.

The reduction pipeline of the passivity test hands back the stable proper part
of the model "for free" (the paper's sidetrack).  This module turns that into
a practical descriptor-system model-order-reduction flow:

1. split ``G`` into stable proper part, constant ``M0`` and impulsive term
   ``s M1`` (exact, structure-preserving),
2. reduce the proper part with balanced truncation — Gramians from the
   library's Lyapunov solver, square-root balancing, and the classical
   ``2 * sum of discarded Hankel singular values`` error bound,
3. re-attach ``M0`` and ``s M1`` exactly, so the reduction error is confined to
   the proper dynamics.

Plain balanced truncation does not guarantee passivity of the reduced model
(positive-real balancing would); callers that need a certified-passive reduced
model should re-run :func:`repro.passivity.shh_passivity_test` on the result —
which is exactly what the accompanying example and tests do — and fall back to
a larger reduced order or to enforcement when the check fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.descriptor.decompose import additive_decomposition
from repro.descriptor.system import DescriptorSystem, StateSpace
from repro.engine.cache import DecompositionCache
from repro.exceptions import DimensionError, NotImplementedForSystemError, NotStableError
from repro.linalg.lyapunov import solve_continuous_lyapunov

__all__ = [
    "balanced_truncation",
    "ReducedModel",
    "reduce_descriptor_system",
    "CertifiedReduction",
    "reduce_until_passive",
]


def _cholesky_factor_psd(matrix: np.ndarray) -> np.ndarray:
    """Factor a (numerically) PSD matrix as ``L L^T`` via its eigendecomposition."""
    symmetric = 0.5 * (matrix + matrix.T)
    eigenvalues, vectors = np.linalg.eigh(symmetric)
    clipped = np.clip(eigenvalues, 0.0, None)
    return vectors @ np.diag(np.sqrt(clipped))


def balanced_truncation(
    system: StateSpace,
    order: int,
    tol: Optional[Tolerances] = None,
) -> Tuple[StateSpace, np.ndarray, float]:
    """Balanced truncation of a stable state-space system.

    Returns
    -------
    (reduced, hankel_singular_values, error_bound):
        The reduced system of the requested order, the full vector of Hankel
        singular values, and the a-priori H-infinity error bound
        ``2 * sum(discarded singular values)``.

    Raises
    ------
    NotStableError
        If the system is not asymptotically stable (the Gramians would not
        exist).
    DimensionError
        If the requested order is not smaller than the original order.
    """
    tol = tol or DEFAULT_TOLERANCES
    if not system.is_stable(tol):
        raise NotStableError("balanced truncation requires a stable system")
    n = system.order
    if not 0 < order <= n:
        raise DimensionError(f"reduced order must be in (0, {n}], got {order}")
    if order == n:
        return system, np.zeros(n), 0.0

    controllability = solve_continuous_lyapunov(system.a, system.b @ system.b.T, tol)
    observability = solve_continuous_lyapunov(system.a.T, system.c.T @ system.c, tol)

    l_ctrl = _cholesky_factor_psd(controllability)
    l_obs = _cholesky_factor_psd(observability)
    u, singular_values, vt = np.linalg.svd(l_obs.T @ l_ctrl)

    hankel = singular_values.copy()
    kept = singular_values[:order]
    # Guard against truncating into the numerical noise floor.
    floor = max(1e-14, 1e-12 * float(hankel.max(initial=0.0)))
    effective = np.maximum(kept, floor)

    scale = np.diag(1.0 / np.sqrt(effective))
    left = scale @ u[:, :order].T @ l_obs.T
    right = l_ctrl @ vt[:order, :].T @ scale

    a_reduced = left @ system.a @ right
    b_reduced = left @ system.b
    c_reduced = system.c @ right
    reduced = StateSpace(a_reduced, b_reduced, c_reduced, system.d)
    error_bound = 2.0 * float(np.sum(hankel[order:]))
    return reduced, hankel, error_bound


@dataclass(frozen=True)
class ReducedModel:
    """Result of descriptor-system model order reduction.

    Attributes
    ----------
    system:
        The reduced descriptor system (proper part reduced, ``M0`` and
        ``s M1`` re-attached exactly).
    proper_order:
        Order of the reduced proper part.
    hankel_singular_values:
        Hankel singular values of the original proper part.
    error_bound:
        A-priori H-infinity bound on the proper-part reduction error.
    """

    system: DescriptorSystem
    proper_order: int
    hankel_singular_values: np.ndarray
    error_bound: float


def reduce_descriptor_system(
    system: DescriptorSystem,
    proper_order: int,
    tol: Optional[Tolerances] = None,
    cache: Optional[DecompositionCache] = None,
) -> ReducedModel:
    """Reduce a stable descriptor system, preserving its impulsive structure.

    Parameters
    ----------
    cache:
        Optional engine decomposition cache; lets repeated reductions of the
        same model (e.g. an order sweep searching for the smallest passive
        reduced model) reuse the additive decomposition instead of recomputing
        it per candidate order.

    Raises
    ------
    NotImplementedForSystemError
        If the model has Markov parameters of order >= 2 (polynomial behaviour
        beyond ``s M1`` is not representable by the re-attachment used here).
    """
    tol = tol or DEFAULT_TOLERANCES
    if not system.is_square_io:
        raise NotImplementedForSystemError("reduction is implemented for square systems")
    decomposition = (
        cache.additive(system, tol)
        if cache is not None
        else additive_decomposition(system, tol)
    )
    higher = decomposition.impulsive_markov[1:]
    if any(np.max(np.abs(term), initial=0.0) > 1e-10 for term in higher):
        raise NotImplementedForSystemError(
            "the model has Markov parameters of order >= 2"
        )

    strictly_proper = decomposition.strictly_proper
    reduced_proper, hankel, bound = balanced_truncation(strictly_proper, proper_order, tol)

    m = system.n_inputs
    m0 = decomposition.m0
    m1 = decomposition.m1

    eigenvalues, vectors = np.linalg.eigh(0.5 * (m1 + m1.T))
    keep = np.abs(eigenvalues) > 1e-12 * max(1.0, float(np.max(np.abs(eigenvalues), initial=0.0)))
    factors = vectors[:, keep] * np.sqrt(np.abs(eigenvalues[keep]))
    signs = np.sign(eigenvalues[keep])
    r = factors.shape[1]

    n_red = reduced_proper.order
    order = n_red + 2 * r
    e_matrix = np.zeros((order, order))
    a_matrix = np.zeros((order, order))
    b_matrix = np.zeros((order, m))
    c_matrix = np.zeros((m, order))

    e_matrix[:n_red, :n_red] = np.eye(n_red)
    a_matrix[:n_red, :n_red] = reduced_proper.a
    b_matrix[:n_red, :] = reduced_proper.b
    c_matrix[:, :n_red] = reduced_proper.c
    if r:
        # Realize s * (sum_i sign_i f_i f_i^T) with a 2r-state nilpotent block.
        e_matrix[n_red : n_red + r, n_red + r :] = np.eye(r)
        a_matrix[n_red:, n_red:] = np.eye(2 * r)
        b_matrix[n_red + r :, :] = -(np.diag(signs) @ factors.T)
        c_matrix[:, n_red : n_red + r] = factors

    reduced_system = DescriptorSystem(e_matrix, a_matrix, b_matrix, c_matrix, m0)
    return ReducedModel(
        system=reduced_system,
        proper_order=n_red,
        hankel_singular_values=hankel,
        error_bound=bound,
    )


@dataclass(frozen=True)
class CertifiedReduction:
    """A reduced model together with its passivity certification.

    Attributes
    ----------
    model:
        The accepted :class:`ReducedModel`.
    report:
        Its passivity report.  ``report.is_passive`` is False only when every
        candidate order failed — the largest candidate's model and report are
        then returned so callers can inspect the failure.
    orders_tried:
        The candidate proper orders actually reduced and re-checked, in order.
    """

    model: ReducedModel
    report: "PassivityReport"
    orders_tried: Tuple[int, ...]


def reduce_until_passive(
    system: DescriptorSystem,
    orders: Optional[Tuple[int, ...]] = None,
    tol: Optional[Tolerances] = None,
    cache: Optional[DecompositionCache] = None,
    method: str = "shh",
) -> CertifiedReduction:
    """Smallest-order reduction whose re-check certifies passivity.

    Plain balanced truncation does not preserve passivity, so the practical
    flow is an order sweep: reduce, re-check, and grow the order until the
    check passes.  Without shared state that sweep rebuilds the additive
    decomposition of ``system`` for every candidate; here one
    :class:`DecompositionCache` is threaded through *all* reductions and
    re-checks, so the split is computed exactly once and each candidate pays
    only its own balanced truncation plus the certification of its (small)
    reduced model.

    Parameters
    ----------
    orders:
        Candidate proper orders, tried in the given order; the first whose
        reduced model certifies passive wins.  Default: doubling from 1 up
        to the full proper order (finds the smallest passive order within a
        factor of two at logarithmic cost).
    method:
        Passivity method for the re-checks (default ``"shh"``, matching the
        reduced models' possibly-impulsive structure).

    Raises
    ------
    NotImplementedForSystemError
        Propagated from :func:`reduce_descriptor_system`.
    """
    from repro.engine.api import check_passivity

    tol = tol or DEFAULT_TOLERANCES
    cache = cache if cache is not None else DecompositionCache()
    decomposition = cache.additive(system, tol)
    full_order = decomposition.strictly_proper.order
    if orders is None:
        doubling = []
        order = 1
        while order < full_order:
            doubling.append(order)
            order *= 2
        doubling.append(full_order)
        orders = tuple(doubling)

    tried = []
    model = None
    report = None
    for order in orders:
        order = int(min(max(order, 1), full_order))
        if tried and order <= tried[-1]:
            continue
        tried.append(order)
        model = reduce_descriptor_system(system, order, tol, cache=cache)
        report = check_passivity(model.system, method=method, tol=tol, cache=cache)
        if report.is_passive:
            break
    return CertifiedReduction(model=model, report=report, orders_tried=tuple(tried))
