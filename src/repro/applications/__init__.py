"""Applications built on top of the passivity framework.

The paper's conclusion notes that "further applications such as passivity
enforcement and DS model order reduction can readily be developed on top of
this framework"; this subpackage provides first versions of both:

* :mod:`repro.applications.enforcement` — restore passivity of a slightly
  non-passive model by shifting/clipping its constant and impulsive parts.
* :mod:`repro.applications.model_reduction` — balanced truncation of the
  stable proper part extracted by the SHH pipeline, with the impulsive part
  re-attached exactly.
"""

from repro.applications.enforcement import (
    EnforcementResult,
    IterativeEnforcementResult,
    enforce_passivity,
    enforce_passivity_iterative,
    passivity_violation,
)
from repro.applications.model_reduction import (
    CertifiedReduction,
    ReducedModel,
    balanced_truncation,
    reduce_descriptor_system,
    reduce_until_passive,
)

__all__ = [
    "EnforcementResult",
    "IterativeEnforcementResult",
    "enforce_passivity",
    "enforce_passivity_iterative",
    "passivity_violation",
    "CertifiedReduction",
    "ReducedModel",
    "balanced_truncation",
    "reduce_descriptor_system",
    "reduce_until_passive",
]
