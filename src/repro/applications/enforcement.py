"""Passivity enforcement by shifting/clipping the offending system parts.

Macromodels produced by fitting or aggressive reduction are often *slightly*
non-passive: the Hermitian part of the frequency response dips below zero by a
small amount over a limited band, or the extracted residue at infinity has a
small negative eigenvalue.  This module provides a simple, certified-by-
re-testing enforcement scheme on top of the library's analysis machinery:

1. measure the worst violation of ``G(j w) + G(j w)^* >= 0`` — the candidate
   frequencies are the imaginary eigenvalues of the positive-real Hamiltonian
   (exactly the band edges of the violation intervals), refined with a local
   sampling pass;
2. measure the violation of ``M1 >= 0`` (negative eigenvalues of the symmetric
   part) and any asymmetry of ``M1``;
3. add the smallest diagonal shift to ``D`` that closes the frequency-domain
   gap (plus a configurable relative margin) and replace ``M1`` by its
   symmetric positive semidefinite part;
4. re-run the SHH passivity test on the repaired model.

The shift-based repair is deliberately conservative (it perturbs the DC and
high-frequency response uniformly); it is the standard "quick fix" used before
more sophisticated residue-perturbation schemes, and it keeps the enforcement
error fully transparent: the returned report states exactly how much was added
where.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.descriptor.decompose import additive_decomposition
from repro.descriptor.system import DescriptorSystem
from repro.engine.api import check_passivity
from repro.engine.cache import DecompositionCache
from repro.exceptions import NotImplementedForSystemError
from repro.passivity.result import PassivityReport

__all__ = [
    "passivity_violation",
    "EnforcementResult",
    "enforce_passivity",
    "IterativeEnforcementResult",
    "enforce_passivity_iterative",
]


def passivity_violation(
    system: DescriptorSystem,
    n_samples: int = 600,
    omega_min: float = 1e-4,
    omega_max: float = 1e4,
    tol: Optional[Tolerances] = None,
    cache: Optional[DecompositionCache] = None,
) -> float:
    """Worst frequency-domain passivity violation of the *proper* response.

    Returns ``max(0, -min_w lambda_min(G(jw) + G(jw)^*))`` evaluated on a
    dense logarithmic grid augmented with the crossing frequencies predicted by
    the positive-real Hamiltonian of the proper part (when available).  The
    impulsive part ``s M1`` does not contribute to the Hermitian part on the
    imaginary axis when ``M1`` is symmetric, and is assessed separately by
    :func:`enforce_passivity`.
    """
    tol = tol or DEFAULT_TOLERANCES
    omegas = list(np.logspace(np.log10(omega_min), np.log10(omega_max), n_samples))
    omegas.append(0.0)

    # Add the Hamiltonian-predicted crossings of the proper part, if it can be
    # extracted; these are exactly where the violation is extremal.
    try:
        decomposition = (
            cache.additive(system, tol)
            if cache is not None
            else additive_decomposition(system, tol)
        )
        proper = decomposition.proper_part
        r_matrix = proper.d + proper.d.T
        if proper.order and np.linalg.matrix_rank(r_matrix) == r_matrix.shape[0]:
            from repro.linalg.invariant_subspace import imaginary_axis_eigenvalues
            from repro.linalg.riccati import positive_real_hamiltonian

            hamiltonian = positive_real_hamiltonian(proper.a, proper.b, proper.c, proper.d)
            crossings = imaginary_axis_eigenvalues(hamiltonian, tol)
            for value in crossings:
                omega = abs(float(value.imag))
                omegas.extend([omega, 1.01 * omega + 1e-6, 0.99 * omega])
    except Exception:  # pragma: no cover - analysis is best-effort
        pass

    worst = 0.0
    for omega in omegas:
        try:
            value = system.evaluate(1j * float(omega), tol)
        except Exception:
            continue
        hermitian = 0.5 * (value + value.conj().T)
        smallest = float(np.min(np.linalg.eigvalsh(hermitian)))
        worst = max(worst, -smallest)
    return worst


@dataclass(frozen=True)
class EnforcementResult:
    """Outcome of a passivity-enforcement run.

    Attributes
    ----------
    system:
        The repaired descriptor system.
    feedthrough_shift:
        The multiple of the identity added to ``D``.
    m1_clip_magnitude:
        Frobenius norm of the change applied to the impulsive part (0 when the
        original ``M1`` was already symmetric PSD or absent).
    original_violation / remaining_violation:
        Frequency-domain violations before and after the repair.
    report:
        The SHH passivity report of the repaired system (the certification).
    """

    system: DescriptorSystem
    feedthrough_shift: float
    m1_clip_magnitude: float
    original_violation: float
    remaining_violation: float
    report: PassivityReport


def _psd_part(matrix: np.ndarray) -> np.ndarray:
    symmetric = 0.5 * (matrix + matrix.T)
    eigenvalues, vectors = np.linalg.eigh(symmetric)
    clipped = np.clip(eigenvalues, 0.0, None)
    return vectors @ np.diag(clipped) @ vectors.T


def enforce_passivity(
    system: DescriptorSystem,
    margin_fraction: float = 0.05,
    tol: Optional[Tolerances] = None,
    cache: Optional[DecompositionCache] = None,
) -> EnforcementResult:
    """Repair a (slightly) non-passive descriptor system.

    Parameters
    ----------
    system:
        Square descriptor system with a regular, *stable* pencil.  Unstable
        models cannot be repaired by output-side perturbations and are
        rejected.
    margin_fraction:
        Extra shift added on top of the measured violation, relative to it
        (5 % by default), to keep the repaired model strictly inside the
        passive set despite sampling error.
    cache:
        Optional engine decomposition cache.  The violation measurement and
        the repair both need the additive decomposition of ``system``; with a
        cache it is computed once, and the certification re-test shares the
        cache too (a fresh per-call cache is used when omitted).

    Raises
    ------
    NotImplementedForSystemError
        If the system is not square or not stable.
    """
    tol = tol or DEFAULT_TOLERANCES
    if not system.is_square_io:
        raise NotImplementedForSystemError("passivity enforcement requires a square system")
    if not system.is_stable(tol):
        raise NotImplementedForSystemError(
            "passivity enforcement requires a stable model; unstable poles "
            "cannot be repaired by perturbing D or M1"
        )
    cache = cache if cache is not None else DecompositionCache()

    violation = passivity_violation(system, tol=tol, cache=cache)
    shift = (1.0 + margin_fraction) * violation

    # Repair the impulsive part: replace M1 by its symmetric PSD part.  The
    # perturbation acts on the infinite block's coupling through B_inf; doing
    # it exactly requires the separated realization, so the repaired system is
    # reassembled from the decomposition.
    decomposition = cache.additive(system, tol)
    m1 = decomposition.m1
    m1_psd = _psd_part(m1)
    m1_change = float(np.linalg.norm(m1 - m1_psd))

    higher_terms = decomposition.impulsive_markov[1:]
    if any(np.max(np.abs(term), initial=0.0) > 1e-10 for term in higher_terms):
        raise NotImplementedForSystemError(
            "the model has Markov parameters of order >= 2; shift-based "
            "enforcement cannot repair genuinely polynomial behaviour"
        )

    repaired = _reassemble(decomposition, m1_psd, shift, system.n_inputs)
    report = check_passivity(repaired, method="shh", tol=tol, cache=cache)
    remaining = passivity_violation(repaired, tol=tol, cache=cache)
    return EnforcementResult(
        system=repaired,
        feedthrough_shift=shift,
        m1_clip_magnitude=m1_change,
        original_violation=violation,
        remaining_violation=remaining,
        report=report,
    )


@dataclass(frozen=True)
class IterativeEnforcementResult:
    """Outcome of an iterative (perturb -> re-test) enforcement run.

    Attributes
    ----------
    system:
        The final repaired descriptor system.
    feedthrough_shift:
        The multiple of the identity added to ``D`` by the final iterate.
    m1_clip_magnitude:
        Frobenius norm of the change applied to the impulsive part.
    original_violation / remaining_violation:
        Frequency-domain violations before and after the repair.
    report:
        Passivity report of the final iterate.  Check ``report.is_passive``:
        when the shift escalation exhausts ``max_iterations`` without a
        passing certification, the last (non-passive) report is returned
        rather than raising.
    iterations:
        Number of perturb -> re-test iterations performed.
    incremental_recerts:
        How many of those re-tests were certified through the incremental
        update tier instead of a cold pipeline run (0 when the candidate has
        an impulsive block, which forces the SHH path).
    shifts:
        The shift tried at each iteration, in order.
    """

    system: DescriptorSystem
    feedthrough_shift: float
    m1_clip_magnitude: float
    original_violation: float
    remaining_violation: float
    report: PassivityReport
    iterations: int
    incremental_recerts: int
    shifts: tuple


def enforce_passivity_iterative(
    system: DescriptorSystem,
    margin_fraction: float = 0.05,
    growth: float = 2.0,
    max_iterations: int = 6,
    tol: Optional[Tolerances] = None,
    cache: Optional[DecompositionCache] = None,
) -> IterativeEnforcementResult:
    """Repair a non-passive model by escalating shifts until certified.

    The single-shot :func:`enforce_passivity` applies one measured shift and
    re-tests once; when the sampled violation underestimates the true gap the
    repaired model can still fail certification.  This variant closes the
    loop: measure once, then *iterate* candidate shifts (each ``growth``
    times the last) until the certification passes or ``max_iterations`` is
    exhausted.

    All engine state is shared across iterations through one
    :class:`DecompositionCache` — the additive decomposition is computed
    once, and successive candidates (which differ only in the constant shift
    added to ``D``) are re-certified **in place** through the
    perturbation-aware incremental tier: iteration 1 runs the cold GARE
    pipeline and roots the family, every later iteration passes
    ``ancestor="auto"`` so its verdict is a certified first-order update of
    the previous certificate (falling back cold whenever a validity bound
    fails).  Candidates with a nonzero impulsive block are index-2 and
    outside the GARE reduction; they re-test via the SHH method (still
    sharing the cache) without the incremental tier.

    Raises
    ------
    NotImplementedForSystemError
        If the system is not square, not stable, or has Markov parameters of
        order >= 2.
    """
    tol = tol or DEFAULT_TOLERANCES
    if not system.is_square_io:
        raise NotImplementedForSystemError("passivity enforcement requires a square system")
    if not system.is_stable(tol):
        raise NotImplementedForSystemError(
            "passivity enforcement requires a stable model; unstable poles "
            "cannot be repaired by perturbing D or M1"
        )
    cache = cache if cache is not None else DecompositionCache()

    violation = passivity_violation(system, tol=tol, cache=cache)
    decomposition = cache.additive(system, tol)
    m1 = decomposition.m1
    m1_psd = _psd_part(m1)
    m1_change = float(np.linalg.norm(m1 - m1_psd))
    higher_terms = decomposition.impulsive_markov[1:]
    if any(np.max(np.abs(term), initial=0.0) > 1e-10 for term in higher_terms):
        raise NotImplementedForSystemError(
            "the model has Markov parameters of order >= 2; shift-based "
            "enforcement cannot repair genuinely polynomial behaviour"
        )

    shift = (1.0 + margin_fraction) * violation
    # Escalation seed when the sampled violation was zero but certification
    # still fails (violation hiding between samples): relative to D's scale.
    seed_shift = 1e-8 * (1.0 + float(np.linalg.norm(decomposition.m0)))

    proper_order = decomposition.strictly_proper.order
    candidate = system
    report = None
    incremental_recerts = 0
    shifts = []
    iterations = 0
    for iteration in range(max_iterations):
        iterations = iteration + 1
        shifts.append(shift)
        candidate = _reassemble(decomposition, m1_psd, shift, system.n_inputs)
        # An impulsive block makes the candidate index-2: outside the GARE
        # admissible reduction, so outside the incremental tier too.
        impulse_free = candidate.order == proper_order
        if impulse_free:
            report = check_passivity(
                candidate,
                method="gare",
                tol=tol,
                cache=cache,
                ancestor=None if iteration == 0 else "auto",
            )
            if report.diagnostics.get("engine", {}).get("incremental"):
                incremental_recerts += 1
        else:
            report = check_passivity(candidate, method="shh", tol=tol, cache=cache)
        if report.is_passive:
            break
        shift = growth * shift if shift > 0.0 else seed_shift

    remaining = passivity_violation(candidate, tol=tol, cache=cache)
    return IterativeEnforcementResult(
        system=candidate,
        feedthrough_shift=shifts[-1],
        m1_clip_magnitude=m1_change,
        original_violation=violation,
        remaining_violation=remaining,
        report=report,
        iterations=iterations,
        incremental_recerts=incremental_recerts,
        shifts=tuple(shifts),
    )


def _reassemble(decomposition, m1_psd: np.ndarray, shift: float, n_ports: int) -> DescriptorSystem:
    """Build a descriptor realization of ``G_sp + (M0 + shift I) + s * M1_psd``."""
    proper = decomposition.strictly_proper
    n = proper.order
    m = n_ports
    m0 = decomposition.m0 + shift * np.eye(m)

    # Impulsive part: realize s * M1 with a rank-revealing factorization
    # M1 = L L^T (PSD), using the standard 2r-state nilpotent realization.
    eigenvalues, vectors = np.linalg.eigh(0.5 * (m1_psd + m1_psd.T))
    keep = eigenvalues > 1e-14 * max(1.0, float(eigenvalues.max(initial=0.0)))
    factors = vectors[:, keep] * np.sqrt(eigenvalues[keep])
    r = factors.shape[1]

    order = n + 2 * r
    e_matrix = np.zeros((order, order))
    a_matrix = np.zeros((order, order))
    b_matrix = np.zeros((order, m))
    c_matrix = np.zeros((m, order))

    e_matrix[:n, :n] = np.eye(n)
    a_matrix[:n, :n] = proper.a
    b_matrix[:n, :] = proper.b
    c_matrix[:, :n] = proper.c

    if r:
        # Block realizing s * L L^T:  E = [[0, I],[0, 0]], A = I,
        # B = [0; -L^T], C = [L, 0]  =>  C (sE - A)^{-1} B = s L L^T.
        e_matrix[n : n + r, n + r :] = np.eye(r)
        a_matrix[n:, n:] = np.eye(2 * r)
        b_matrix[n + r :, :] = -factors.T
        c_matrix[:, n : n + r] = factors
    return DescriptorSystem(e_matrix, a_matrix, b_matrix, c_matrix, m0)
