"""Structural matrix predicates and small shared helpers.

All predicates use *relative* tolerances scaled by the magnitude of the matrix
under test, which makes them robust for the widely varying magnitudes that MNA
circuit matrices exhibit (pico-farad capacitances next to kilo-ohm
conductances).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.exceptions import DimensionError

__all__ = [
    "as_square_array",
    "as_2d_array",
    "matrix_scale",
    "is_symmetric",
    "is_skew_symmetric",
    "is_hermitian",
    "is_positive_semidefinite",
    "is_positive_definite",
    "is_negative_semidefinite",
    "symmetric_part",
    "skew_part",
    "relative_error",
]


def as_2d_array(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Return ``matrix`` as a 2-D float/complex ndarray, validating its shape."""
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise DimensionError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.number):
        arr = arr.astype(float)
    return arr


def as_square_array(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Return ``matrix`` as a square 2-D ndarray, validating its shape."""
    arr = as_2d_array(matrix, name)
    if arr.shape[0] != arr.shape[1]:
        raise DimensionError(f"{name} must be square, got shape {arr.shape}")
    return arr


def matrix_scale(matrix: np.ndarray) -> float:
    """Return a scale for relative comparisons: ``max(1, largest magnitude)``."""
    arr = np.asarray(matrix)
    if arr.size == 0:
        return 1.0
    return max(1.0, float(np.max(np.abs(arr))))


def relative_error(actual: np.ndarray, expected: np.ndarray) -> float:
    """Frobenius-norm error of ``actual`` relative to the scale of ``expected``."""
    expected = np.asarray(expected, dtype=complex)
    actual = np.asarray(actual, dtype=complex)
    denom = max(1.0, float(np.linalg.norm(expected)))
    return float(np.linalg.norm(actual - expected)) / denom


def is_symmetric(
    matrix: np.ndarray, tol: Optional[Tolerances] = None
) -> bool:
    """Check whether a real or complex matrix equals its transpose."""
    tol = tol or DEFAULT_TOLERANCES
    arr = as_square_array(matrix)
    return bool(
        np.max(np.abs(arr - arr.T)) <= tol.structure_rtol * matrix_scale(arr)
    )


def is_skew_symmetric(
    matrix: np.ndarray, tol: Optional[Tolerances] = None
) -> bool:
    """Check whether a matrix equals the negative of its transpose."""
    tol = tol or DEFAULT_TOLERANCES
    arr = as_square_array(matrix)
    return bool(
        np.max(np.abs(arr + arr.T)) <= tol.structure_rtol * matrix_scale(arr)
    )


def is_hermitian(matrix: np.ndarray, tol: Optional[Tolerances] = None) -> bool:
    """Check whether a matrix equals its conjugate transpose."""
    tol = tol or DEFAULT_TOLERANCES
    arr = as_square_array(matrix)
    return bool(
        np.max(np.abs(arr - arr.conj().T)) <= tol.structure_rtol * matrix_scale(arr)
    )


def _hermitian_eigenvalues(matrix: np.ndarray) -> np.ndarray:
    """Eigenvalues of the Hermitian part of ``matrix`` (sorted ascending)."""
    arr = as_square_array(matrix)
    herm = 0.5 * (arr + arr.conj().T)
    return np.linalg.eigvalsh(herm)


def is_positive_semidefinite(
    matrix: np.ndarray, tol: Optional[Tolerances] = None
) -> bool:
    """Check whether the Hermitian part of ``matrix`` is positive semidefinite.

    The check allows eigenvalues down to ``-psd_atol * scale`` to absorb
    round-off from the reductions that produced the matrix.
    """
    tol = tol or DEFAULT_TOLERANCES
    arr = as_square_array(matrix)
    if arr.size == 0:
        return True
    eigs = _hermitian_eigenvalues(arr)
    return bool(eigs[0] >= -tol.psd_atol * matrix_scale(arr))


def is_positive_definite(
    matrix: np.ndarray, tol: Optional[Tolerances] = None
) -> bool:
    """Check whether the Hermitian part of ``matrix`` is positive definite."""
    tol = tol or DEFAULT_TOLERANCES
    arr = as_square_array(matrix)
    if arr.size == 0:
        return True
    eigs = _hermitian_eigenvalues(arr)
    return bool(eigs[0] > tol.psd_atol * matrix_scale(arr))


def is_negative_semidefinite(
    matrix: np.ndarray, tol: Optional[Tolerances] = None
) -> bool:
    """Check whether the Hermitian part of ``matrix`` is negative semidefinite."""
    return is_positive_semidefinite(-as_square_array(matrix), tol)


def symmetric_part(matrix: np.ndarray) -> np.ndarray:
    """Return the symmetric part ``(M + M^T) / 2``."""
    arr = as_square_array(matrix)
    return 0.5 * (arr + arr.T)


def skew_part(matrix: np.ndarray) -> np.ndarray:
    """Return the skew-symmetric part ``(M - M^T) / 2``."""
    arr = as_square_array(matrix)
    return 0.5 * (arr - arr.T)
