"""Continuous algebraic Riccati equations via the Hamiltonian Schur method.

Two entry points:

* :func:`solve_care` — the generic CARE
  ``A^T X + X A - X B R^{-1} B^T X + Q = 0`` solved through the stable
  invariant subspace of the associated Hamiltonian matrix.
* :func:`solve_positive_real_are` — the positive-real-lemma ARE of Eq. 5 of
  the paper, ``A^T X + X A + (X B - C^T)(D + D^T)^{-1}(B^T X - C) = 0``,
  used by the classic test for strict positive realness of *regular* systems.

Both come with an explicit residual check; the library treats the Riccati
machinery as a correctness reference for the cheaper Hamiltonian eigenvalue
test rather than as the primary passivity decision procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.exceptions import DimensionError, ReductionError, StructureError
from repro.linalg.basics import as_square_array, is_positive_definite, relative_error
from repro.linalg.invariant_subspace import hamiltonian_stable_invariant_subspace

__all__ = ["CareSolution", "solve_care", "solve_positive_real_are", "positive_real_hamiltonian"]


@dataclass(frozen=True)
class CareSolution:
    """Solution of an algebraic Riccati equation.

    Attributes
    ----------
    x:
        The stabilizing solution ``X = X^T``.
    closed_loop_eigenvalues:
        Eigenvalues of the closed-loop matrix (all in the open left half
        plane when the stabilizing solution exists).
    residual:
        Relative Frobenius residual of the Riccati equation at ``x``.
    """

    x: np.ndarray
    closed_loop_eigenvalues: np.ndarray
    residual: float


def solve_care(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    q_matrix: np.ndarray,
    r_matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
) -> CareSolution:
    """Solve ``A^T X + X A - X B R^{-1} B^T X + Q = 0`` for the stabilizing ``X``.

    The associated Hamiltonian matrix is ::

        H = [[A, -B R^{-1} B^T],
             [-Q, -A^T]]

    and the stabilizing solution is ``X = X2 X1^{-1}`` where the columns of
    ``[X1; X2]`` span the stable invariant subspace of ``H``.
    """
    tol = tol or DEFAULT_TOLERANCES
    a_arr = as_square_array(a_matrix, "A")
    n = a_arr.shape[0]
    b_arr = np.asarray(b_matrix, dtype=float).reshape(n, -1)
    q_arr = as_square_array(q_matrix, "Q")
    r_arr = as_square_array(r_matrix, "R")
    if q_arr.shape[0] != n:
        raise DimensionError("Q must have the same dimension as A")
    if r_arr.shape[0] != b_arr.shape[1]:
        raise DimensionError("R must match the number of columns of B")
    if not is_positive_definite(r_arr, tol):
        raise StructureError("R must be symmetric positive definite")

    r_inv_bt = np.linalg.solve(r_arr, b_arr.T)
    hamiltonian = np.block(
        [
            [a_arr, -b_arr @ r_inv_bt],
            [-q_arr, -a_arr.T],
        ]
    )
    splitting = hamiltonian_stable_invariant_subspace(
        hamiltonian, tol, check_structure=False
    )
    x1 = splitting.x1
    x2 = splitting.x2
    condition = np.linalg.cond(x1)
    if not np.isfinite(condition) or condition > 1.0 / (10 * tol.rank_rtol):
        raise ReductionError(
            "the stable invariant subspace has no graph-subspace representation; "
            "no stabilizing Riccati solution exists"
        )
    x_solution = np.linalg.solve(x1.T, x2.T).T
    x_solution = 0.5 * (x_solution + x_solution.T)

    residual_matrix = (
        a_arr.T @ x_solution
        + x_solution @ a_arr
        - x_solution @ b_arr @ np.linalg.solve(r_arr, b_arr.T) @ x_solution
        + q_arr
    )
    residual = float(np.linalg.norm(residual_matrix)) / max(
        1.0, float(np.linalg.norm(q_arr)), float(np.linalg.norm(x_solution))
    )
    closed_loop = a_arr - b_arr @ np.linalg.solve(r_arr, b_arr.T) @ x_solution
    return CareSolution(
        x=x_solution,
        closed_loop_eigenvalues=np.linalg.eigvals(closed_loop),
        residual=residual,
    )


def positive_real_hamiltonian(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    c_matrix: np.ndarray,
    d_matrix: np.ndarray,
) -> np.ndarray:
    """Hamiltonian matrix associated with the positive-real lemma.

    For a regular system ``(A, B, C, D)`` with ``R = D + D^T`` nonsingular the
    matrix ::

        H = [[ A - B R^{-1} C,        -B R^{-1} B^T     ],
             [ C^T R^{-1} C,   -(A - B R^{-1} C)^T ]]

    has a purely imaginary eigenvalue ``j w0`` exactly when
    ``G(j w0) + G(j w0)^*`` is singular — the standard spectral test for
    (loss of) strict positive realness used e.g. by Grivet-Talocia and by
    Zhou/Doyle/Glover, and the final step of the paper's flow.
    """
    a_arr = as_square_array(a_matrix, "A")
    n = a_arr.shape[0]
    b_arr = np.asarray(b_matrix, dtype=float).reshape(n, -1)
    c_arr = np.asarray(c_matrix, dtype=float).reshape(-1, n)
    d_arr = as_square_array(d_matrix, "D")
    r_matrix = d_arr + d_arr.T
    if np.linalg.matrix_rank(r_matrix) < r_matrix.shape[0]:
        raise StructureError(
            "the positive-real Hamiltonian requires D + D^T to be nonsingular"
        )
    r_inv_c = np.linalg.solve(r_matrix, c_arr)
    r_inv_bt = np.linalg.solve(r_matrix, b_arr.T)
    a_tilde = a_arr - b_arr @ r_inv_c
    return np.block(
        [
            [a_tilde, -b_arr @ r_inv_bt],
            [c_arr.T @ r_inv_c, -a_tilde.T],
        ]
    )


def solve_positive_real_are(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    c_matrix: np.ndarray,
    d_matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
) -> CareSolution:
    """Solve the positive-real-lemma ARE (paper Eq. 5).

    ``A^T X + X A + (X B - C^T)(D + D^T)^{-1}(B^T X - C) = 0``.

    Expanding the product shows this is a standard CARE with
    ``Q = C^T R^{-1} C``, input weight ``R = D + D^T`` and the shifted state
    matrix ``A - B R^{-1} C``; the equation is solved in that form.
    """
    tol = tol or DEFAULT_TOLERANCES
    a_arr = as_square_array(a_matrix, "A")
    n = a_arr.shape[0]
    b_arr = np.asarray(b_matrix, dtype=float).reshape(n, -1)
    c_arr = np.asarray(c_matrix, dtype=float).reshape(-1, n)
    d_arr = as_square_array(d_matrix, "D")
    r_matrix = d_arr + d_arr.T
    if not is_positive_definite(r_matrix, tol):
        raise StructureError(
            "the positive-real ARE requires D + D^T to be positive definite"
        )
    a_shift = a_arr - b_arr @ np.linalg.solve(r_matrix, c_arr)
    q_tilde = c_arr.T @ np.linalg.solve(r_matrix, c_arr)

    # Expanding Eq. 5 gives
    #   A_shift^T X + X A_shift + X B R^{-1} B^T X + C^T R^{-1} C = 0,
    # i.e. a CARE with the quadratic term entering with a *plus* sign.  The
    # substitution Y = -X turns it into a standard CARE whose Hamiltonian is
    # exactly the positive-real Hamiltonian below; its stabilizing solution is
    # Y = X2 X1^{-1}, hence X = -X2 X1^{-1}.
    hamiltonian = positive_real_hamiltonian(a_arr, b_arr, c_arr, d_arr)
    splitting = hamiltonian_stable_invariant_subspace(
        hamiltonian, tol, check_structure=False
    )
    x1 = splitting.x1
    x2 = splitting.x2
    condition = np.linalg.cond(x1)
    if not np.isfinite(condition) or condition > 1.0 / (10 * tol.rank_rtol):
        raise ReductionError(
            "no stabilizing solution of the positive-real ARE exists"
        )
    x_solution = -np.linalg.solve(x1.T, x2.T).T
    x_solution = 0.5 * (x_solution + x_solution.T)

    residual_matrix = (
        a_arr.T @ x_solution
        + x_solution @ a_arr
        + (x_solution @ b_arr - c_arr.T)
        @ np.linalg.solve(r_matrix, (b_arr.T @ x_solution - c_arr))
    )
    residual = float(np.linalg.norm(residual_matrix)) / max(
        1.0, float(np.linalg.norm(q_tilde)), float(np.linalg.norm(x_solution))
    )
    closed_loop = a_shift + b_arr @ np.linalg.solve(
        r_matrix, b_arr.T @ x_solution
    )
    return CareSolution(
        x=x_solution,
        closed_loop_eigenvalues=np.linalg.eigvals(closed_loop),
        residual=residual,
    )
