"""Coupled generalized Sylvester equations and pencil block-diagonalization.

Separating the finite (proper) and infinite (impulsive/nondynamic) spectral
parts of a descriptor system requires transforming an upper block-triangular
pencil in generalized Schur form ::

    ( [[A11, A12],      [[B11, B12],
       [  0, A22]] ,      [  0, B22]] )

into a block-diagonal one.  Writing the transformation as
``diag-blocks = [[I, -L], [0, I]] * pencil * [[I, R], [0, I]]`` leads to the
*coupled generalized Sylvester equation* ::

    A11 R - L A22 = -A12
    B11 R - L B22 = -B12

which is solved here column-by-column in complex Schur-like form (the blocks
produced by :func:`scipy.linalg.ordqz` are already (quasi-)triangular, but the
solver does not rely on that and works for general coefficients by an internal
QZ reduction of the ``(A22, B22)`` pair).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.linalg

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.exceptions import DimensionError, ReductionError
from repro.linalg.basics import as_square_array

__all__ = [
    "solve_generalized_coupled_sylvester",
    "block_diagonalize_pencil",
]


def solve_generalized_coupled_sylvester(
    a11: np.ndarray,
    a22: np.ndarray,
    a12: np.ndarray,
    b11: np.ndarray,
    b22: np.ndarray,
    b12: np.ndarray,
    tol: Optional[Tolerances] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``A11 R - L A22 = -A12`` and ``B11 R - L B22 = -B12`` for ``(R, L)``.

    The equation pair has a unique solution exactly when the pencils
    ``(A11, B11)`` and ``(A22, B22)`` have disjoint spectra — which is the
    situation in the finite/infinite separation where one block carries only
    finite and the other only infinite generalized eigenvalues.

    Raises
    ------
    ReductionError
        If the per-column linear systems become numerically singular,
        indicating overlapping spectra.
    """
    tol = tol or DEFAULT_TOLERANCES
    a11 = as_square_array(a11, "A11")
    a22 = as_square_array(a22, "A22")
    b11 = as_square_array(b11, "B11")
    b22 = as_square_array(b22, "B22")
    n1 = a11.shape[0]
    n2 = a22.shape[0]
    a12 = np.asarray(a12, dtype=float).reshape(n1, n2) if np.asarray(a12).size else np.zeros((n1, n2))
    b12 = np.asarray(b12, dtype=float).reshape(n1, n2) if np.asarray(b12).size else np.zeros((n1, n2))
    if b11.shape[0] != n1 or b22.shape[0] != n2:
        raise DimensionError("B blocks must match the sizes of the A blocks")
    if n1 == 0 or n2 == 0:
        return np.zeros((n1, n2)), np.zeros((n1, n2))

    # Bring the (A22, B22) pair to complex generalized Schur (triangular) form
    # so the columns can be solved by forward substitution.
    s22, t22, q22, z22 = scipy.linalg.qz(
        a22.astype(complex), b22.astype(complex), output="complex"
    )
    # A22 = q22 s22 z22^H, B22 = q22 t22 z22^H.  Substituting R~ = R z22 and
    # L~ = L q22 turns the pair into triangular equations in (R~, L~).
    c_rhs = -a12 @ z22
    f_rhs = -b12 @ z22

    r_tilde = np.zeros((n1, n2), dtype=complex)
    l_tilde = np.zeros((n1, n2), dtype=complex)

    for k in range(n2):
        rhs_top = c_rhs[:, k] + l_tilde[:, :k] @ s22[:k, k]
        rhs_bottom = f_rhs[:, k] + l_tilde[:, :k] @ t22[:k, k]
        system = np.block(
            [
                [a11.astype(complex), -s22[k, k] * np.eye(n1, dtype=complex)],
                [b11.astype(complex), -t22[k, k] * np.eye(n1, dtype=complex)],
            ]
        )
        rhs = np.concatenate([rhs_top, rhs_bottom])
        try:
            solution = np.linalg.solve(system, rhs)
        except np.linalg.LinAlgError as exc:
            raise ReductionError(
                "coupled generalized Sylvester equation is singular; the two "
                "diagonal pencil blocks share generalized eigenvalues"
            ) from exc
        r_tilde[:, k] = solution[:n1]
        l_tilde[:, k] = solution[n1:]

    r_solution = r_tilde @ z22.conj().T
    l_solution = l_tilde @ q22.conj().T

    if all(np.isrealobj(m) for m in (a11, a22, a12, b11, b22, b12)):
        return r_solution.real, l_solution.real
    return r_solution, l_solution


def block_diagonalize_pencil(
    a_schur: np.ndarray,
    b_schur: np.ndarray,
    split: int,
    tol: Optional[Tolerances] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Eliminate the coupling blocks of an upper block-triangular pencil.

    Given ``(A, B)`` upper block-triangular with leading block size ``split``,
    return nonsingular ``(left, right)`` of the form
    ``left = [[I, -L], [0, I]]`` and ``right = [[I, R], [0, I]]`` such that
    ``left @ A @ right`` and ``left @ B @ right`` are block diagonal.
    """
    a_arr = as_square_array(a_schur, "A")
    b_arr = as_square_array(b_schur, "B")
    n = a_arr.shape[0]
    if not 0 <= split <= n:
        raise DimensionError("split must lie between 0 and the pencil dimension")
    r_block, l_block = solve_generalized_coupled_sylvester(
        a_arr[:split, :split],
        a_arr[split:, split:],
        a_arr[:split, split:],
        b_arr[:split, :split],
        b_arr[split:, split:],
        b_arr[:split, split:],
        tol,
    )
    left = np.eye(n)
    right = np.eye(n)
    left[:split, split:] = -l_block
    right[:split, split:] = r_block
    return left, right
