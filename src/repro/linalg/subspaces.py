"""SVD-based subspace computations.

The reduction steps of the proposed passivity test are phrased entirely in
terms of kernels, ranges, intersections and set differences of subspaces
(Eqs. 11-17 of the paper).  Every routine here represents a subspace by a
matrix whose columns form an orthonormal basis; an ``(n, 0)`` matrix denotes
the trivial subspace.  All rank decisions use the relative threshold from
:class:`repro.config.Tolerances`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.exceptions import DimensionError
from repro.linalg.basics import as_2d_array

__all__ = [
    "numerical_rank",
    "column_space",
    "null_space",
    "left_null_space",
    "subspace_sum",
    "subspace_intersection",
    "orth_complement_within",
    "orth_complement",
    "subspace_difference",
    "subspaces_equal",
    "project_onto",
    "principal_angles",
    "contains_subspace",
]


def _empty_basis(dim: int, dtype=float) -> np.ndarray:
    return np.zeros((dim, 0), dtype=dtype)


def _rank_threshold(
    svals: np.ndarray, tol: Tolerances, reference_scale: Optional[float]
) -> float:
    """Singular-value cut-off for rank decisions.

    The threshold is relative to the largest singular value, but never smaller
    than ``rank_rtol * reference_scale`` when a reference scale is supplied.
    The reference scale matters when the matrix under test is the *projection
    of a larger matrix*: a projected block that should be exactly zero only
    contains round-off noise of size ``eps * scale(parent)``, and a purely
    self-relative threshold would mistake that noise for full rank.
    """
    largest = float(svals[0]) if svals.size else 0.0
    floor = tol.rank_rtol * float(reference_scale) if reference_scale else 0.0
    return max(tol.rank_rtol * largest, floor)


def numerical_rank(
    matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
    reference_scale: Optional[float] = None,
) -> int:
    """Numerical rank of ``matrix`` using the relative SVD threshold.

    ``reference_scale`` optionally anchors the threshold to the scale of a
    parent problem (see :func:`_rank_threshold`).
    """
    tol = tol or DEFAULT_TOLERANCES
    arr = as_2d_array(matrix)
    if arr.size == 0:
        return 0
    svals = np.linalg.svd(arr, compute_uv=False)
    if svals.size == 0 or svals[0] == 0.0:
        return 0
    return int(np.count_nonzero(svals > _rank_threshold(svals, tol, reference_scale)))


def column_space(
    matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
    reference_scale: Optional[float] = None,
) -> np.ndarray:
    """Orthonormal basis of the column space (range) of ``matrix``."""
    tol = tol or DEFAULT_TOLERANCES
    arr = as_2d_array(matrix)
    if arr.size == 0:
        return _empty_basis(arr.shape[0], arr.dtype)
    # The range only needs the "thin" left factor.
    u, svals, _ = np.linalg.svd(arr, full_matrices=False)
    if svals.size == 0 or svals[0] == 0.0:
        return _empty_basis(arr.shape[0], u.dtype)
    rank = int(np.count_nonzero(svals > _rank_threshold(svals, tol, reference_scale)))
    return u[:, :rank]


def null_space(
    matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
    reference_scale: Optional[float] = None,
) -> np.ndarray:
    """Orthonormal basis of the right null space (kernel) of ``matrix``."""
    tol = tol or DEFAULT_TOLERANCES
    arr = as_2d_array(matrix)
    n_rows, n_cols = arr.shape
    if arr.size == 0:
        return np.eye(n_cols, dtype=float)
    # A complete right factor (all n_cols right singular vectors) is required;
    # when the matrix has at least as many rows as columns the economy SVD
    # already provides it, which avoids forming the (possibly huge) full U.
    _, svals, vh = np.linalg.svd(arr, full_matrices=(n_rows < n_cols))
    if svals.size == 0 or svals[0] == 0.0:
        rank = 0
    else:
        rank = int(
            np.count_nonzero(svals > _rank_threshold(svals, tol, reference_scale))
        )
    return vh[rank:, :].conj().T


def left_null_space(
    matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
    reference_scale: Optional[float] = None,
) -> np.ndarray:
    """Orthonormal basis of the left null space: vectors ``z`` with ``z^H M = 0``."""
    return null_space(as_2d_array(matrix).conj().T, tol, reference_scale)


def subspace_sum(
    *bases: np.ndarray, tol: Optional[Tolerances] = None
) -> np.ndarray:
    """Orthonormal basis of the sum (span of the union) of the given subspaces."""
    tol = tol or DEFAULT_TOLERANCES
    nonempty = [as_2d_array(b) for b in bases if np.asarray(b).size > 0]
    if not nonempty:
        dims = [np.asarray(b).shape[0] for b in bases]
        if not dims:
            raise DimensionError("subspace_sum requires at least one basis")
        return _empty_basis(dims[0])
    dim = nonempty[0].shape[0]
    for basis in nonempty:
        if basis.shape[0] != dim:
            raise DimensionError("all bases must live in the same ambient space")
    stacked = np.hstack(nonempty)
    return column_space(stacked, tol)


def orth_complement(
    basis: np.ndarray, ambient_dim: Optional[int] = None,
    tol: Optional[Tolerances] = None,
) -> np.ndarray:
    """Orthonormal basis of the orthogonal complement of ``span(basis)``.

    ``ambient_dim`` must be supplied when ``basis`` has zero columns and its
    row dimension cannot be inferred.
    """
    tol = tol or DEFAULT_TOLERANCES
    arr = as_2d_array(basis)
    dim = arr.shape[0] if arr.shape[0] else (ambient_dim or 0)
    if arr.shape[1] == 0:
        return np.eye(dim)
    return left_null_space(arr, tol)


def subspace_intersection(
    basis_a: np.ndarray, basis_b: np.ndarray, tol: Optional[Tolerances] = None
) -> np.ndarray:
    """Orthonormal basis of the intersection of two subspaces.

    Uses the classical relation ``A ∩ B = (A^⊥ + B^⊥)^⊥`` which reduces the
    computation to two SVDs and is numerically well behaved for the nearly
    orthogonal bases produced elsewhere in the library.
    """
    tol = tol or DEFAULT_TOLERANCES
    a = as_2d_array(basis_a)
    b = as_2d_array(basis_b)
    if a.shape[0] != b.shape[0]:
        raise DimensionError("bases must live in the same ambient space")
    dim = a.shape[0]
    if a.shape[1] == 0 or b.shape[1] == 0:
        return _empty_basis(dim)
    a_perp = orth_complement(a, dim, tol)
    b_perp = orth_complement(b, dim, tol)
    both_perp = subspace_sum(a_perp, b_perp, tol=tol)
    return orth_complement(both_perp, dim, tol)


def project_onto(basis: np.ndarray, vectors: np.ndarray) -> np.ndarray:
    """Orthogonal projection of ``vectors`` (columns) onto ``span(basis)``."""
    basis = as_2d_array(basis)
    vectors = np.atleast_2d(np.asarray(vectors))
    if vectors.shape[0] != basis.shape[0]:
        vectors = vectors.T
    if basis.shape[1] == 0:
        return np.zeros_like(vectors)
    return basis @ (basis.conj().T @ vectors)


def orth_complement_within(
    basis_sub: np.ndarray, basis_full: np.ndarray, tol: Optional[Tolerances] = None
) -> np.ndarray:
    """Orthonormal basis of the part of ``span(basis_full)`` orthogonal to ``span(basis_sub)``.

    This implements the "set subtraction" used by the paper when forming the
    projection matrices (``Z_co = J Q_ô \\ (J Q_ô ∩ Z_ô)``): it returns a basis
    of the orthogonal complement of ``span(basis_sub)`` *inside*
    ``span(basis_full)``.
    """
    tol = tol or DEFAULT_TOLERANCES
    full = as_2d_array(basis_full)
    sub = as_2d_array(basis_sub)
    if full.shape[1] == 0:
        return _empty_basis(full.shape[0])
    if sub.shape[1] == 0:
        return column_space(full, tol)
    if full.shape[0] != sub.shape[0]:
        raise DimensionError("bases must live in the same ambient space")
    residual = full - project_onto(sub, full)
    return column_space(residual, tol)


# Alias matching the paper's wording.
subspace_difference = orth_complement_within


def principal_angles(
    basis_a: np.ndarray, basis_b: np.ndarray
) -> np.ndarray:
    """Principal angles (radians, ascending) between two subspaces."""
    a = column_space(basis_a)
    b = column_space(basis_b)
    if a.shape[1] == 0 or b.shape[1] == 0:
        return np.zeros(0)
    svals = np.linalg.svd(a.conj().T @ b, compute_uv=False)
    svals = np.clip(svals, -1.0, 1.0)
    return np.arccos(svals)


def contains_subspace(
    basis_outer: np.ndarray, basis_inner: np.ndarray,
    tol: Optional[Tolerances] = None,
) -> bool:
    """Check whether ``span(basis_inner)`` is contained in ``span(basis_outer)``."""
    tol = tol or DEFAULT_TOLERANCES
    inner = as_2d_array(basis_inner)
    if inner.shape[1] == 0:
        return True
    outer = as_2d_array(basis_outer)
    if outer.shape[1] == 0:
        return False
    residual = inner - project_onto(column_space(outer, tol), inner)
    return bool(np.linalg.norm(residual) <= 1e3 * tol.rank_rtol * max(1.0, np.linalg.norm(inner)))


def subspaces_equal(
    basis_a: np.ndarray, basis_b: np.ndarray, tol: Optional[Tolerances] = None
) -> bool:
    """Check whether two bases span the same subspace."""
    return contains_subspace(basis_a, basis_b, tol) and contains_subspace(
        basis_b, basis_a, tol
    )
