"""Symplectic and orthogonal-symplectic matrices.

Orthogonal symplectic similarity transformations are the work-horse of the
structure-preserving reductions in the paper: they keep Hamiltonian matrices
Hamiltonian and skew-Hamiltonian matrices skew-Hamiltonian (Section 3, quick
fact 3).  This module provides predicates, random generators (for tests) and
the two elementary orthogonal symplectic transformation families used by the
PVL reduction:

* ``diag(P, P)`` with ``P`` a Householder reflector ("double" reflectors),
* symplectic Givens rotations acting in the ``(k, n + k)`` plane.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.exceptions import DimensionError
from repro.linalg.basics import as_square_array, matrix_scale
from repro.linalg.elementary import (
    apply_givens_left,
    apply_givens_right,
    apply_householder_left,
    apply_householder_right,
    givens_rotation,
    householder_vector,
)
from repro.linalg.hamiltonian import check_even_dimension, symplectic_identity

__all__ = [
    "is_symplectic",
    "is_orthogonal",
    "is_orthogonal_symplectic",
    "random_orthogonal_symplectic",
    "apply_double_householder_similarity",
    "apply_symplectic_givens_similarity",
    "symplectic_from_householder",
    "symplectic_from_givens",
]


def is_orthogonal(matrix: np.ndarray, tol: Optional[Tolerances] = None) -> bool:
    """Check ``M^T M = I``."""
    tol = tol or DEFAULT_TOLERANCES
    arr = as_square_array(matrix)
    defect = np.max(np.abs(arr.T @ arr - np.eye(arr.shape[0])))
    return bool(defect <= tol.structure_rtol * matrix_scale(arr) ** 2)


def is_symplectic(matrix: np.ndarray, tol: Optional[Tolerances] = None) -> bool:
    """Check the symplectic property ``S^T J S = J``."""
    tol = tol or DEFAULT_TOLERANCES
    arr = as_square_array(matrix)
    if arr.shape[0] % 2 != 0:
        return False
    j = symplectic_identity(arr.shape[0] // 2)
    defect = np.max(np.abs(arr.T @ j @ arr - j))
    return bool(defect <= tol.structure_rtol * matrix_scale(arr) ** 2)


def is_orthogonal_symplectic(
    matrix: np.ndarray, tol: Optional[Tolerances] = None
) -> bool:
    """Check that ``matrix`` is both orthogonal and symplectic."""
    return is_orthogonal(matrix, tol) and is_symplectic(matrix, tol)


def random_orthogonal_symplectic(
    half_dim: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Random orthogonal symplectic matrix of size ``2 * half_dim``.

    Uses the standard parameterization ``[[U1, U2], [-U2, U1]]`` where
    ``U1 + i U2`` is a random unitary matrix, which is simultaneously
    orthogonal and symplectic.
    """
    rng = rng or np.random.default_rng()
    complex_matrix = rng.standard_normal((half_dim, half_dim)) + 1j * rng.standard_normal(
        (half_dim, half_dim)
    )
    q_unitary, _ = np.linalg.qr(complex_matrix)
    u1 = q_unitary.real
    u2 = q_unitary.imag
    return np.block([[u1, u2], [-u2, u1]])


def symplectic_from_householder(
    half_dim: int, v: np.ndarray, beta: float, start: int
) -> np.ndarray:
    """Dense ``diag(P, P)`` matrix with ``P = I - beta v v^T`` acting on indices ``start:``.

    Mostly a testing / reference helper; the PVL reduction applies the
    transformation in factored form instead.
    """
    p_matrix = np.eye(half_dim)
    if beta != 0.0:
        idx = np.arange(start, start + v.size)
        p_matrix[np.ix_(idx, idx)] -= beta * np.outer(v, v)
    return np.block(
        [
            [p_matrix, np.zeros((half_dim, half_dim))],
            [np.zeros((half_dim, half_dim)), p_matrix],
        ]
    )


def symplectic_from_givens(half_dim: int, c: float, s: float, k: int) -> np.ndarray:
    """Dense symplectic Givens rotation acting in the ``(k, half_dim + k)`` plane."""
    if not 0 <= k < half_dim:
        raise DimensionError("rotation index outside the upper half")
    g_matrix = np.eye(2 * half_dim)
    g_matrix[k, k] = c
    g_matrix[k, half_dim + k] = s
    g_matrix[half_dim + k, k] = -s
    g_matrix[half_dim + k, half_dim + k] = c
    return g_matrix


def apply_double_householder_similarity(
    matrix: np.ndarray,
    accumulator: Optional[np.ndarray],
    v: np.ndarray,
    beta: float,
    start: int,
) -> None:
    """In-place orthogonal symplectic similarity by ``diag(P, P)``.

    ``P = I - beta v v^T`` acts on the index window ``start : start + len(v)``
    of both the upper and the lower half.  ``accumulator`` (if given) collects
    the product of all applied transformations (multiplied from the right),
    so that after the reduction ``accumulator^T W_original accumulator`` equals
    the reduced matrix.
    """
    if beta == 0.0:
        return
    half_dim = check_even_dimension(matrix)
    idx_upper = np.arange(start, start + v.size)
    idx_lower = idx_upper + half_dim
    for rows in (idx_upper, idx_lower):
        apply_householder_left(matrix, v, beta, rows)
    for cols in (idx_upper, idx_lower):
        apply_householder_right(matrix, v, beta, cols)
    if accumulator is not None:
        for cols in (idx_upper, idx_lower):
            apply_householder_right(accumulator, v, beta, cols)


def apply_symplectic_givens_similarity(
    matrix: np.ndarray,
    accumulator: Optional[np.ndarray],
    c: float,
    s: float,
    k: int,
) -> None:
    """In-place orthogonal symplectic similarity by a Givens rotation in plane ``(k, n+k)``."""
    half_dim = check_even_dimension(matrix)
    apply_givens_left(matrix, c, s, k, half_dim + k)
    apply_givens_right(matrix, c, s, k, half_dim + k)
    if accumulator is not None:
        apply_givens_right(accumulator, c, s, k, half_dim + k)
