"""Hamiltonian and skew-Hamiltonian structure utilities.

The paper's central object is the skew-Hamiltonian/Hamiltonian (SHH) matrix
pencil ``lambda * E_phi - A_phi`` obtained when realizing
``Phi(s) = G(s) + G~(s)``.  This module provides:

* the symplectic unit matrix ``J = [[0, I], [-I, 0]]``,
* structure predicates (:func:`is_hamiltonian`, :func:`is_skew_hamiltonian`,
  :func:`is_shh_pencil`),
* block accessors and random generators used throughout the test suite,
* helpers describing the eigenvalue symmetry of Hamiltonian matrices
  (quadruplets ``(lambda, conj(lambda), -lambda, -conj(lambda))``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.exceptions import DimensionError, StructureError
from repro.linalg.basics import (
    as_square_array,
    is_skew_symmetric,
    is_symmetric,
    matrix_scale,
)

__all__ = [
    "symplectic_identity",
    "check_even_dimension",
    "is_hamiltonian",
    "is_skew_hamiltonian",
    "is_shh_pencil",
    "hamiltonian_blocks",
    "skew_hamiltonian_blocks",
    "make_hamiltonian",
    "make_skew_hamiltonian",
    "random_hamiltonian",
    "random_skew_hamiltonian",
    "hamiltonian_part",
    "skew_hamiltonian_part",
    "eigenvalue_pairing_defect",
]


def symplectic_identity(half_dim: int) -> np.ndarray:
    """Return the ``2*half_dim`` symplectic unit ``J = [[0, I], [-I, 0]]``."""
    if half_dim < 0:
        raise DimensionError("half_dim must be nonnegative")
    eye = np.eye(half_dim)
    zero = np.zeros((half_dim, half_dim))
    return np.block([[zero, eye], [-eye, zero]])


def check_even_dimension(matrix: np.ndarray, name: str = "matrix") -> int:
    """Validate that ``matrix`` is square with even dimension; return the half size."""
    arr = as_square_array(matrix, name)
    if arr.shape[0] % 2 != 0:
        raise DimensionError(
            f"{name} must have even dimension, got {arr.shape[0]}"
        )
    return arr.shape[0] // 2


def is_hamiltonian(matrix: np.ndarray, tol: Optional[Tolerances] = None) -> bool:
    """Check the Hamiltonian property ``(J H)^T = J H``."""
    tol = tol or DEFAULT_TOLERANCES
    arr = as_square_array(matrix)
    if arr.shape[0] % 2 != 0:
        return False
    j = symplectic_identity(arr.shape[0] // 2)
    return is_symmetric(j @ arr, tol)


def is_skew_hamiltonian(
    matrix: np.ndarray, tol: Optional[Tolerances] = None
) -> bool:
    """Check the skew-Hamiltonian property ``(J W)^T = -J W``."""
    tol = tol or DEFAULT_TOLERANCES
    arr = as_square_array(matrix)
    if arr.shape[0] % 2 != 0:
        return False
    j = symplectic_identity(arr.shape[0] // 2)
    return is_skew_symmetric(j @ arr, tol)


def is_shh_pencil(
    e_matrix: np.ndarray, a_matrix: np.ndarray, tol: Optional[Tolerances] = None
) -> bool:
    """Check that ``(E, A)`` is a skew-Hamiltonian/Hamiltonian pencil."""
    return is_skew_hamiltonian(e_matrix, tol) and is_hamiltonian(a_matrix, tol)


def hamiltonian_blocks(
    matrix: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(A, R, Q)`` from the Hamiltonian block form ``[[A, R], [Q, -A^T]]``.

    The function only slices; it does not verify the structure.  Use
    :func:`is_hamiltonian` beforehand if validation is required.
    """
    n = check_even_dimension(matrix, "Hamiltonian matrix")
    arr = np.asarray(matrix, dtype=float)
    return arr[:n, :n], arr[:n, n:], arr[n:, :n]


def skew_hamiltonian_blocks(
    matrix: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(A, R, Q)`` from the skew-Hamiltonian block form ``[[A, R], [Q, A^T]]``."""
    n = check_even_dimension(matrix, "skew-Hamiltonian matrix")
    arr = np.asarray(matrix, dtype=float)
    return arr[:n, :n], arr[:n, n:], arr[n:, :n]


def make_hamiltonian(
    a_block: np.ndarray, r_block: np.ndarray, q_block: np.ndarray
) -> np.ndarray:
    """Assemble ``[[A, R], [Q, -A^T]]``; ``R`` and ``Q`` must be symmetric."""
    a_block = as_square_array(a_block, "A block")
    r_block = as_square_array(r_block, "R block")
    q_block = as_square_array(q_block, "Q block")
    if not (a_block.shape == r_block.shape == q_block.shape):
        raise DimensionError("all blocks must share the same shape")
    if not is_symmetric(r_block) or not is_symmetric(q_block):
        raise StructureError("R and Q blocks of a Hamiltonian matrix must be symmetric")
    return np.block([[a_block, r_block], [q_block, -a_block.T]])


def make_skew_hamiltonian(
    a_block: np.ndarray, r_block: np.ndarray, q_block: np.ndarray
) -> np.ndarray:
    """Assemble ``[[A, R], [Q, A^T]]``; ``R`` and ``Q`` must be skew-symmetric."""
    a_block = as_square_array(a_block, "A block")
    r_block = as_square_array(r_block, "R block")
    q_block = as_square_array(q_block, "Q block")
    if not (a_block.shape == r_block.shape == q_block.shape):
        raise DimensionError("all blocks must share the same shape")
    if not is_skew_symmetric(r_block) or not is_skew_symmetric(q_block):
        raise StructureError(
            "R and Q blocks of a skew-Hamiltonian matrix must be skew-symmetric"
        )
    return np.block([[a_block, r_block], [q_block, a_block.T]])


def random_hamiltonian(
    half_dim: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Random dense Hamiltonian matrix of size ``2 * half_dim`` (for testing)."""
    rng = rng or np.random.default_rng()
    a_block = rng.standard_normal((half_dim, half_dim))
    r_block = rng.standard_normal((half_dim, half_dim))
    q_block = rng.standard_normal((half_dim, half_dim))
    return make_hamiltonian(
        a_block, 0.5 * (r_block + r_block.T), 0.5 * (q_block + q_block.T)
    )


def random_skew_hamiltonian(
    half_dim: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Random dense skew-Hamiltonian matrix of size ``2 * half_dim`` (for testing)."""
    rng = rng or np.random.default_rng()
    a_block = rng.standard_normal((half_dim, half_dim))
    r_block = rng.standard_normal((half_dim, half_dim))
    q_block = rng.standard_normal((half_dim, half_dim))
    return make_skew_hamiltonian(
        a_block, 0.5 * (r_block - r_block.T), 0.5 * (q_block - q_block.T)
    )


def hamiltonian_part(matrix: np.ndarray) -> np.ndarray:
    """Hamiltonian part of a square even-dimensional matrix.

    Every ``2n x 2n`` matrix ``M`` splits uniquely as ``M = H + W`` with ``H``
    Hamiltonian and ``W`` skew-Hamiltonian; this returns ``H``.
    """
    n = check_even_dimension(matrix)
    arr = np.asarray(matrix, dtype=float)
    j = symplectic_identity(n)
    jm = j @ arr
    sym = 0.5 * (jm + jm.T)
    return -j @ sym


def skew_hamiltonian_part(matrix: np.ndarray) -> np.ndarray:
    """Skew-Hamiltonian part of a square even-dimensional matrix."""
    n = check_even_dimension(matrix)
    arr = np.asarray(matrix, dtype=float)
    j = symplectic_identity(n)
    jm = j @ arr
    skew = 0.5 * (jm - jm.T)
    return -j @ skew


def eigenvalue_pairing_defect(matrix: np.ndarray) -> float:
    """Measure how far the spectrum is from the Hamiltonian ``±lambda`` symmetry.

    For an exactly Hamiltonian matrix the eigenvalues come in pairs
    ``(lambda, -lambda)`` so the returned defect is (numerically) zero.  The
    defect is the Hausdorff-like distance between the spectrum and its
    negation, normalized by the matrix scale.
    """
    arr = as_square_array(matrix)
    eigs = np.linalg.eigvals(arr)
    negated = -eigs
    defect = 0.0
    for value in eigs:
        defect = max(defect, float(np.min(np.abs(negated - value))))
    return defect / matrix_scale(arr)
