"""Structured dense linear algebra substrate.

This subpackage collects every matrix-level building block used by the
descriptor-system machinery and the passivity tests:

* :mod:`repro.linalg.basics` — structural predicates (symmetry, definiteness)
  and small helpers shared across the library.
* :mod:`repro.linalg.subspaces` — SVD-based range/kernel computations,
  intersections, sums and orthogonal complements of subspaces.
* :mod:`repro.linalg.elementary` — Householder reflectors and Givens rotations.
* :mod:`repro.linalg.hamiltonian` — Hamiltonian / skew-Hamiltonian structure.
* :mod:`repro.linalg.symplectic` — (orthogonal) symplectic matrices and the
  elementary orthogonal symplectic transformations used by the PVL reduction.
* :mod:`repro.linalg.skew_hamiltonian_schur` — Van Loan (PVL) block
  triangularization of skew-Hamiltonian matrices and the conversion of a
  nonsingular skew-Hamiltonian/Hamiltonian pencil to a standard Hamiltonian
  state matrix.
* :mod:`repro.linalg.invariant_subspace` — ordered Schur forms and stable
  invariant subspaces (plain and Hamiltonian-aware).
* :mod:`repro.linalg.lyapunov` / :mod:`repro.linalg.sylvester` — Bartels–Stewart
  type solvers for Lyapunov, Sylvester and coupled generalized Sylvester
  equations.
* :mod:`repro.linalg.riccati` — continuous algebraic Riccati equations via the
  Hamiltonian Schur method.
* :mod:`repro.linalg.pencil` — regularity, generalized eigenvalues and
  finite/infinite spectral classification of matrix pencils.
* :mod:`repro.linalg.batched` — stacked (batched) eigenvalue and response
  kernels: ``(k, n, n)`` gufunc stacks that run one GIL-releasing LAPACK
  region per batch instead of one Python call per matrix.
* :mod:`repro.linalg.sparse` — the sparsity-preserving helpers of the sparse
  MNA backend: canonical CSR forms, sparse LU-backed solves, Gershgorin /
  Lanczos spectral probes and the permutation-based nondynamic deflation.
"""

from repro.linalg.batched import (
    batched_eigvals,
    batched_eigvalsh,
    batched_hermitian_min_eig,
    group_by_shape,
    state_space_hermitian_min_eigs,
)
from repro.linalg.basics import (
    is_hermitian,
    is_negative_semidefinite,
    is_positive_definite,
    is_positive_semidefinite,
    is_skew_symmetric,
    is_symmetric,
    skew_part,
    symmetric_part,
)
from repro.linalg.subspaces import (
    column_space,
    left_null_space,
    null_space,
    orth_complement_within,
    subspace_intersection,
    subspace_sum,
    subspaces_equal,
)
from repro.linalg.hamiltonian import (
    hamiltonian_blocks,
    is_hamiltonian,
    is_skew_hamiltonian,
    is_shh_pencil,
    random_hamiltonian,
    random_skew_hamiltonian,
    symplectic_identity,
)
from repro.linalg.symplectic import (
    is_orthogonal_symplectic,
    is_symplectic,
    random_orthogonal_symplectic,
)
from repro.linalg.skew_hamiltonian_schur import (
    pvl_decomposition,
    shh_pencil_to_hamiltonian,
)
from repro.linalg.invariant_subspace import (
    hamiltonian_stable_invariant_subspace,
    stable_invariant_subspace,
)
from repro.linalg.lyapunov import solve_continuous_lyapunov, solve_sylvester
from repro.linalg.sylvester import solve_generalized_coupled_sylvester
from repro.linalg.riccati import solve_care, solve_positive_real_are
from repro.linalg.pencil import (
    SpectralContext,
    classify_alpha_beta,
    classify_generalized_eigenvalues,
    compute_spectral_context,
    generalized_eigenvalues,
    is_regular_pencil,
    ordered_qz_finite_first,
    pencil_degree,
)
from repro.linalg.sparse import (
    SparseDeflation,
    extreme_symmetric_eigenvalue,
    is_sparse_nsd,
    is_sparse_psd,
    is_sparse_symmetric,
    kernel_permutation,
    sparse_nondynamic_deflation,
    sparse_regularity_probe,
    symmetric_spectrum_bounds,
    to_canonical_csr,
    try_sparse_lu,
)

__all__ = [
    "batched_eigvals",
    "batched_eigvalsh",
    "batched_hermitian_min_eig",
    "group_by_shape",
    "state_space_hermitian_min_eigs",
    "is_symmetric",
    "is_skew_symmetric",
    "is_hermitian",
    "is_positive_semidefinite",
    "is_positive_definite",
    "is_negative_semidefinite",
    "symmetric_part",
    "skew_part",
    "column_space",
    "null_space",
    "left_null_space",
    "subspace_intersection",
    "subspace_sum",
    "orth_complement_within",
    "subspaces_equal",
    "symplectic_identity",
    "is_hamiltonian",
    "is_skew_hamiltonian",
    "is_shh_pencil",
    "hamiltonian_blocks",
    "random_hamiltonian",
    "random_skew_hamiltonian",
    "is_symplectic",
    "is_orthogonal_symplectic",
    "random_orthogonal_symplectic",
    "pvl_decomposition",
    "shh_pencil_to_hamiltonian",
    "stable_invariant_subspace",
    "hamiltonian_stable_invariant_subspace",
    "solve_continuous_lyapunov",
    "solve_sylvester",
    "solve_generalized_coupled_sylvester",
    "solve_care",
    "solve_positive_real_are",
    "generalized_eigenvalues",
    "classify_alpha_beta",
    "classify_generalized_eigenvalues",
    "is_regular_pencil",
    "ordered_qz_finite_first",
    "pencil_degree",
    "SpectralContext",
    "compute_spectral_context",
    "SparseDeflation",
    "extreme_symmetric_eigenvalue",
    "is_sparse_nsd",
    "is_sparse_psd",
    "is_sparse_symmetric",
    "kernel_permutation",
    "sparse_nondynamic_deflation",
    "sparse_regularity_probe",
    "symmetric_spectrum_bounds",
    "to_canonical_csr",
    "try_sparse_lu",
]
