"""Matrix-pencil utilities: regularity, generalized spectra, spectral classification.

A descriptor system is built on the pencil ``s E - A``.  Everything the paper
needs from the pencil level is collected here:

* :func:`is_regular_pencil` — regularity (``det(s E - A)`` not identically 0),
* :func:`generalized_eigenvalues` — the raw ``(alpha, beta)`` pairs from QZ,
* :func:`classify_generalized_eigenvalues` — finite vs. infinite split and
  stability classification of the finite part,
* :func:`pencil_degree` — ``deg det(s E - A)``, i.e. the number of finite
  dynamic modes ``q`` of Section 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np
import scipy.linalg

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.exceptions import DimensionError, SingularPencilError
from repro.linalg.basics import as_square_array, matrix_scale
from repro.obs.trace import trace_span

__all__ = [
    "generalized_eigenvalues",
    "GeneralizedSpectrum",
    "classify_alpha_beta",
    "classify_generalized_eigenvalues",
    "is_regular_pencil",
    "pencil_degree",
    "ordered_qz_finite_first",
    "SpectralContext",
    "compute_spectral_context",
]


def _check_pencil(e_matrix: np.ndarray, a_matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    e_arr = as_square_array(e_matrix, "E")
    a_arr = as_square_array(a_matrix, "A")
    if e_arr.shape != a_arr.shape:
        raise DimensionError("E and A must have the same shape")
    return e_arr, a_arr


def generalized_eigenvalues(
    e_matrix: np.ndarray, a_matrix: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Return the ``(alpha, beta)`` pairs of the pencil ``s E - A``.

    The generalized eigenvalues are ``alpha / beta`` with ``beta = 0``
    signalling an infinite eigenvalue.  The convention matches
    ``lambda E x = A x``: pairs are computed from ``scipy.linalg.qz`` applied
    to ``(A, E)``.
    """
    e_arr, a_arr = _check_pencil(e_matrix, a_matrix)
    if e_arr.shape[0] == 0:
        return np.zeros(0, dtype=complex), np.zeros(0, dtype=complex)
    aa, bb, *_ = scipy.linalg.qz(a_arr, e_arr, output="complex")
    alpha = np.diag(aa)
    beta = np.diag(bb)
    return alpha, beta


@dataclass(frozen=True)
class GeneralizedSpectrum:
    """Classification of the generalized spectrum of a regular pencil.

    Attributes
    ----------
    finite:
        The finite generalized eigenvalues (complex array).
    n_infinite:
        Number of infinite eigenvalues (counting multiplicity).
    n_stable / n_unstable / n_imaginary:
        Counts of finite eigenvalues in the open left half plane, open right
        half plane and (numerically) on the imaginary axis.
    """

    finite: np.ndarray
    n_infinite: int
    n_stable: int = field(default=0)
    n_unstable: int = field(default=0)
    n_imaginary: int = field(default=0)

    @property
    def is_stable(self) -> bool:
        """True when every finite eigenvalue lies in the open left half plane."""
        return self.n_unstable == 0 and self.n_imaginary == 0


def classify_alpha_beta(
    alpha: np.ndarray,
    beta: np.ndarray,
    tol: Optional[Tolerances] = None,
) -> GeneralizedSpectrum:
    """Classify raw ``(alpha, beta)`` pairs into a :class:`GeneralizedSpectrum`.

    Shared by :func:`classify_generalized_eigenvalues` (which computes the
    pairs with a fresh QZ) and :class:`SpectralContext` (which reuses the pairs
    of an already-computed ordered QZ).
    """
    tol = tol or DEFAULT_TOLERANCES
    alpha = np.asarray(alpha, dtype=complex)
    beta = np.asarray(beta, dtype=complex)
    finite_mask = np.abs(beta) > tol.infinite_eig_threshold * np.maximum(1.0, np.abs(alpha))
    finite = alpha[finite_mask] / beta[finite_mask]
    n_infinite = int(np.count_nonzero(~finite_mask))
    threshold = tol.eig_imag_atol * max(1.0, float(np.max(np.abs(finite), initial=1.0)))
    n_stable = int(np.count_nonzero(finite.real < -threshold))
    n_unstable = int(np.count_nonzero(finite.real > threshold))
    n_imaginary = finite.size - n_stable - n_unstable
    return GeneralizedSpectrum(
        finite=finite,
        n_infinite=n_infinite,
        n_stable=n_stable,
        n_unstable=n_unstable,
        n_imaginary=n_imaginary,
    )


def classify_generalized_eigenvalues(
    e_matrix: np.ndarray,
    a_matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
) -> GeneralizedSpectrum:
    """Split the generalized spectrum into finite/infinite and classify stability."""
    tol = tol or DEFAULT_TOLERANCES
    e_arr, a_arr = _check_pencil(e_matrix, a_matrix)
    alpha, beta = generalized_eigenvalues(e_arr, a_arr)
    return classify_alpha_beta(alpha, beta, tol)


def is_regular_pencil(
    e_matrix: np.ndarray,
    a_matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
    n_probes: int = 3,
    rng: Optional[np.random.Generator] = None,
) -> bool:
    """Check regularity of the pencil ``s E - A``.

    The pencil is regular iff ``det(s0 E - A) != 0`` for some ``s0``.  The test
    evaluates the smallest singular value of ``s0 E - A`` at a few random
    probe points ``s0`` on a circle whose radius reflects the matrix scale;
    a regular pencil yields a comfortably nonsingular matrix at all but a
    measure-zero set of probe points.
    """
    tol = tol or DEFAULT_TOLERANCES
    e_arr, a_arr = _check_pencil(e_matrix, a_matrix)
    n = e_arr.shape[0]
    if n == 0:
        return True
    rng = rng or np.random.default_rng(20060724)
    scale = max(matrix_scale(a_arr), matrix_scale(e_arr))
    for _ in range(n_probes):
        angle = rng.uniform(0.0, 2.0 * np.pi)
        probe = scale * np.exp(1j * angle)
        shifted = probe * e_arr - a_arr
        smallest = np.linalg.svd(shifted, compute_uv=False)[-1]
        if smallest > n * tol.rank_rtol * max(1.0, np.abs(probe)) * scale:
            return True
    return False


def pencil_degree(
    e_matrix: np.ndarray, a_matrix: np.ndarray, tol: Optional[Tolerances] = None
) -> int:
    """Degree of ``det(s E - A)``: the number of finite dynamic modes ``q``.

    Raises
    ------
    SingularPencilError
        If the pencil is not regular (the degree is then undefined).
    """
    tol = tol or DEFAULT_TOLERANCES
    e_arr, a_arr = _check_pencil(e_matrix, a_matrix)
    if not is_regular_pencil(e_arr, a_arr, tol):
        raise SingularPencilError("the pencil s E - A is singular")
    spectrum = classify_generalized_eigenvalues(e_arr, a_arr, tol)
    return int(spectrum.finite.size)


def ordered_qz_finite_first(
    e_matrix: np.ndarray,
    a_matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Ordered generalized Schur form with the finite eigenvalues leading.

    Computes orthogonal/unitary ``Q, Z`` such that ``Q^H A Z`` and
    ``Q^H E Z`` are upper (quasi-)triangular with all finite generalized
    eigenvalues appearing in the leading block.  This is the orthogonal,
    numerically safe alternative to the Weierstrass transformation that the
    Weierstrass-baseline test and the Markov-parameter extraction build upon.

    Returns
    -------
    (aa, ee, q, z, n_finite):
        The transformed pencil matrices (``aa = Q^H A Z``, ``ee = Q^H E Z``),
        the transformation matrices and the number of finite eigenvalues.
    """
    aa, ee, alpha, beta, q, z, n_finite = _ordered_qz_with_eigenvalues(
        e_matrix, a_matrix, tol
    )
    return aa, ee, q, z, n_finite


def _ordered_qz_with_eigenvalues(
    e_matrix: np.ndarray,
    a_matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """:func:`ordered_qz_finite_first` plus the raw ``(alpha, beta)`` pairs."""
    tol = tol or DEFAULT_TOLERANCES
    e_arr, a_arr = _check_pencil(e_matrix, a_matrix)
    n = e_arr.shape[0]
    if n == 0:
        empty = np.zeros((0, 0))
        empty_eigs = np.zeros(0, dtype=complex)
        return empty, empty, empty_eigs, empty_eigs, empty, empty, 0

    threshold = tol.infinite_eig_threshold

    def _finite(alpha: np.ndarray, beta: np.ndarray) -> np.ndarray:
        return np.abs(beta) > threshold * np.maximum(1.0, np.abs(alpha))

    with trace_span("qz.ordered", order=n):
        aa, ee, alpha, beta, q, z = scipy.linalg.ordqz(
            a_arr, e_arr, sort=_finite, output="real"
        )
    n_finite = int(np.count_nonzero(_finite(alpha, beta)))
    return aa, ee, alpha, beta, q, z, n_finite


@dataclass(frozen=True)
class SpectralContext:
    """One ordered QZ factorization of ``(E, A)`` and everything derived from it.

    This is the compute-once spectral bundle the engine threads through the
    structural profile, the passivity methods and the finite/infinite
    reduction: a single O(n^3) decomposition answers regularity, stability,
    the finite/infinite split *and* seeds the Weierstrass-style separation, so
    no consumer has to refactor the pencil.

    Attributes
    ----------
    is_regular:
        Regularity verdict of the pencil ``s E - A`` (probe-based, computed
        before the QZ; for a singular pencil no factorization is stored).
    n_finite:
        Number of finite generalized eigenvalues (0 for a singular pencil).
    aa / ee / q / z:
        The ordered real generalized Schur factors with the finite
        eigenvalues leading: ``aa = Q^T A Z`` and ``ee = Q^T E Z`` are upper
        (quasi-)triangular.  ``None`` when the pencil is singular.
    alpha / beta:
        The raw generalized-eigenvalue pairs of the ordered factorization
        (``None`` when the pencil is singular).
    spectrum:
        The classified :class:`GeneralizedSpectrum` (``None`` when the pencil
        is singular, whose spectrum is undefined).
    """

    is_regular: bool
    n_finite: int
    aa: Optional[np.ndarray] = None
    ee: Optional[np.ndarray] = None
    q: Optional[np.ndarray] = None
    z: Optional[np.ndarray] = None
    alpha: Optional[np.ndarray] = None
    beta: Optional[np.ndarray] = None
    spectrum: Optional[GeneralizedSpectrum] = None

    @property
    def is_stable(self) -> bool:
        """Stability of the finite spectrum (``False`` for a singular pencil)."""
        return bool(self.spectrum is not None and self.spectrum.is_stable)

    def ordered_qz(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
        """The cached :func:`ordered_qz_finite_first` result ``(aa, ee, q, z, n_finite)``.

        Raises
        ------
        SingularPencilError
            If the pencil is singular (no factorization was performed).
        """
        if self.aa is None:
            raise SingularPencilError(
                "the pencil s E - A is singular; no ordered QZ factorization "
                "is available"
            )
        return self.aa, self.ee, self.q, self.z, self.n_finite

    def classified_spectrum(self) -> GeneralizedSpectrum:
        """The classified spectrum, raising for a singular pencil."""
        if self.spectrum is None:
            raise SingularPencilError(
                "the pencil s E - A is singular; its spectrum is undefined"
            )
        return self.spectrum

    def to_arrays(self) -> "dict":
        """Flatten the context to a dict of NumPy arrays (store wire form).

        Everything — including the boolean/integer header and the classified
        spectrum counts — is packed into plain arrays so the bundle can be
        written to an ``.npz`` blob without pickling.  The inverse is
        :meth:`from_arrays`; the round trip is exact (no re-factorization and
        no re-classification happens on load).
        """
        payload = {
            "header": np.array(
                [int(self.is_regular), int(self.n_finite)], dtype=np.int64
            )
        }
        if not self.is_regular:
            return payload
        payload.update(
            aa=self.aa,
            ee=self.ee,
            q=self.q,
            z=self.z,
            alpha=np.asarray(self.alpha, dtype=complex),
            beta=np.asarray(self.beta, dtype=complex),
            spectrum_finite=np.asarray(self.spectrum.finite, dtype=complex),
            spectrum_counts=np.array(
                [
                    self.spectrum.n_infinite,
                    self.spectrum.n_stable,
                    self.spectrum.n_unstable,
                    self.spectrum.n_imaginary,
                ],
                dtype=np.int64,
            ),
        )
        return payload

    @classmethod
    def from_arrays(cls, arrays: "dict") -> "SpectralContext":
        """Rebuild a :class:`SpectralContext` from :meth:`to_arrays` output.

        Accepts any mapping of array-likes (in particular a loaded ``.npz``
        file), so the persistent store can rehydrate contexts without ever
        touching the pencil.

        Raises
        ------
        KeyError, ValueError
            When the mapping does not hold a well-formed bundle (the store
            treats either as blob corruption and falls back to computing).
        """
        header = np.asarray(arrays["header"], dtype=np.int64)
        if header.shape != (2,):
            raise ValueError(f"malformed spectral-context header {header!r}")
        is_regular, n_finite = bool(header[0]), int(header[1])
        if not is_regular:
            return cls(is_regular=False, n_finite=0)
        counts = np.asarray(arrays["spectrum_counts"], dtype=np.int64)
        if counts.shape != (4,):
            raise ValueError(f"malformed spectrum counts {counts!r}")
        spectrum = GeneralizedSpectrum(
            finite=np.asarray(arrays["spectrum_finite"], dtype=complex),
            n_infinite=int(counts[0]),
            n_stable=int(counts[1]),
            n_unstable=int(counts[2]),
            n_imaginary=int(counts[3]),
        )
        return cls(
            is_regular=True,
            n_finite=n_finite,
            aa=np.asarray(arrays["aa"], dtype=float),
            ee=np.asarray(arrays["ee"], dtype=float),
            q=np.asarray(arrays["q"], dtype=float),
            z=np.asarray(arrays["z"], dtype=float),
            alpha=np.asarray(arrays["alpha"], dtype=complex),
            beta=np.asarray(arrays["beta"], dtype=complex),
            spectrum=spectrum,
        )


def compute_spectral_context(
    e_matrix: np.ndarray,
    a_matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
) -> SpectralContext:
    """Compute the :class:`SpectralContext` of the pencil ``s E - A``.

    Performs the probe-based regularity check followed by exactly **one**
    ordered QZ factorization (none for a singular pencil).  Every spectral
    question downstream — regularity, stability, finite/infinite split,
    Weierstrass-style separation — is answered from the returned bundle
    without touching the pencil again.
    """
    tol = tol or DEFAULT_TOLERANCES
    e_arr, a_arr = _check_pencil(e_matrix, a_matrix)
    if not is_regular_pencil(e_arr, a_arr, tol):
        return SpectralContext(is_regular=False, n_finite=0)
    aa, ee, alpha, beta, q, z, n_finite = _ordered_qz_with_eigenvalues(
        e_arr, a_arr, tol
    )
    spectrum = classify_alpha_beta(alpha, beta, tol)
    return SpectralContext(
        is_regular=True,
        n_finite=n_finite,
        aa=aa,
        ee=ee,
        q=q,
        z=z,
        alpha=np.asarray(alpha, dtype=complex),
        beta=np.asarray(beta, dtype=complex),
        spectrum=spectrum,
    )
