"""Structure-preserving reductions of skew-Hamiltonian matrices and SHH pencils.

Two algorithms live here:

* :func:`pvl_decomposition` — the Paige/Van Loan (PVL) reduction: an orthogonal
  symplectic similarity bringing a skew-Hamiltonian matrix ``W`` to the block
  upper-triangular form ``[[W11, W12], [0, W11^T]]`` with ``W11`` upper
  Hessenberg.  This is the dense O(n^3) counterpart of the isotropic Arnoldi
  process of Mehrmann & Watkins that the paper cites for Eq. 21; the dense
  variant is the appropriate choice for the dense circuit models used in the
  paper's experiments.
* :func:`shh_pencil_to_hamiltonian` — given a skew-Hamiltonian/Hamiltonian
  pencil ``lambda W - H`` with ``W`` nonsingular, construct (non-orthogonal but
  well-structured) left/right transformations ``Z_L, Z_R`` such that
  ``Z_L W Z_R = I`` and ``Z_L H Z_R`` is again Hamiltonian.  This realises the
  paper's Eq. 21: the pencil is converted to a *standard* Hamiltonian state
  matrix so that the stable/anti-stable splitting of Eq. 22 can be applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.exceptions import ReductionError, StructureError
from repro.linalg.basics import matrix_scale
from repro.linalg.elementary import givens_rotation, householder_vector
from repro.linalg.hamiltonian import (
    check_even_dimension,
    hamiltonian_part,
    is_hamiltonian,
    is_skew_hamiltonian,
    symplectic_identity,
)
from repro.linalg.symplectic import (
    apply_double_householder_similarity,
    apply_symplectic_givens_similarity,
)

__all__ = ["pvl_decomposition", "shh_pencil_to_hamiltonian", "PencilToStateSpace"]


def pvl_decomposition(
    skew_hamiltonian: np.ndarray,
    tol: Optional[Tolerances] = None,
    check_structure: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Paige/Van Loan reduction of a skew-Hamiltonian matrix.

    Computes an orthogonal symplectic matrix ``U`` such that::

        U^T W U = [[W11, W12],
                   [  0, W11^T]]

    with ``W11`` upper Hessenberg and ``W12`` skew-symmetric.

    Parameters
    ----------
    skew_hamiltonian:
        The ``2n x 2n`` skew-Hamiltonian matrix ``W``.
    tol:
        Tolerance bundle used for the optional structure check.
    check_structure:
        When true (default), raise :class:`StructureError` if ``W`` is not
        skew-Hamiltonian within tolerance.

    Returns
    -------
    (U, T):
        ``U`` orthogonal symplectic and ``T = U^T W U`` in PVL form.
    """
    tol = tol or DEFAULT_TOLERANCES
    work = np.array(skew_hamiltonian, dtype=float, copy=True)
    half = check_even_dimension(work, "skew-Hamiltonian matrix")
    if check_structure and not is_skew_hamiltonian(work, tol):
        raise StructureError("pvl_decomposition requires a skew-Hamiltonian matrix")

    accumulator = np.eye(2 * half)
    for j in range(half - 1):
        # (a) Householder on window j+1 .. half-1 (both halves) compressing the
        #     lower-left block column j onto its first sub-diagonal entry.
        lower_col = work[half + j + 1 : 2 * half, j]
        if lower_col.size > 1:
            v, beta = householder_vector(lower_col)
            apply_double_householder_similarity(work, accumulator, v, beta, j + 1)
        # (b) Symplectic Givens in the (j+1, half+j+1) plane zeroing the
        #     remaining lower-left entry against the upper-left sub-diagonal.
        a_entry = work[j + 1, j]
        b_entry = work[half + j + 1, j]
        c, s = givens_rotation(a_entry, b_entry)
        apply_symplectic_givens_similarity(work, accumulator, c, s, j + 1)
        # (c) Householder restoring the Hessenberg pattern of the upper-left
        #     block; this is what protects the zeros of earlier sweeps.
        upper_col = work[j + 1 : half, j]
        if upper_col.size > 1:
            v, beta = householder_vector(upper_col)
            apply_double_householder_similarity(work, accumulator, v, beta, j + 1)

    # Clean the structurally-zero lower-left block of round-off noise.
    work[half:, :half] = 0.0
    return accumulator, work


@dataclass(frozen=True)
class PencilToStateSpace:
    """Result of converting an SHH pencil ``lambda W - H`` to standard form.

    Attributes
    ----------
    left:
        Left transformation ``Z_L`` (satisfies ``Z_L W Z_R = I``).
    right:
        Right transformation ``Z_R``.
    hamiltonian:
        The standard-form Hamiltonian state matrix ``Z_L H Z_R``.
    residual:
        ``|| Z_L W Z_R - I ||_F`` normalized by the problem scale, reported as
        a numerical health indicator.
    """

    left: np.ndarray
    right: np.ndarray
    hamiltonian: np.ndarray
    residual: float


def shh_pencil_to_hamiltonian(
    skew_hamiltonian: np.ndarray,
    hamiltonian: np.ndarray,
    tol: Optional[Tolerances] = None,
    check_structure: bool = True,
    symmetrize: bool = True,
) -> PencilToStateSpace:
    """Convert a nonsingular SHH pencil ``lambda W - H`` to a standard Hamiltonian form.

    Implements the structure-preserving change of coordinates of Eq. 21 of the
    paper: after the PVL reduction ``U^T W U = [[E1, Psi], [0, E1^T]]`` the
    transformations ::

        Z_R = U @ [[I, -1/2 E1^{-1} Psi E1^{-T}], [0, E1^{-T}]]
        Z_L = -J Z_R^T J

    satisfy ``Z_L W Z_R = I`` while ``Z_L H Z_R`` remains Hamiltonian for every
    Hamiltonian ``H``; hence the pencil ``lambda W - H`` is strongly equivalent
    to the standard pencil ``lambda I - Z_L H Z_R``.

    Raises
    ------
    ReductionError
        If ``W`` is numerically singular (its PVL (1,1) block cannot be
        inverted reliably).
    StructureError
        If the structure check is requested and the pencil is not SHH.
    """
    tol = tol or DEFAULT_TOLERANCES
    w_matrix = np.asarray(skew_hamiltonian, dtype=float)
    h_matrix = np.asarray(hamiltonian, dtype=float)
    half = check_even_dimension(w_matrix, "skew-Hamiltonian matrix")
    if h_matrix.shape != w_matrix.shape:
        raise StructureError("W and H must have the same shape")
    if check_structure:
        if not is_skew_hamiltonian(w_matrix, tol):
            raise StructureError("pencil E-matrix is not skew-Hamiltonian")
        if not is_hamiltonian(h_matrix, tol):
            raise StructureError("pencil A-matrix is not Hamiltonian")

    accumulator, pvl_form = pvl_decomposition(w_matrix, tol, check_structure=False)
    e1_block = pvl_form[:half, :half]
    psi_block = pvl_form[:half, half:]

    singular_values = np.linalg.svd(e1_block, compute_uv=False)
    scale = matrix_scale(w_matrix)
    if singular_values.size == 0 or singular_values[-1] <= tol.rank_rtol * scale:
        raise ReductionError(
            "skew-Hamiltonian E-matrix is numerically singular; the pencil has "
            "infinite eigenvalues and cannot be converted to standard form"
        )

    e1_inv = np.linalg.solve(e1_block, np.eye(half))
    correction = -0.5 * e1_inv @ psi_block @ e1_inv.T
    q_tilde = np.block(
        [
            [np.eye(half), correction],
            [np.zeros((half, half)), e1_inv.T],
        ]
    )
    right = accumulator @ q_tilde
    j_matrix = symplectic_identity(half)
    left = -j_matrix @ right.T @ j_matrix

    identity_residual = left @ w_matrix @ right - np.eye(2 * half)
    residual = float(np.linalg.norm(identity_residual)) / max(1.0, float(np.linalg.norm(w_matrix)))

    standard = left @ h_matrix @ right
    if symmetrize:
        standard = hamiltonian_part(standard)
    return PencilToStateSpace(
        left=left, right=right, hamiltonian=standard, residual=residual
    )
