"""Bartels-Stewart solvers for Sylvester and continuous Lyapunov equations.

The decoupling step of the proposed test (Eq. 23 of the paper) requires the
solution of a Lyapunov equation ``A Y + Y A^T + Psi = 0``.  The solvers below
use the classical Bartels-Stewart approach: reduce the coefficients to
(complex) Schur form, solve the resulting triangular system by forward
substitution one column at a time, and transform back.  Complex Schur form is
used internally for simplicity; real data with a real solution is returned as
real.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.linalg

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.exceptions import DimensionError, ReductionError
from repro.linalg.basics import as_square_array

__all__ = ["solve_sylvester", "solve_continuous_lyapunov"]


def solve_sylvester(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    c_matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
) -> np.ndarray:
    """Solve the Sylvester equation ``A X + X B = C``.

    Parameters
    ----------
    a_matrix, b_matrix:
        Square coefficient matrices of sizes ``m x m`` and ``n x n``.
    c_matrix:
        Right-hand side of size ``m x n``.

    Raises
    ------
    ReductionError
        If ``A`` and ``-B`` share an eigenvalue (within a crude numerical
        threshold), making the equation singular.
    """
    tol = tol or DEFAULT_TOLERANCES
    a_arr = as_square_array(a_matrix, "A")
    b_arr = as_square_array(b_matrix, "B")
    c_arr = np.asarray(c_matrix, dtype=float)
    if c_arr.shape != (a_arr.shape[0], b_arr.shape[0]):
        raise DimensionError(
            f"C must have shape {(a_arr.shape[0], b_arr.shape[0])}, got {c_arr.shape}"
        )
    if a_arr.size == 0 or b_arr.size == 0:
        return np.zeros_like(c_arr)

    t_a, u_a = scipy.linalg.schur(a_arr.astype(complex), output="complex")
    t_b, u_b = scipy.linalg.schur(b_arr.astype(complex), output="complex")

    rhs = u_a.conj().T @ c_arr @ u_b
    m, n = rhs.shape
    solution = np.zeros((m, n), dtype=complex)
    eye_m = np.eye(m, dtype=complex)

    scale = max(
        1.0,
        float(np.abs(np.diag(t_a)).max(initial=0.0)),
        float(np.abs(np.diag(t_b)).max(initial=0.0)),
    )
    for k in range(n):
        accumulated = rhs[:, k] - solution[:, :k] @ t_b[:k, k]
        shifted = t_a + t_b[k, k] * eye_m
        smallest = np.min(np.abs(np.diag(shifted)))
        if smallest <= 1e3 * tol.rank_rtol * scale:
            raise ReductionError(
                "Sylvester equation is (numerically) singular: A and -B share "
                "an eigenvalue"
            )
        solution[:, k] = scipy.linalg.solve_triangular(shifted, accumulated)

    result = u_a @ solution @ u_b.conj().T
    if np.isrealobj(a_matrix) and np.isrealobj(b_matrix) and np.isrealobj(c_matrix):
        return result.real
    return result


def solve_continuous_lyapunov(
    a_matrix: np.ndarray, q_matrix: np.ndarray, tol: Optional[Tolerances] = None
) -> np.ndarray:
    """Solve the continuous Lyapunov equation ``A Y + Y A^T + Q = 0``.

    This is the form used in Eq. 23 of the paper to decouple the stable and
    anti-stable parts of the Hamiltonian state matrix of ``Phi(s)``.
    """
    a_arr = as_square_array(a_matrix, "A")
    q_arr = as_square_array(q_matrix, "Q")
    if a_arr.shape != q_arr.shape:
        raise DimensionError("A and Q must have the same shape")
    return solve_sylvester(a_arr, a_arr.T, -q_arr, tol)
