"""Ordered Schur decompositions and stable invariant subspaces.

The proposed passivity test needs the stable invariant subspace of a
Hamiltonian matrix (Eq. 22 of the paper): the spectrum of the Hamiltonian
state matrix of ``Phi(s)`` is symmetric with respect to the imaginary axis and
— provided the original system has no poles on the imaginary axis — splits
evenly into a stable and an anti-stable half.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.linalg

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.exceptions import ReductionError, StructureError
from repro.linalg.basics import as_square_array, matrix_scale
from repro.linalg.hamiltonian import check_even_dimension, is_hamiltonian

__all__ = [
    "stable_invariant_subspace",
    "hamiltonian_stable_invariant_subspace",
    "HamiltonianSplitting",
    "imaginary_axis_eigenvalues",
]


def stable_invariant_subspace(
    matrix: np.ndarray, tol: Optional[Tolerances] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Orthonormal basis of the invariant subspace for open-left-half-plane eigenvalues.

    Returns
    -------
    (basis, eigenvalues):
        ``basis`` has one column per strictly stable eigenvalue (counting
        multiplicity); ``eigenvalues`` are the corresponding eigenvalues in the
        order produced by the sorted Schur form.
    """
    tol = tol or DEFAULT_TOLERANCES
    arr = as_square_array(matrix)
    if arr.shape[0] == 0:
        return np.zeros((0, 0)), np.zeros(0, dtype=complex)

    def _is_stable(real: np.ndarray, imag: np.ndarray) -> np.ndarray:
        return real < -tol.eig_imag_atol * matrix_scale(arr)

    t_form, z_form, sdim = scipy.linalg.schur(arr, output="real", sort=_is_stable)
    eigenvalues = scipy.linalg.eigvals(t_form[:sdim, :sdim]) if sdim else np.zeros(
        0, dtype=complex
    )
    return z_form[:, :sdim], eigenvalues


def imaginary_axis_eigenvalues(
    matrix: np.ndarray, tol: Optional[Tolerances] = None
) -> np.ndarray:
    """Eigenvalues of ``matrix`` lying (numerically) on the imaginary axis."""
    tol = tol or DEFAULT_TOLERANCES
    arr = as_square_array(matrix)
    if arr.shape[0] == 0:
        return np.zeros(0, dtype=complex)
    eigenvalues = np.linalg.eigvals(arr)
    threshold = tol.eig_imag_atol * matrix_scale(arr)
    return eigenvalues[np.abs(eigenvalues.real) <= threshold]


@dataclass(frozen=True)
class HamiltonianSplitting:
    """Stable/anti-stable splitting of a Hamiltonian matrix.

    Attributes
    ----------
    x1, x2:
        Blocks of the orthonormal stable-invariant-subspace basis
        ``[X1; X2]`` (each ``n x n`` for a ``2n x 2n`` Hamiltonian matrix).
    stable_block:
        The matrix ``Lambda`` with ``H [X1; X2] = [X1; X2] Lambda`` whose
        spectrum is the stable half of ``spec(H)``.
    stable_eigenvalues:
        The stable eigenvalues themselves.
    """

    x1: np.ndarray
    x2: np.ndarray
    stable_block: np.ndarray
    stable_eigenvalues: np.ndarray

    @property
    def basis(self) -> np.ndarray:
        """The full ``2n x n`` orthonormal basis ``[X1; X2]``."""
        return np.vstack([self.x1, self.x2])


def hamiltonian_stable_invariant_subspace(
    matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
    check_structure: bool = True,
) -> HamiltonianSplitting:
    """Stable invariant subspace of a Hamiltonian matrix (paper Eq. 22).

    Raises
    ------
    ReductionError
        If the matrix has eigenvalues on the imaginary axis (within tolerance)
        or the stable subspace does not have dimension ``n``.  In the passivity
        pipeline this situation signals that the proper part of ``Phi`` has
        imaginary-axis poles, which contradicts the standing stability
        assumption on the model.
    """
    tol = tol or DEFAULT_TOLERANCES
    arr = as_square_array(matrix)
    half = check_even_dimension(arr, "Hamiltonian matrix")
    if check_structure and not is_hamiltonian(arr, tol):
        raise StructureError(
            "hamiltonian_stable_invariant_subspace requires a Hamiltonian matrix"
        )

    basis, eigenvalues = stable_invariant_subspace(arr, tol)
    if basis.shape[1] != half:
        raise ReductionError(
            "the Hamiltonian matrix does not split evenly into stable and "
            f"anti-stable parts (stable dimension {basis.shape[1]}, expected {half}); "
            "eigenvalues on the imaginary axis are present"
        )
    # Lambda = basis^T H basis because the basis is orthonormal and invariant.
    stable_block = basis.T @ arr @ basis
    return HamiltonianSplitting(
        x1=basis[:half, :],
        x2=basis[half:, :],
        stable_block=stable_block,
        stable_eigenvalues=eigenvalues,
    )
