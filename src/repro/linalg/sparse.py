"""Sparsity-preserving linear algebra helpers for the sparse MNA backend.

The MNA stamps of interconnect circuits are intrinsically sparse (a few
nonzeros per row), yet the dense reduction pipeline densifies immediately and
caps the model orders that can be exercised.  This module collects the
matrix-level building blocks of the sparse path:

* canonicalization (:func:`to_canonical_csr`) shared with the cache
  fingerprint, so numerically equal dense and sparse representations hash to
  the same key,
* sparse LU-backed solves (:class:`SparseLU`, :func:`try_sparse_lu`) used by
  the permutation-based deflation and the pencil regularity probe,
* permutation-based nondynamic-mode deflation
  (:func:`sparse_nondynamic_deflation`): the sparsity-preserving counterpart
  of the dense SVD-coordinate Schur complement — the kernel of an MNA ``E`` is
  spanned by coordinate vectors (nodes without capacitance), so a permutation
  replaces the orthogonal SVD transform and the stamps stay sparse,
* spectral probes (:func:`symmetric_spectrum_bounds`,
  :func:`extreme_symmetric_eigenvalue`, :func:`is_sparse_psd`,
  :func:`is_sparse_nsd`): O(nnz) Gershgorin bounds first, a Lanczos probe when
  the bounds are inconclusive, and a dense fallback only for small matrices.

Everything here operates on raw matrices; the descriptor- and passivity-level
wrappers live in :mod:`repro.descriptor.system` and
:mod:`repro.passivity.sparse_shh`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np
import scipy.sparse as sparse
import scipy.sparse.linalg as sparse_linalg

from repro.config import DEFAULT_TOLERANCES, Tolerances
from repro.exceptions import ConvergenceError, DimensionError, ReductionError

__all__ = [
    "issparse",
    "to_canonical_csr",
    "sparse_matrix_scale",
    "is_sparse_symmetric",
    "SparseLU",
    "try_sparse_lu",
    "sparse_regularity_probe",
    "symmetric_spectrum_bounds",
    "extreme_symmetric_eigenvalue",
    "is_sparse_psd",
    "is_sparse_nsd",
    "kernel_permutation",
    "SparseDeflation",
    "sparse_nondynamic_deflation",
]

#: Re-export so callers do not need to import scipy directly.
issparse = sparse.issparse

#: Matrices at or below this order fall back to dense eigenvalue routines when
#: the Gershgorin bounds are inconclusive and the Lanczos probe stalls.
_DENSE_EIG_FALLBACK_ORDER = 1024


def to_canonical_csr(matrix) -> sparse.csr_matrix:
    """Return ``matrix`` as a canonical float64 CSR matrix.

    Canonical means: duplicate entries summed, explicit zeros eliminated and
    column indices sorted.  Two numerically identical matrices — one dense,
    one sparse, however assembled — canonicalize to bitwise identical
    ``(indptr, indices, data)`` triplets, which is what makes the cache
    fingerprint representation independent.
    """
    if sparse.issparse(matrix):
        canonical = matrix.tocsr().astype(float, copy=True)
    else:
        arr = np.asarray(matrix)
        if arr.ndim != 2:
            raise DimensionError(f"matrix must be 2-dimensional, got shape {arr.shape}")
        canonical = sparse.csr_matrix(arr.astype(float))
    canonical.sum_duplicates()
    canonical.eliminate_zeros()
    canonical.sort_indices()
    return canonical


def sparse_matrix_scale(matrix) -> float:
    """``max(1, largest magnitude)`` of a sparse (or dense) matrix."""
    if sparse.issparse(matrix):
        data = matrix.data
        if data.size == 0:
            return 1.0
        return max(1.0, float(np.max(np.abs(data))))
    arr = np.asarray(matrix)
    if arr.size == 0:
        return 1.0
    return max(1.0, float(np.max(np.abs(arr))))


def is_sparse_symmetric(matrix, tol: Optional[Tolerances] = None) -> bool:
    """Check ``M == M^T`` without densifying."""
    tol = tol or DEFAULT_TOLERANCES
    csr = to_canonical_csr(matrix)
    if csr.shape[0] != csr.shape[1]:
        return False
    defect = csr - csr.T
    if defect.nnz == 0:
        return True
    return float(np.max(np.abs(defect.data))) <= tol.structure_rtol * sparse_matrix_scale(csr)


# ----------------------------------------------------------------------
# Sparse LU-backed solves
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SparseLU:
    """A successful sparse LU factorization plus a pivot-based conditioning probe.

    Attributes
    ----------
    factor:
        The :class:`scipy.sparse.linalg.SuperLU` object.
    min_pivot / max_pivot:
        Extreme magnitudes of the diagonal of ``U``; their ratio is a cheap
        (not fail-safe) singularity indicator used by the regularity probe.
    """

    factor: sparse_linalg.SuperLU
    min_pivot: float
    max_pivot: float

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve ``A x = rhs`` for a dense right-hand side (vector or matrix)."""
        return self.factor.solve(np.asarray(rhs))

    @property
    def pivot_ratio(self) -> float:
        """``min |U_ii| / max |U_ii|``: 0 means numerically singular."""
        if self.max_pivot == 0.0:
            return 0.0
        return self.min_pivot / self.max_pivot


def try_sparse_lu(
    matrix, tol: Optional[Tolerances] = None
) -> Optional[SparseLU]:
    """Sparse LU of a square matrix, or ``None`` when it is (numerically) singular.

    Wraps :func:`scipy.sparse.linalg.splu` and additionally rejects
    factorizations whose pivot ratio falls below the rank tolerance — SuperLU
    happily factorizes nearly singular matrices, but downstream Schur
    complements would then be garbage.
    """
    tol = tol or DEFAULT_TOLERANCES
    csc = sparse.csc_matrix(matrix)
    if csc.shape[0] != csc.shape[1]:
        raise DimensionError(f"LU needs a square matrix, got shape {csc.shape}")
    if csc.shape[0] == 0:
        return None
    try:
        factor = sparse_linalg.splu(csc)
    except RuntimeError:
        # SuperLU raises RuntimeError("Factor is exactly singular").
        return None
    pivots = np.abs(factor.U.diagonal())
    if pivots.size == 0 or np.min(pivots) == 0.0:
        return None
    lu = SparseLU(
        factor=factor, min_pivot=float(np.min(pivots)), max_pivot=float(np.max(pivots))
    )
    if lu.pivot_ratio <= tol.rank_rtol:
        return None
    return lu


#: Deterministic complex probe shifts (unit scale); scaled per matrix pair.
_PROBE_SHIFTS = (0.7310582 + 1.2143197j, -1.3190391 + 0.4728823j)


def sparse_regularity_probe(
    e_matrix, a_matrix, tol: Optional[Tolerances] = None
) -> bool:
    """Probabilistic regularity check of the pencil ``s E - A`` without QZ.

    ``det(s E - A)`` is a polynomial in ``s``; for a singular pencil it
    vanishes identically, so a nonsingular evaluation at any shift proves
    regularity.  The probe factorizes ``s0 E - A`` at deterministic complex
    shifts (scaled to the pencil) with a sparse LU; success at any shift
    certifies regularity with probability one, while failure at every shift is
    reported as (numerically) singular.
    """
    tol = tol or DEFAULT_TOLERANCES
    e_csc = sparse.csc_matrix(e_matrix, dtype=complex)
    a_csc = sparse.csc_matrix(a_matrix, dtype=complex)
    if e_csc.shape != a_csc.shape or e_csc.shape[0] != e_csc.shape[1]:
        raise DimensionError("the pencil matrices must be square and of equal shape")
    if e_csc.shape[0] == 0:
        return True
    # Balance the shift so both terms contribute at comparable magnitude.
    scale = sparse_matrix_scale(a_csc) / sparse_matrix_scale(e_csc)
    for shift in _PROBE_SHIFTS:
        shifted = (shift * scale) * e_csc - a_csc
        try:
            factor = sparse_linalg.splu(shifted.tocsc())
        except RuntimeError:
            continue
        pivots = np.abs(factor.U.diagonal())
        if pivots.size and np.min(pivots) > tol.rank_rtol * np.max(pivots):
            return True
    return False


# ----------------------------------------------------------------------
# Spectral probes
# ----------------------------------------------------------------------
def symmetric_spectrum_bounds(matrix) -> Tuple[float, float]:
    """Gershgorin bounds ``(lo, hi)`` on the spectrum of a symmetric matrix.

    O(nnz); exact enough to certify definiteness of diagonally dominant
    circuit stamps (conductance/capacitance Laplacians) without any
    eigenvalue computation.
    """
    csr = to_canonical_csr(matrix)
    n = csr.shape[0]
    if n == 0:
        return 0.0, 0.0
    diagonal = csr.diagonal()
    absolute_row_sums = np.abs(csr).sum(axis=1)
    absolute_row_sums = np.asarray(absolute_row_sums).ravel()
    radii = absolute_row_sums - np.abs(diagonal)
    return float(np.min(diagonal - radii)), float(np.max(diagonal + radii))


def extreme_symmetric_eigenvalue(
    matrix,
    which: str = "largest",
    tol: Optional[Tolerances] = None,
) -> float:
    """Extreme algebraic eigenvalue of a symmetric matrix, sparsely when possible.

    Uses a Lanczos probe (:func:`scipy.sparse.linalg.eigsh`) for large
    matrices and dense ``eigvalsh`` below :data:`_DENSE_EIG_FALLBACK_ORDER`
    or when the probe stalls on a matrix small enough to densify.

    Raises
    ------
    ConvergenceError
        If the Lanczos probe fails on a matrix too large to densify
        (callers like :func:`is_sparse_psd` treat that as inconclusive).
    """
    if which not in ("largest", "smallest"):
        raise ValueError("which must be 'largest' or 'smallest'")
    tol = tol or DEFAULT_TOLERANCES
    csr = to_canonical_csr(matrix)
    n = csr.shape[0]
    if n == 0:
        return 0.0
    if n == 1:
        return float(csr.toarray()[0, 0])
    if n <= _DENSE_EIG_FALLBACK_ORDER:
        eigenvalues = np.linalg.eigvalsh(csr.toarray())
        return float(eigenvalues[-1] if which == "largest" else eigenvalues[0])
    mode = "LA" if which == "largest" else "SA"
    try:
        values = sparse_linalg.eigsh(
            csr.astype(float),
            k=1,
            which=mode,
            maxiter=50 * n,
            tol=1e-8,
            return_eigenvectors=False,
        )
        return float(values[0])
    except sparse_linalg.ArpackNoConvergence as error:
        # Partial spectrum is still a converged Ritz value: usable.
        converged = np.asarray(error.eigenvalues).ravel()
        if converged.size:
            return float(converged[-1] if which == "largest" else converged[0])
        raise ConvergenceError(
            f"Lanczos probe did not converge on a {n} x {n} matrix too large "
            "to densify"
        ) from error
    except sparse_linalg.ArpackError as error:
        raise ConvergenceError(
            f"Lanczos probe failed on a {n} x {n} matrix too large to densify"
        ) from error


def is_sparse_psd(matrix, tol: Optional[Tolerances] = None) -> bool:
    """Positive semidefiniteness of a symmetric sparse matrix.

    Gershgorin first (certifies diagonally dominant stamps in O(nnz)), then
    the Lanczos/dense probe for the smallest eigenvalue.
    """
    tol = tol or DEFAULT_TOLERANCES
    threshold = -tol.psd_atol * sparse_matrix_scale(matrix)
    lo, _hi = symmetric_spectrum_bounds(matrix)
    if lo >= threshold:
        return True
    try:
        return extreme_symmetric_eigenvalue(matrix, "smallest", tol) >= threshold
    except ConvergenceError:
        # Inconclusive probe: conservatively not certified.
        return False


def is_sparse_nsd(matrix, tol: Optional[Tolerances] = None) -> bool:
    """Negative semidefiniteness of a symmetric sparse matrix (dual of PSD)."""
    tol = tol or DEFAULT_TOLERANCES
    threshold = tol.psd_atol * sparse_matrix_scale(matrix)
    _lo, hi = symmetric_spectrum_bounds(matrix)
    if hi <= threshold:
        return True
    try:
        return extreme_symmetric_eigenvalue(matrix, "largest", tol) <= threshold
    except ConvergenceError:
        return False


# ----------------------------------------------------------------------
# Permutation-based nondynamic-mode deflation
# ----------------------------------------------------------------------
def kernel_permutation(e_matrix, tol: Optional[Tolerances] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Split the state indices by the structural kernel of ``E``.

    Returns ``(dynamic, kernel)`` index arrays: ``kernel`` holds the states
    whose ``E`` row *and* column are structurally zero (for MNA stamps these
    are exactly the nodes carrying neither capacitance nor inductance).  The
    permutation ``[dynamic; kernel]`` is the sparsity-preserving substitute
    for the SVD coordinate form of Eq. 7 whenever the remaining ``E11`` block
    is nonsingular — which the deflation verifies with a sparse LU.
    """
    tol = tol or DEFAULT_TOLERANCES
    csr = to_canonical_csr(e_matrix)
    if csr.shape[0] != csr.shape[1]:
        raise DimensionError(f"E must be square, got shape {csr.shape}")
    threshold = tol.rank_rtol * sparse_matrix_scale(csr)
    magnitude = abs(csr)
    magnitude.data[magnitude.data <= threshold] = 0.0
    magnitude.eliminate_zeros()
    row_weight = np.asarray(magnitude.sum(axis=1)).ravel()
    col_weight = np.asarray(magnitude.sum(axis=0)).ravel()
    structural = row_weight + col_weight
    kernel = np.flatnonzero(structural == 0.0)
    dynamic = np.flatnonzero(structural != 0.0)
    return dynamic, kernel


@dataclass(frozen=True)
class SparseDeflation:
    """Result of the permutation-based nondynamic-mode deflation.

    The reduced system is an ordinary (dense) state space equivalent to the
    input descriptor system: ``G(s) = d + c (s I - a)^{-1} b``.  Only the
    *dynamic* block is ever densified — the eliminated kernel states never
    touch an ``n x n`` dense array.

    Attributes
    ----------
    a, b, c, d:
        The reduced state-space matrices (dense, order ``len(dynamic_index)``).
    dynamic_index / kernel_index:
        The state permutation used for the deflation.
    n_eliminated:
        Number of nondynamic states removed (``len(kernel_index)``).
    """

    a: np.ndarray
    b: np.ndarray
    c: np.ndarray
    d: np.ndarray
    dynamic_index: np.ndarray
    kernel_index: np.ndarray

    @property
    def n_eliminated(self) -> int:
        return int(self.kernel_index.size)

    @property
    def order(self) -> int:
        return int(self.dynamic_index.size)


def sparse_nondynamic_deflation(
    e_matrix,
    a_matrix,
    b_matrix: np.ndarray,
    c_matrix: np.ndarray,
    d_matrix: np.ndarray,
    tol: Optional[Tolerances] = None,
) -> SparseDeflation:
    """Eliminate the nondynamic modes of ``(E, A, B, C, D)`` without densifying.

    The permutation ``[dynamic; kernel]`` from :func:`kernel_permutation`
    block-partitions the pencil as ::

        E = [[E11, 0], [0, 0]],   A = [[A11, A12], [A21, A22]]

    and, when ``A22`` is nonsingular (index-1 structure: no impulsive modes
    among the kernel states), the Schur complement ::

        A_red = A11 - A12 A22^{-1} A21        B_red = B1 - A12 A22^{-1} B2
        C_red = C1 - C2 A22^{-1} A21          D_red = D  - C2 A22^{-1} B2

    is a strong equivalence that preserves the transfer function exactly —
    the same reduction as :func:`repro.passivity.gare_test.admissible_to_state_space`
    but with sparse LU solves instead of a dense SVD.  The final conversion
    ``A = E11^{-1} A_red`` etc. uses a sparse LU of ``E11``.

    Raises
    ------
    ReductionError
        If ``A22`` is singular (the system has impulsive modes — index >= 2 —
        and needs the full dense machinery), or if ``E11`` is singular (the
        kernel of ``E`` is not spanned by coordinate vectors, e.g. a floating
        capacitor loop; the permutation split does not apply).
    """
    tol = tol or DEFAULT_TOLERANCES
    e_csr = to_canonical_csr(e_matrix)
    a_csr = to_canonical_csr(a_matrix)
    if e_csr.shape != a_csr.shape:
        raise DimensionError("E and A must have the same shape")
    b_arr = np.asarray(
        b_matrix.toarray() if sparse.issparse(b_matrix) else b_matrix, dtype=float
    )
    c_arr = np.asarray(
        c_matrix.toarray() if sparse.issparse(c_matrix) else c_matrix, dtype=float
    )
    d_arr = np.asarray(
        d_matrix.toarray() if sparse.issparse(d_matrix) else d_matrix, dtype=float
    )

    dynamic, kernel = kernel_permutation(e_csr, tol)
    e11 = e_csr[dynamic][:, dynamic]
    lu_e11 = try_sparse_lu(e11, tol) if dynamic.size else None
    if dynamic.size and lu_e11 is None:
        raise ReductionError(
            "E11 is numerically singular after the structural split: the kernel "
            "of E is not spanned by coordinate vectors (permutation deflation "
            "does not apply; use the dense SVD-coordinate reduction)"
        )

    if kernel.size == 0:
        a_red = a_csr.toarray()
        b_red, c_red, d_red = b_arr, c_arr, d_arr
    else:
        a11 = a_csr[dynamic][:, dynamic]
        a12 = a_csr[dynamic][:, kernel]
        a21 = a_csr[kernel][:, dynamic]
        a22 = a_csr[kernel][:, kernel]
        lu22 = try_sparse_lu(a22, tol)
        if lu22 is None:
            raise ReductionError(
                "A22 is singular on the kernel of E: the system has impulsive "
                "modes (index >= 2); the sparse nondynamic deflation only "
                "handles index-1 structure"
            )
        a22_inv_a21 = lu22.solve(a21.toarray())
        a22_inv_b2 = lu22.solve(b_arr[kernel])
        a_red = a11.toarray() - a12 @ a22_inv_a21
        b_red = b_arr[dynamic] - a12 @ a22_inv_b2
        c_red = c_arr[:, dynamic] - c_arr[:, kernel] @ a22_inv_a21
        d_red = d_arr - c_arr[:, kernel] @ a22_inv_b2

    if dynamic.size:
        a_state = lu_e11.solve(a_red)
        b_state = lu_e11.solve(b_red)
    else:
        a_state = np.zeros((0, 0))
        b_state = np.zeros((0, b_arr.shape[1]))
    return SparseDeflation(
        a=a_state,
        b=b_state,
        c=c_red,
        d=d_red,
        dynamic_index=dynamic,
        kernel_index=kernel,
    )
