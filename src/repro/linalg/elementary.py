"""Elementary orthogonal transformations: Householder reflectors and Givens rotations.

These are the building blocks of the Paige/Van Loan (PVL) reduction of
skew-Hamiltonian matrices (:mod:`repro.linalg.skew_hamiltonian_schur`).  They
are written for clarity rather than ultimate BLAS efficiency, but all
applications are performed as rank-one updates / row-pair rotations so the
overall reduction keeps its O(n^3) complexity.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "householder_vector",
    "apply_householder_left",
    "apply_householder_right",
    "givens_rotation",
    "apply_givens_left",
    "apply_givens_right",
]


def householder_vector(x: np.ndarray) -> Tuple[np.ndarray, float]:
    """Compute a Householder reflector ``H = I - beta v v^T`` with ``H x = ±||x|| e_1``.

    Returns
    -------
    v:
        The (unnormalized) Householder vector with ``v[0] = 1``.
    beta:
        The scalar such that ``H = I - beta * outer(v, v)``; ``beta = 0`` means
        the reflector is the identity (``x`` already lies along ``e_1``).
    """
    x = np.asarray(x, dtype=float).ravel()
    n = x.size
    if n == 0:
        return np.zeros(0), 0.0
    v = x.copy()
    sigma = float(np.dot(x[1:], x[1:]))
    v[0] = 1.0
    if sigma == 0.0:
        return v, 0.0
    mu = np.sqrt(x[0] ** 2 + sigma)
    if x[0] <= 0.0:
        v0 = x[0] - mu
    else:
        v0 = -sigma / (x[0] + mu)
    beta = 2.0 * v0 ** 2 / (sigma + v0 ** 2)
    v = x.copy()
    v[0] = v0
    v = v / v0
    return v, beta


def apply_householder_left(
    matrix: np.ndarray, v: np.ndarray, beta: float, rows: np.ndarray
) -> None:
    """Apply ``H = I - beta v v^T`` from the left to the given rows of ``matrix`` in place."""
    if beta == 0.0:
        return
    sub = matrix[rows, :]
    w = beta * (v @ sub)
    matrix[rows, :] = sub - np.outer(v, w)


def apply_householder_right(
    matrix: np.ndarray, v: np.ndarray, beta: float, cols: np.ndarray
) -> None:
    """Apply ``H = I - beta v v^T`` from the right to the given columns of ``matrix`` in place."""
    if beta == 0.0:
        return
    sub = matrix[:, cols]
    w = beta * (sub @ v)
    matrix[:, cols] = sub - np.outer(w, v)


def givens_rotation(a: float, b: float) -> Tuple[float, float]:
    """Compute ``c, s`` such that ``[[c, s], [-s, c]] @ [a, b] = [r, 0]``."""
    if b == 0.0:
        return 1.0, 0.0
    r = np.hypot(a, b)
    return a / r, b / r


def apply_givens_left(
    matrix: np.ndarray, c: float, s: float, i: int, j: int
) -> None:
    """Apply the rotation ``[[c, s], [-s, c]]`` to rows ``i`` and ``j`` in place."""
    row_i = matrix[i, :].copy()
    row_j = matrix[j, :].copy()
    matrix[i, :] = c * row_i + s * row_j
    matrix[j, :] = -s * row_i + c * row_j


def apply_givens_right(
    matrix: np.ndarray, c: float, s: float, i: int, j: int
) -> None:
    """Apply the transpose rotation to columns ``i`` and ``j`` in place.

    Together with :func:`apply_givens_left` this realises the orthogonal
    similarity ``G M G^T`` for the rotation ``G`` acting in the ``(i, j)``
    plane.
    """
    col_i = matrix[:, i].copy()
    col_j = matrix[:, j].copy()
    matrix[:, i] = c * col_i + s * col_j
    matrix[:, j] = -s * col_i + c * col_j
