"""Stacked (batched) dense eigenvalue kernels for the small-system hot path.

The service's dominant traffic shape is thousands of order-<=100 macromodels,
where per-call Python dispatch and LAPACK setup dominate the actual O(n^3)
work.  NumPy's linalg gufuncs accept leading batch dimensions — a
``(k, n, n)`` stack runs all ``k`` factorizations inside **one** GIL-releasing
LAPACK region, with one Python call's worth of dispatch overhead for the whole
batch.  This module collects the stacked kernels the vectorized hot loops
(frequency-grid sampling, Hamiltonian crossing probes, micro-batched
execution) are built on.

Every kernel applies the *same* LAPACK routine to each slice that the
per-matrix NumPy call would use, so results are bitwise identical to a Python
loop over the slices — the property the sampling regression tests pin down.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "batched_eigvalsh",
    "batched_eigvals",
    "batched_hermitian_min_eig",
    "state_space_hermitian_min_eigs",
    "group_by_shape",
]


def batched_eigvalsh(matrices: np.ndarray) -> np.ndarray:
    """Eigenvalues of a stack of Hermitian matrices, ascending per slice.

    Parameters
    ----------
    matrices:
        Array of shape ``(..., n, n)``; each trailing ``n x n`` slice is
        assumed Hermitian (only its lower triangle is read, matching
        ``np.linalg.eigvalsh``).

    Returns
    -------
    numpy.ndarray
        Real array of shape ``(..., n)`` — the sorted eigenvalues of every
        slice, computed in one gufunc call (one LAPACK ``syevd``/``heevd``
        per slice inside a single GIL-releasing region).
    """
    stack = np.asarray(matrices)
    if stack.size == 0:
        return np.zeros(stack.shape[:-1], dtype=float)
    return np.linalg.eigvalsh(stack)


def batched_eigvals(matrices: np.ndarray) -> np.ndarray:
    """Eigenvalues of a stack of general square matrices.

    The stacked form of ``np.linalg.eigvals``: shape ``(..., n, n)`` in,
    complex ``(..., n)`` out, one gufunc dispatch for the whole batch.
    """
    stack = np.asarray(matrices)
    if stack.size == 0:
        return np.zeros(stack.shape[:-1], dtype=complex)
    return np.linalg.eigvals(stack)


def batched_hermitian_min_eig(values: np.ndarray) -> np.ndarray:
    """Smallest eigenvalue of the Hermitian part of each matrix in a stack.

    Parameters
    ----------
    values:
        Complex array of shape ``(..., p, p)`` — e.g. frequency responses
        ``G(j w_k)`` stacked over a grid.

    Returns
    -------
    numpy.ndarray
        Real array of shape ``(...,)`` with
        ``min eig( (M + M^H) / 2 )`` per slice — the passivity margin the
        sampling check scans for.
    """
    stack = np.asarray(values, dtype=complex)
    if stack.size == 0:
        return np.zeros(stack.shape[:-2], dtype=float)
    hermitian = 0.5 * (stack + np.conj(np.swapaxes(stack, -1, -2)))
    return batched_eigvalsh(hermitian)[..., 0]


def state_space_hermitian_min_eigs(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    d: np.ndarray,
    omegas: Sequence[float],
) -> np.ndarray:
    """Stacked ``min eig`` of the Hermitian part of ``H(j w)`` on a grid.

    Evaluates ``H(s) = D + C (s I - A)^{-1} B`` at every ``s = j w`` of the
    grid with one stacked LU solve and one stacked Hermitian eigensolve —
    the vectorized form of the per-frequency probe loop of the Hamiltonian
    positive-realness test.

    Raises
    ------
    numpy.linalg.LinAlgError
        If ``j w I - A`` is singular at any grid point (a pole sits on the
        probe); callers fall back to the per-point loop, which can classify
        the offending frequency individually.
    """
    omega_array = np.asarray(list(omegas), dtype=float)
    a_arr = np.asarray(a, dtype=float)
    n = a_arr.shape[0]
    if omega_array.size == 0:
        return np.zeros(0, dtype=float)
    if n == 0:
        d_arr = np.asarray(d, dtype=complex)
        return np.full(
            omega_array.size, batched_hermitian_min_eig(d_arr[None, :, :])[0]
        )
    # (k, n, n) stack of j w I - A, solved against B in one gufunc call —
    # the same zgesv per slice the scalar ``evaluate`` path runs.
    shifted = (1j * omega_array)[:, None, None] * np.eye(n) - a_arr
    solutions = np.linalg.solve(shifted, np.asarray(b).astype(complex))
    values = np.asarray(d, dtype=complex) + np.asarray(c) @ solutions
    return batched_hermitian_min_eig(values)


def group_by_shape(
    arrays: Iterable[np.ndarray],
) -> Dict[Tuple[int, ...], List[int]]:
    """Group array indices by shape, the batching key of the stacked kernels.

    Returns ``shape -> [indices]`` in first-seen order per group, so a caller
    can stack each group with ``np.stack`` and scatter results back by index.
    """
    groups: Dict[Tuple[int, ...], List[int]] = defaultdict(list)
    for index, array in enumerate(arrays):
        groups[tuple(np.asarray(array).shape)].append(index)
    return dict(groups)
