"""Harness regenerating the paper's evaluation (Table 1 and Figure 2).

The paper times three passivity tests — the extended LMI test, the proposed
SHH test and the Weierstrass-decomposition test — on RLC circuit models of
order 20 to 400 (Table 1), and plots the same data on a log scale plus a
linear-scale close-up of the two fast tests (Figure 2).

This module produces the same rows/series on the synthetic RLC workloads of
:mod:`repro.circuits`.  Absolute CPU times obviously differ from a 2006-era
Matlab run; what is expected to reproduce is the *shape*:

* the LMI test's cost explodes (it is skipped above ``lmi_order_limit``,
  mirroring the paper's ``NIL`` entries),
* the proposed test and the Weierstrass test are both O(n^3) and of comparable
  magnitude, with the proposed test avoiding the ill-conditioned
  transformations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.circuits.generators import paper_benchmark_model
from repro.descriptor.system import DescriptorSystem
from repro.engine.api import check_passivity
from repro.engine.cache import DecompositionCache
from repro.engine.registry import DEFAULT_REGISTRY, MethodRegistry

__all__ = [
    "PAPER_TABLE1",
    "BenchmarkRow",
    "run_single_model",
    "table1_rows",
    "figure2_series",
    "format_table1",
]


#: CPU seconds reported by the paper (Table 1); ``None`` marks the NIL entries
#: where the LMI test exceeded the machine's physical memory.
PAPER_TABLE1: Dict[int, Dict[str, Optional[float]]] = {
    20: {"lmi": 5.633, "proposed": 0.1328, "weierstrass": 0.0859},
    40: {"lmi": 144.18, "proposed": 0.1875, "weierstrass": 0.1407},
    60: {"lmi": 1550.25, "proposed": 0.3047, "weierstrass": 0.2578},
    80: {"lmi": None, "proposed": 0.5547, "weierstrass": 0.5136},
    100: {"lmi": None, "proposed": 0.9922, "weierstrass": 1.0078},
    200: {"lmi": None, "proposed": 14.7891, "weierstrass": 15.285},
    400: {"lmi": None, "proposed": 155.1875, "weierstrass": 185.016},
}

#: Default order grid of Table 1.
TABLE1_ORDERS: Sequence[int] = (20, 40, 60, 80, 100, 200, 400)


@dataclass
class BenchmarkRow:
    """One row of the reproduced Table 1.

    Attributes
    ----------
    order:
        Model order ``n``.
    seconds:
        Mapping method name -> wall-clock seconds (``None`` when skipped).
    passive:
        Mapping method name -> reported verdict (all should be ``True`` on the
        passive workloads).
    paper_seconds:
        The paper's reported timings for the same order, when available.
    """

    order: int
    seconds: Dict[str, Optional[float]] = field(default_factory=dict)
    passive: Dict[str, Optional[bool]] = field(default_factory=dict)
    paper_seconds: Dict[str, Optional[float]] = field(default_factory=dict)


def run_single_model(
    system: DescriptorSystem,
    methods: Iterable[str] = ("lmi", "proposed", "weierstrass"),
    lmi_order_limit: Optional[int] = 60,
    cache: Optional[DecompositionCache] = None,
    registry: Optional[MethodRegistry] = None,
) -> Dict[str, Dict[str, object]]:
    """Time the requested passivity tests on one model.

    Methods are dispatched through the engine registry, so any registered
    method name or alias is accepted; every name is validated *before* any
    test is timed, so a typo'd method list fails fast instead of wasting the
    earlier timings.  The methods share the (per-call, unless supplied)
    decomposition cache — each intermediate is still computed inside the timed
    region of the first method that needs it.

    Returns a mapping ``method -> {"seconds": float | None, "passive": bool | None}``.
    """
    registry = registry or DEFAULT_REGISTRY
    resolved = [(name, registry.resolve(name)) for name in methods]
    cache = cache if cache is not None else DecompositionCache()

    results: Dict[str, Dict[str, object]] = {}
    for name, spec in resolved:
        if spec.name == "lmi":
            # The harness's own LMI cut-off (the paper's NIL entries), which
            # callers may loosen beyond the registry's default limit.
            if lmi_order_limit is not None and system.order > lmi_order_limit:
                results[name] = {"seconds": None, "passive": None}
                continue
            options = {"order_limit": None}
        else:
            options = {}
        start = time.perf_counter()
        report = check_passivity(
            system, method=name, cache=cache, registry=registry, **options
        )
        elapsed = time.perf_counter() - start
        if report.diagnostics.get("engine", {}).get("skipped"):
            # Any other method refused by its registry order limit is a NIL
            # entry too, not a timed non-passive verdict.
            results[name] = {"seconds": None, "passive": None}
            continue
        results[name] = {"seconds": elapsed, "passive": report.is_passive}
    return results


def table1_rows(
    orders: Sequence[int] = TABLE1_ORDERS,
    lmi_order_limit: Optional[int] = 60,
    n_impulsive_stubs: int = 2,
    methods: Iterable[str] = ("lmi", "proposed", "weierstrass"),
) -> List[BenchmarkRow]:
    """Reproduce Table 1 on the synthetic RLC workloads.

    Parameters
    ----------
    orders:
        Model orders to sweep (paper: 20, 40, 60, 80, 100, 200, 400).
    lmi_order_limit:
        Orders above this skip the LMI test (``NIL`` in the paper).
    """
    rows = []
    for order in orders:
        model = paper_benchmark_model(order, n_impulsive_stubs=n_impulsive_stubs)
        timings = run_single_model(
            model.system, methods=methods, lmi_order_limit=lmi_order_limit
        )
        row = BenchmarkRow(order=order, paper_seconds=PAPER_TABLE1.get(order, {}))
        for method, outcome in timings.items():
            row.seconds[method] = outcome["seconds"]
            row.passive[method] = outcome["passive"]
        rows.append(row)
    return rows


def figure2_series(
    orders: Sequence[int] = (20, 40, 60, 80, 100, 150, 200, 300, 400),
    lmi_order_limit: Optional[int] = 60,
    n_impulsive_stubs: int = 2,
) -> Dict[str, List[Optional[float]]]:
    """Reproduce the two panels of Figure 2 as data series.

    Returns a mapping with keys ``"order"``, ``"lmi"``, ``"proposed"`` and
    ``"weierstrass"``; the latter three are lists of seconds aligned with the
    order grid (``None`` where a method was skipped).  The top panel of the
    figure is these series on a log scale; the bottom panel is the
    ``proposed``/``weierstrass`` pair on a linear scale.
    """
    rows = table1_rows(
        orders=orders,
        lmi_order_limit=lmi_order_limit,
        n_impulsive_stubs=n_impulsive_stubs,
    )
    series: Dict[str, List[Optional[float]]] = {
        "order": [row.order for row in rows],
        "lmi": [row.seconds.get("lmi") for row in rows],
        "proposed": [row.seconds.get("proposed") for row in rows],
        "weierstrass": [row.seconds.get("weierstrass") for row in rows],
    }
    return series


def format_table1(rows: Sequence[BenchmarkRow]) -> str:
    """Render reproduced rows next to the paper's numbers (Table 1 layout)."""
    header = (
        f"{'order':>6s} | {'LMI (meas)':>12s} {'LMI (paper)':>12s} | "
        f"{'SHH (meas)':>12s} {'SHH (paper)':>12s} | "
        f"{'Wstr (meas)':>12s} {'Wstr (paper)':>12s}"
    )
    lines = [header, "-" * len(header)]

    def _fmt(value: Optional[float]) -> str:
        return "NIL" if value is None else f"{value:.4f}"

    for row in rows:
        lines.append(
            f"{row.order:>6d} | "
            f"{_fmt(row.seconds.get('lmi')):>12s} {_fmt(row.paper_seconds.get('lmi')):>12s} | "
            f"{_fmt(row.seconds.get('proposed')):>12s} {_fmt(row.paper_seconds.get('proposed')):>12s} | "
            f"{_fmt(row.seconds.get('weierstrass')):>12s} {_fmt(row.paper_seconds.get('weierstrass')):>12s}"
        )
    return "\n".join(lines)
