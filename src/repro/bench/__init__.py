"""Benchmark harness shared by ``benchmarks/`` and ``examples/``."""

from repro.bench.counters import QZCounter
from repro.bench.harness import (
    BenchmarkRow,
    PAPER_TABLE1,
    figure2_series,
    format_table1,
    run_single_model,
    table1_rows,
)

__all__ = [
    "BenchmarkRow",
    "PAPER_TABLE1",
    "QZCounter",
    "run_single_model",
    "table1_rows",
    "figure2_series",
    "format_table1",
]
