"""Instrumentation counters shared by the benchmarks and the regression tests.

The single-factorization guarantee of the spectral-context engine is asserted
by *counting* the library's QZ factorizations rather than timing them:
:class:`QZCounter` wraps ``scipy.linalg.qz`` / ``scipy.linalg.ordqz`` with
counting pass-throughs for the duration of a ``with`` block.  Keeping the one
implementation here means the counting regression suite and the
``bench_spectral_reuse`` benchmark can never drift apart on *what* they count.
"""

from __future__ import annotations

import scipy.linalg

__all__ = ["QZCounter"]


class QZCounter:
    """Count ``scipy.linalg.qz``/``ordqz`` calls made while the block runs.

    The library performs every pencil factorization through these two entry
    points (attribute lookup at call time), so patching the module attributes
    intercepts them all; scipy-internal pre-bound references (e.g. inside its
    own solvers) are deliberately not counted.
    """

    def __init__(self) -> None:
        self.qz = 0
        self.ordqz = 0
        self._original_qz = None
        self._original_ordqz = None

    @property
    def total(self) -> int:
        return self.qz + self.ordqz

    def reset(self) -> None:
        self.qz = 0
        self.ordqz = 0

    def __enter__(self) -> "QZCounter":
        self._original_qz = scipy.linalg.qz
        self._original_ordqz = scipy.linalg.ordqz

        def counted_qz(*args, **kwargs):
            self.qz += 1
            return self._original_qz(*args, **kwargs)

        def counted_ordqz(*args, **kwargs):
            self.ordqz += 1
            return self._original_ordqz(*args, **kwargs)

        scipy.linalg.qz = counted_qz
        scipy.linalg.ordqz = counted_ordqz
        return self

    def __exit__(self, *exc_info) -> None:
        scipy.linalg.qz = self._original_qz
        scipy.linalg.ordqz = self._original_ordqz
