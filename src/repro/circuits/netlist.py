"""A small netlist container feeding the MNA assembler."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.circuits.elements import Capacitor, Inductor, Port, Resistor
from repro.exceptions import DimensionError

__all__ = ["Netlist"]

GROUND = "0"


@dataclass
class Netlist:
    """A flat RLC netlist with current-injection ports.

    Elements are added through the ``add_*`` methods; node labels are created
    on first use.  The reference node is always ``"0"``.
    """

    resistors: List[Resistor] = field(default_factory=list)
    capacitors: List[Capacitor] = field(default_factory=list)
    inductors: List[Inductor] = field(default_factory=list)
    ports: List[Port] = field(default_factory=list)

    def add_resistor(self, name: str, node_pos: str, node_neg: str, ohms: float) -> None:
        """Add a resistor of ``ohms`` between two nodes."""
        self.resistors.append(Resistor(name, node_pos, node_neg, ohms))

    def add_capacitor(self, name: str, node_pos: str, node_neg: str, farads: float) -> None:
        """Add a capacitor of ``farads`` between two nodes."""
        self.capacitors.append(Capacitor(name, node_pos, node_neg, farads))

    def add_inductor(self, name: str, node_pos: str, node_neg: str, henries: float) -> None:
        """Add an inductor of ``henries`` between two nodes."""
        self.inductors.append(Inductor(name, node_pos, node_neg, henries))

    def add_port(self, name: str, node_pos: str, node_neg: str = GROUND) -> None:
        """Add a current-injection port between two nodes (default: to ground)."""
        self.ports.append(Port(name, node_pos, node_neg))

    # ------------------------------------------------------------------
    @property
    def node_names(self) -> List[str]:
        """Sorted list of non-ground node labels appearing in the netlist."""
        names = set()
        for element in (*self.resistors, *self.capacitors, *self.inductors):
            names.add(element.node_pos)
            names.add(element.node_neg)
        for port in self.ports:
            names.add(port.node_pos)
            names.add(port.node_neg)
        names.discard(GROUND)
        return sorted(names)

    @property
    def node_index(self) -> Dict[str, int]:
        """Mapping from node label to its index in the MNA voltage vector."""
        return {name: index for index, name in enumerate(self.node_names)}

    @property
    def n_nodes(self) -> int:
        return len(self.node_names)

    @property
    def n_states(self) -> int:
        """Order of the MNA descriptor model: node voltages + inductor currents."""
        return self.n_nodes + len(self.inductors)

    def validate(self) -> None:
        """Raise if the netlist cannot produce a meaningful model."""
        if not self.ports:
            raise DimensionError("the netlist needs at least one port")
        if self.n_nodes == 0:
            raise DimensionError("the netlist has no non-ground nodes")
        names = [e.name for e in (*self.resistors, *self.capacitors, *self.inductors, *self.ports)]
        if len(names) != len(set(names)):
            raise DimensionError("element names must be unique")
