"""Parametric RLC circuit generators for tests, examples and benchmarks.

The paper's experiments run on "practical RLC circuit models of different
orders and number of impulsive modes".  The authors' models are not available,
so this module synthesizes equivalent workloads:

* :func:`rlc_ladder` — a lossy RLC transmission-line ladder whose MNA model is
  a genuine descriptor system (singular ``E`` from resistive internal nodes).
* :func:`impulsive_rlc_ladder` — the same ladder with inductor-only stub nodes
  (L-cutsets) and, optionally, a series port inductor; these are the classic
  circuit structures that push the MNA index to 2 and create impulsive modes.
* :func:`rc_line` — an impulse-free RC ladder.
* :func:`paper_benchmark_model` — a model of *exactly* the requested order
  with a configurable number of impulsive stubs; used by the Table 1 /
  Figure 2 harness.
* :func:`random_passive_descriptor` — structurally passive random descriptor
  systems (``E = E^T >= 0``, ``A + A^T <= 0``, ``C = B^T``) for property-based
  testing.
* :func:`negative_resistor_perturbation` / :func:`feedthrough_perturbation` —
  controlled ways to break passivity for negative tests.

All element values are expressed in normalized (impedance- and
frequency-scaled) units of order one so the generated matrices are well
equilibrated; this corresponds to a real circuit through the usual
denormalization and does not affect passivity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.circuits.mna import MnaModel, assemble_mna
from repro.circuits.netlist import Netlist
from repro.descriptor.system import DescriptorSystem
from repro.exceptions import DimensionError

__all__ = [
    "rlc_ladder",
    "impulsive_rlc_ladder",
    "rc_line",
    "rc_grid",
    "rlc_grid",
    "coupled_line_bus",
    "random_coupled_bus",
    "paper_benchmark_model",
    "random_passive_descriptor",
    "negative_resistor_perturbation",
    "feedthrough_perturbation",
    "perturb_system",
    "rlc_grid_corners",
]


def rlc_ladder(
    n_sections: int,
    series_resistance: float = 0.4,
    series_inductance: float = 0.8,
    shunt_capacitance: float = 1.0,
    shunt_conductance: float = 0.05,
    n_ports: int = 1,
) -> MnaModel:
    """Lossy RLC ladder: ``n_sections`` of series R-L with shunt C || R at each tap.

    The series branch is split over an internal node (R into the node, L out of
    it); that node carries neither capacitance nor conductance to ground, so
    ``E`` is singular and the model is a true descriptor system (index 1).
    The model order is ``3 * n_sections + 1`` for one port and
    ``3 * n_sections + 1`` for two ports as well (the second port reuses the
    last tap node).

    Parameters follow normalized units; ``shunt_conductance`` adds the loss
    that keeps all finite poles strictly in the left half plane.
    """
    if n_sections < 1:
        raise DimensionError("the ladder needs at least one section")
    if n_ports not in (1, 2):
        raise DimensionError("only 1- and 2-port ladders are generated")
    netlist = Netlist()
    netlist.add_port("p_in", "n0")
    if n_ports == 2:
        netlist.add_port("p_out", f"n{n_sections}")
    # A small conductance at the driving node keeps the port node from being a
    # pure constraint when the first section's resistor is removed by overrides.
    netlist.add_resistor("r_in", "n0", "0", 1.0 / max(shunt_conductance, 1e-3))
    for k in range(1, n_sections + 1):
        netlist.add_resistor(f"r{k}", f"n{k - 1}", f"m{k}", series_resistance)
        netlist.add_inductor(f"l{k}", f"m{k}", f"n{k}", series_inductance)
        netlist.add_capacitor(f"c{k}", f"n{k}", "0", shunt_capacitance)
        netlist.add_resistor(
            f"rg{k}", f"n{k}", "0", 1.0 / shunt_conductance
        )
    return assemble_mna(netlist)


def impulsive_rlc_ladder(
    n_sections: int,
    n_impulsive_stubs: int = 1,
    series_port_inductor: Optional[float] = 0.5,
    stub_inductance: float = 0.6,
    **ladder_kwargs: float,
) -> MnaModel:
    """RLC ladder augmented with the circuit structures that create impulsive modes.

    * ``n_impulsive_stubs`` inductor-only stub nodes are hung off the ladder
      taps: each stub node connects to its tap and to ground through inductors
      only, forming an L-cutset (MNA index 2).
    * ``series_port_inductor`` (set to ``None`` to disable) inserts an inductor
      between the driving port and the ladder, which makes the port impedance
      grow like ``s L`` at high frequency — a nonzero, positive semidefinite
      first Markov parameter ``M1``.

    Every added structure is built from positive elements, so the model stays
    passive by construction.
    """
    if n_impulsive_stubs < 0:
        raise DimensionError("n_impulsive_stubs must be nonnegative")
    if n_impulsive_stubs > n_sections:
        raise DimensionError("at most one stub per ladder section is supported")
    netlist = _ladder_netlist(n_sections, **ladder_kwargs)

    for j in range(1, n_impulsive_stubs + 1):
        tap = f"n{j}"
        stub = f"stub{j}"
        netlist.add_inductor(f"ls{j}a", tap, stub, stub_inductance)
        netlist.add_inductor(f"ls{j}b", stub, "0", stub_inductance)

    if series_port_inductor is not None:
        # Move the driving port to a new node connected through an inductor.
        netlist.ports = [p for p in netlist.ports if p.name != "p_in"]
        netlist.add_inductor("l_port", "pdrive", "n0", float(series_port_inductor))
        netlist.add_port("p_in", "pdrive")
    return assemble_mna(netlist)


def _ladder_netlist(
    n_sections: int,
    series_resistance: float = 0.4,
    series_inductance: float = 0.8,
    shunt_capacitance: float = 1.0,
    shunt_conductance: float = 0.05,
    n_ports: int = 1,
) -> Netlist:
    """Netlist of :func:`rlc_ladder` (kept separate so generators can extend it)."""
    if n_sections < 1:
        raise DimensionError("the ladder needs at least one section")
    netlist = Netlist()
    netlist.add_port("p_in", "n0")
    if n_ports == 2:
        netlist.add_port("p_out", f"n{n_sections}")
    netlist.add_resistor("r_in", "n0", "0", 1.0 / max(shunt_conductance, 1e-3))
    for k in range(1, n_sections + 1):
        netlist.add_resistor(f"r{k}", f"n{k - 1}", f"m{k}", series_resistance)
        netlist.add_inductor(f"l{k}", f"m{k}", f"n{k}", series_inductance)
        netlist.add_capacitor(f"c{k}", f"n{k}", "0", shunt_capacitance)
        netlist.add_resistor(f"rg{k}", f"n{k}", "0", 1.0 / shunt_conductance)
    return netlist


def rc_line(
    n_sections: int,
    series_resistance: float = 0.5,
    shunt_capacitance: float = 1.0,
    n_ports: int = 1,
) -> MnaModel:
    """Impulse-free RC ladder (the classic interconnect RC line model).

    Every internal node carries a capacitor, so the MNA model has index at
    most 1; the driving node has no capacitor which keeps ``E`` singular and
    the model a genuine descriptor system.
    """
    if n_sections < 1:
        raise DimensionError("the RC line needs at least one section")
    netlist = Netlist()
    netlist.add_port("p_in", "n0")
    if n_ports == 2:
        netlist.add_port("p_out", f"n{n_sections}")
    netlist.add_resistor("r_in", "n0", "0", 50.0)
    for k in range(1, n_sections + 1):
        netlist.add_resistor(f"r{k}", f"n{k - 1}", f"n{k}", series_resistance)
        netlist.add_capacitor(f"c{k}", f"n{k}", "0", shunt_capacitance)
    return assemble_mna(netlist)


# ----------------------------------------------------------------------
# Large parameterized workloads for the sparse backend
# ----------------------------------------------------------------------
def rc_grid(
    rows: int,
    cols: int,
    series_resistance: float = 0.5,
    shunt_capacitance: float = 1.0,
    shunt_conductance: float = 0.02,
    n_ports: int = 2,
    sparse: bool = True,
) -> MnaModel:
    """2-D RC mesh: ``rows x cols`` nodes, resistive links, shunt C at each node.

    The canonical power-grid / substrate interconnect workload: every matrix
    row has at most five nonzeros, so the model scales to tens of thousands of
    nodes on the sparse assembly path.  The port corner nodes carry no
    capacitor, which keeps ``E`` singular and the model a genuine (index-1)
    descriptor system; everything is built from positive elements and is
    passive by construction.

    The model order is ``rows * cols``; ports sit at the grid corners (up to
    four).
    """
    if rows < 2 or cols < 2:
        raise DimensionError("the grid needs at least 2 x 2 nodes")
    if not 1 <= n_ports <= 4:
        raise DimensionError("the grid supports 1 to 4 corner ports")
    netlist = Netlist()

    def node(r: int, c: int) -> str:
        return f"g{r}_{c}"

    corners = [(0, 0), (rows - 1, cols - 1), (0, cols - 1), (rows - 1, 0)]
    port_nodes = {node(r, c) for r, c in corners[:n_ports]}
    for k, (r, c) in enumerate(corners[:n_ports]):
        netlist.add_port(f"p{k}", node(r, c))
    for r in range(rows):
        for c in range(cols):
            label = node(r, c)
            if c + 1 < cols:
                netlist.add_resistor(f"rh{r}_{c}", label, node(r, c + 1), series_resistance)
            if r + 1 < rows:
                netlist.add_resistor(f"rv{r}_{c}", label, node(r + 1, c), series_resistance)
            if label in port_nodes:
                # Port corners: conductance only, so E stays singular.
                netlist.add_resistor(f"rg{r}_{c}", label, "0", 1.0 / max(shunt_conductance, 1e-3))
            else:
                netlist.add_capacitor(f"c{r}_{c}", label, "0", shunt_capacitance)
                netlist.add_resistor(f"rg{r}_{c}", label, "0", 1.0 / shunt_conductance)
    return assemble_mna(netlist, sparse=sparse)


def rlc_grid(
    rows: int,
    cols: int,
    series_resistance: float = 0.4,
    link_inductance: float = 0.6,
    shunt_capacitance: float = 1.0,
    shunt_conductance: float = 0.02,
    n_ports: int = 2,
    sparse: bool = True,
) -> MnaModel:
    """2-D RLC mesh: resistive rows, inductive columns, shunt C at each node.

    Horizontal links are resistors, vertical links are inductors (adding one
    inductor-current state each), so the model mixes capacitive, inductive and
    resistive dynamics like an on-chip power grid with package inductance.
    The order is ``rows * cols + (rows - 1) * cols`` (nodes plus one inductor
    current per vertical link); each vertical link carries a small parallel
    resistor to keep the finite spectrum strictly damped.
    """
    if rows < 2 or cols < 2:
        raise DimensionError("the grid needs at least 2 x 2 nodes")
    if not 1 <= n_ports <= 4:
        raise DimensionError("the grid supports 1 to 4 corner ports")
    netlist = Netlist()

    def node(r: int, c: int) -> str:
        return f"g{r}_{c}"

    corners = [(0, 0), (rows - 1, cols - 1), (0, cols - 1), (rows - 1, 0)]
    port_nodes = {node(r, c) for r, c in corners[:n_ports]}
    for k, (r, c) in enumerate(corners[:n_ports]):
        netlist.add_port(f"p{k}", node(r, c))
    for r in range(rows):
        for c in range(cols):
            label = node(r, c)
            if c + 1 < cols:
                netlist.add_resistor(f"rh{r}_{c}", label, node(r, c + 1), series_resistance)
            if r + 1 < rows:
                netlist.add_inductor(f"lv{r}_{c}", label, node(r + 1, c), link_inductance)
                # Parallel loss keeps every LC resonance strictly damped.
                netlist.add_resistor(
                    f"rl{r}_{c}", label, node(r + 1, c), 10.0 / max(shunt_conductance, 1e-3)
                )
            if label in port_nodes:
                netlist.add_resistor(f"rg{r}_{c}", label, "0", 1.0 / max(shunt_conductance, 1e-3))
            else:
                netlist.add_capacitor(f"c{r}_{c}", label, "0", shunt_capacitance)
                netlist.add_resistor(f"rg{r}_{c}", label, "0", 1.0 / shunt_conductance)
    return assemble_mna(netlist, sparse=sparse)


def coupled_line_bus(
    n_lines: int,
    n_sections: int,
    series_resistance: float = 0.4,
    series_inductance: float = 0.8,
    shunt_capacitance: float = 1.0,
    shunt_conductance: float = 0.05,
    coupling_capacitance: float = 0.25,
    sparse: bool = True,
) -> MnaModel:
    """Multi-port bus of capacitively coupled RLC transmission-line ladders.

    ``n_lines`` parallel R-L/C ladders with coupling capacitors between
    adjacent lines at every tap, one port per line at the near end — the
    classic coupled-interconnect crosstalk workload.  The coupling capacitors
    make the nodal capacitance block genuinely non-diagonal, which exercises
    the sparse deflation's non-trivial ``E11``.  Order is
    ``n_lines * (3 * n_sections + 1)``.
    """
    if n_lines < 2:
        raise DimensionError("the bus needs at least two coupled lines")
    if n_sections < 1:
        raise DimensionError("each line needs at least one section")
    netlist = Netlist()
    for line in range(n_lines):
        netlist.add_port(f"p{line}", f"t{line}_0")
        netlist.add_resistor(
            f"rin{line}", f"t{line}_0", "0", 1.0 / max(shunt_conductance, 1e-3)
        )
        for k in range(1, n_sections + 1):
            netlist.add_resistor(
                f"r{line}_{k}", f"t{line}_{k - 1}", f"m{line}_{k}", series_resistance
            )
            netlist.add_inductor(
                f"l{line}_{k}", f"m{line}_{k}", f"t{line}_{k}", series_inductance
            )
            netlist.add_capacitor(f"c{line}_{k}", f"t{line}_{k}", "0", shunt_capacitance)
            netlist.add_resistor(
                f"rg{line}_{k}", f"t{line}_{k}", "0", 1.0 / shunt_conductance
            )
    for line in range(n_lines - 1):
        for k in range(1, n_sections + 1):
            netlist.add_capacitor(
                f"cc{line}_{k}", f"t{line}_{k}", f"t{line + 1}_{k}", coupling_capacitance
            )
    return assemble_mna(netlist, sparse=sparse)


def random_coupled_bus(
    n_nodes: int,
    n_ports: int = 2,
    extra_edge_fraction: float = 0.5,
    capacitor_fraction: float = 0.7,
    inductor_fraction: float = 0.1,
    seed: Optional[int] = None,
    sparse: bool = True,
) -> MnaModel:
    """Randomized connected RLC network, passive by construction.

    A random spanning tree over ``n_nodes`` nodes plus
    ``extra_edge_fraction * n_nodes`` chords, all resistive; a random
    ``capacitor_fraction`` of the nodes get shunt capacitors,
    ``inductor_fraction`` of the chords become inductive links, and every node
    keeps a small shunt conductance so the model is strictly lossy.  All
    element values are positive, so the MNA model satisfies the structural
    passivity LMI regardless of the drawn topology — which is what makes this
    generator suitable for property-based testing of the sparse backend.
    """
    if n_nodes < 2:
        raise DimensionError("the bus needs at least two nodes")
    if not 1 <= n_ports <= n_nodes:
        raise DimensionError("n_ports must be between 1 and n_nodes")
    rng = np.random.default_rng(seed)
    netlist = Netlist()

    def value(low: float = 0.2, high: float = 1.2) -> float:
        return float(low + (high - low) * rng.random())

    # Random spanning tree: connect each node to a random earlier node.
    for k in range(1, n_nodes):
        other = int(rng.integers(0, k))
        netlist.add_resistor(f"rt{k}", f"n{k}", f"n{other}", value())
    n_extra = int(extra_edge_fraction * n_nodes)
    n_inductive = int(inductor_fraction * n_extra)
    for j in range(n_extra):
        i, k = rng.integers(0, n_nodes, size=2)
        if i == k:
            continue
        if j < n_inductive:
            netlist.add_inductor(f"le{j}", f"n{int(i)}", f"n{int(k)}", value(0.3, 1.0))
        else:
            netlist.add_resistor(f"re{j}", f"n{int(i)}", f"n{int(k)}", value())
    capacitive = rng.random(n_nodes) < capacitor_fraction
    for k in range(n_nodes):
        if capacitive[k]:
            netlist.add_capacitor(f"c{k}", f"n{k}", "0", value(0.5, 1.5))
        netlist.add_resistor(f"rg{k}", f"n{k}", "0", 1.0 / value(0.01, 0.05))
    for k, port_node in enumerate(rng.choice(n_nodes, size=n_ports, replace=False)):
        netlist.add_port(f"p{k}", f"n{int(port_node)}")
    return assemble_mna(netlist, sparse=sparse)


def paper_benchmark_model(
    order: int,
    n_impulsive_stubs: int = 1,
    with_port_inductor: bool = True,
    seed: int = 0,
) -> MnaModel:
    """A passive RLC descriptor model of exactly the requested ``order``.

    Mirrors the workload of the paper's Table 1 / Figure 2: RLC interconnect
    models with a handful of impulsive modes, swept over the order.  The bulk
    of the order comes from ladder sections; the exact order is reached by
    padding with additional shunt RC branches, and the impulsive structure is
    provided by inductor stubs and a series port inductor.

    The minimum supported order is 12.
    """
    if order < 12:
        raise DimensionError("paper_benchmark_model supports order >= 12")
    rng = np.random.default_rng(seed)

    overhead = 2 * n_impulsive_stubs + n_impulsive_stubs  # stub node + 2 inductors
    overhead += 2 if with_port_inductor else 0            # drive node + inductor
    body = order - overhead
    n_sections = max(1, (body - 1) // 3)
    n_sections = min(n_sections, max(1, n_sections))
    used = 3 * n_sections + 1 + overhead
    n_pad = order - used
    if n_pad < 0:
        n_sections -= 1
        used = 3 * n_sections + 1 + overhead
        n_pad = order - used
    if n_sections < 1 or n_pad < 0:
        raise DimensionError(f"cannot synthesize a model of order {order}")

    netlist = _ladder_netlist(n_sections)
    stubs = min(n_impulsive_stubs, n_sections)
    for j in range(1, stubs + 1):
        tap = f"n{j}"
        stub = f"stub{j}"
        netlist.add_inductor(f"ls{j}a", tap, stub, 0.6)
        netlist.add_inductor(f"ls{j}b", stub, "0", 0.6)
    if with_port_inductor:
        netlist.ports = [p for p in netlist.ports if p.name != "p_in"]
        netlist.add_inductor("l_port", "pdrive", "n0", 0.5)
        netlist.add_port("p_in", "pdrive")

    # Pad to the exact order with shunt RC branches attached round-robin to the
    # ladder taps; each branch adds exactly one state (the new node voltage).
    for p in range(n_pad):
        tap = f"n{1 + (p % n_sections)}"
        pad_node = f"pad{p}"
        netlist.add_resistor(
            f"rp{p}", tap, pad_node, float(0.3 + 0.4 * rng.random())
        )
        netlist.add_capacitor(
            f"cp{p}", pad_node, "0", float(0.5 + rng.random())
        )
    model = assemble_mna(netlist)
    if model.system.order != order:
        raise DimensionError(
            f"internal error: synthesized order {model.system.order} != {order}"
        )
    return model


def random_passive_descriptor(
    order: int,
    n_ports: int = 2,
    rank_deficiency: int = 2,
    seed: Optional[int] = None,
    feedthrough_scale: float = 0.5,
) -> DescriptorSystem:
    """Random descriptor system that is passive by construction.

    Builds ``E = E^T >= 0`` with the requested rank deficiency,
    ``A = -K + S`` with ``K`` symmetric positive definite and ``S``
    skew-symmetric, ``C = B^T`` and ``D`` with a positive semidefinite
    symmetric part.  With ``X = I`` this satisfies the extended positive-real
    LMI (Eq. 4), so the system is passive whenever the pencil is regular —
    which the construction checks and enforces by adding diagonal damping if
    necessary.
    """
    if rank_deficiency >= order:
        raise DimensionError("rank_deficiency must be smaller than the order")
    rng = np.random.default_rng(seed)
    basis, _ = np.linalg.qr(rng.standard_normal((order, order)))
    eigenvalues = np.concatenate(
        [0.2 + rng.random(order - rank_deficiency), np.zeros(rank_deficiency)]
    )
    e_matrix = basis @ np.diag(eigenvalues) @ basis.T
    e_matrix = 0.5 * (e_matrix + e_matrix.T)

    for damping in (0.5, 1.0, 2.0, 4.0):
        k_factor = rng.standard_normal((order, order)) / np.sqrt(order)
        k_matrix = k_factor @ k_factor.T + damping * np.eye(order)
        s_matrix = rng.standard_normal((order, order))
        s_matrix = 0.5 * (s_matrix - s_matrix.T)
        a_matrix = -k_matrix + s_matrix
        b_matrix = rng.standard_normal((order, n_ports))
        d_factor = rng.standard_normal((n_ports, n_ports))
        d_matrix = feedthrough_scale * (d_factor @ d_factor.T + 0.1 * np.eye(n_ports))
        system = DescriptorSystem(e_matrix, a_matrix, b_matrix, b_matrix.T, d_matrix)
        if system.is_regular() and system.is_stable():
            return system
    raise DimensionError(
        "failed to generate a regular stable passive descriptor system; "
        "try a different seed"
    )


def negative_resistor_perturbation(
    model: MnaModel, conductance: float, node: Optional[str] = None
) -> DescriptorSystem:
    """Insert a negative conductance at a node, producing an active (non-passive) model.

    The perturbed model usually stays stable for small ``conductance`` but its
    impedance acquires a negative-real-part region, so passivity tests must
    reject it.
    """
    system = model.system
    node_index = model.node_index
    if node is None:
        node = next(iter(sorted(node_index)))
    if node not in node_index:
        raise DimensionError(f"unknown node {node!r}")
    i = node_index[node]
    a_matrix = system.a.copy()
    a_matrix[i, i] += conductance
    return DescriptorSystem(system.e, a_matrix, system.b, system.c, system.d)


def feedthrough_perturbation(
    system: DescriptorSystem, magnitude: float
) -> DescriptorSystem:
    """Subtract ``magnitude * I`` from the feedthrough, shifting the response down.

    For magnitudes larger than the minimum of the real part of the frequency
    response this produces a non-passive system while leaving the pole
    structure untouched.
    """
    d_matrix = system.d - magnitude * np.eye(system.n_outputs)
    return DescriptorSystem(system.e, system.a, system.b, system.c, d_matrix)


def perturb_system(
    system: DescriptorSystem,
    scale: float,
    seed: int = 0,
    pattern: str = "a",
) -> DescriptorSystem:
    """Multiplicative perturbation of a system's nonzero stamps.

    Models process/temperature corners of an extracted netlist: every nonzero
    entry of the selected matrices is scaled by ``1 + scale * g`` with
    independent standard-normal ``g``, so the sparsity pattern (and hence the
    circuit topology) is exactly preserved — the delta fingerprint of the
    perturbed system against its nominal ancestor has the same support.
    Element-wise multiplicative noise on passive stamps stays passive for the
    physically relevant scales (``scale`` well below 1).

    Parameters
    ----------
    pattern:
        Which matrices to perturb, as a string of matrix letters: any
        subset-string of ``"eabcd"`` (e.g. ``"a"`` for conductance-only
        sweeps — the fast path of the incremental tier — or ``"ea"`` for
        full reactive + resistive variation), or ``"all"``.
    seed:
        Seeds a dedicated :func:`numpy.random.default_rng`; distinct seeds
        give independent corners of the same family.
    """
    pattern = "eabcd" if pattern == "all" else pattern
    unknown = set(pattern) - set("eabcd")
    if not pattern or unknown:
        raise DimensionError(
            f"pattern must be 'all' or a non-empty subset-string of 'eabcd', "
            f"got {pattern!r}"
        )
    rng = np.random.default_rng(seed)

    def perturbed(matrix, selected: bool):
        if not selected:
            return matrix
        copy = matrix.copy()
        if hasattr(copy, "toarray"):  # CSR stamp: the nonzeros live in .data
            copy.data = copy.data * (1.0 + scale * rng.standard_normal(copy.data.shape))
            return copy
        mask = copy != 0
        count = int(mask.sum())
        if count:
            copy[mask] *= 1.0 + scale * rng.standard_normal(count)
        return copy

    # Sparse systems densify through .e/.a; perturb the CSR stamps instead so
    # the corner family keeps the nominal model's storage (and the sparse
    # method dispatch that follows from it).
    e_stamp = system.sparse_e if system.is_sparse else system.e
    a_stamp = system.sparse_a if system.is_sparse else system.a
    return DescriptorSystem(
        perturbed(e_stamp, "e" in pattern),
        perturbed(a_stamp, "a" in pattern),
        perturbed(system.b, "b" in pattern),
        perturbed(system.c, "c" in pattern),
        perturbed(system.d, "d" in pattern),
    )


def corner_family(
    system: DescriptorSystem,
    n_corners: int,
    scale: float = 2e-4,
    seed: int = 0,
    pattern: str = "a",
) -> list:
    """Multiplicative corner family of an arbitrary base system.

    Returns ``n_corners`` descriptor systems: the given ``system`` first
    (the nominal family root), then ``n_corners - 1`` independent
    multiplicative corners of it via :func:`perturb_system` with seeds
    ``seed + 1 ..``.  This is the expansion behind ``"corners"`` scenarios
    (:class:`~repro.service.ScenarioSpec`) and generalizes
    :func:`rlc_grid_corners` to any base model.
    """
    if n_corners < 1:
        raise DimensionError("the family needs at least one corner")
    family = [system]
    for corner in range(1, n_corners):
        family.append(perturb_system(system, scale, seed=seed + corner, pattern=pattern))
    return family


def rlc_grid_corners(
    rows: int,
    cols: int,
    n_corners: int,
    scale: float = 2e-4,
    seed: int = 0,
    pattern: str = "a",
    **grid_kwargs,
) -> list:
    """Swept corner family of one :func:`rlc_grid` power-grid model.

    Returns ``n_corners`` descriptor systems: the nominal grid first, then
    ``n_corners - 1`` independent multiplicative corners of it (seeds
    ``seed + 1 ..``) via :func:`perturb_system`.  This is the canonical
    workload of the incremental re-certification tier: one cold
    factorization of the nominal system warm-starts every corner.

    ``grid_kwargs`` are forwarded to :func:`rlc_grid` (the family defaults to
    the dense damped variant used by the sweep benchmark:
    ``series_resistance=0.8, shunt_conductance=0.1, sparse=False``).
    """
    if n_corners < 1:
        raise DimensionError("the family needs at least one corner")
    grid_kwargs.setdefault("series_resistance", 0.8)
    grid_kwargs.setdefault("shunt_conductance", 0.1)
    grid_kwargs.setdefault("sparse", False)
    nominal = rlc_grid(rows, cols, **grid_kwargs).system
    return corner_family(nominal, n_corners, scale=scale, seed=seed, pattern=pattern)
