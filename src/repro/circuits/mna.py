"""Modified nodal analysis (MNA): netlist -> descriptor system.

The unknown vector is ``x = [node voltages; inductor currents]`` and the
inputs are the port currents, outputs the port voltages, i.e. the assembled
transfer function is the port impedance matrix ``Z(s)``.  The matrices are ::

    E = [[C_nodal, 0],      A = [[-G_nodal, -A_L],      B = [[A_P],   C = B^T
         [0,       L ]]          [ A_L^T,     0 ]]           [ 0 ]]

with ``C_nodal``/``G_nodal`` the capacitance/conductance stamps, ``A_L`` the
inductor incidence matrix and ``A_P`` the port incidence matrix.  This is the
standard passive-by-construction MNA form used by the interconnect-modeling
literature the paper cites: ``E = E^T >= 0``, ``A + A^T <= 0``, ``C = B^T``,
``D = 0``, so the LMI (Eq. 4) is satisfied with ``X = I``.

``E`` is singular whenever a node carries no capacitance; such nodes create
nondynamic modes, and nodes attached *only* to inductors/ports create the
index-2 (impulsive) behaviour the paper's experiments exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse

from repro.circuits.netlist import GROUND, Netlist
from repro.descriptor.system import DescriptorSystem

__all__ = ["MnaModel", "assemble_mna"]


@dataclass(frozen=True)
class MnaModel:
    """Result of MNA assembly.

    Attributes
    ----------
    system:
        The descriptor system in impedance form.  When assembled with
        ``sparse=True`` the system keeps the CSR stamps
        (``system.sparse_e`` / ``system.sparse_a``) alongside a lazily
        densified dense view, so large models never materialize ``n x n``
        arrays unless a dense algorithm asks for them.
    node_index:
        Mapping node label -> index in the voltage part of the state vector.
    inductor_index:
        Mapping inductor name -> index (offset by the number of nodes) of its
        current in the state vector.
    """

    system: DescriptorSystem
    node_index: Dict[str, int]
    inductor_index: Dict[str, int]

    @property
    def is_sparse(self) -> bool:
        """True when the model was assembled on the sparse path."""
        return self.system.is_sparse


def _incidence_column(
    n_nodes: int, index: Dict[str, int], node_pos: str, node_neg: str
) -> np.ndarray:
    column = np.zeros(n_nodes)
    if node_pos != GROUND:
        column[index[node_pos]] = 1.0
    if node_neg != GROUND:
        column[index[node_neg]] = -1.0
    return column


class _TripletStamper:
    """Accumulator of ``(row, col, value)`` stamps shared by both assembly paths.

    The same stamp sequence feeds either a dense in-place accumulation
    (``np.add.at`` applies duplicates in insertion order, exactly like the
    historical dense loops) or a COO -> CSR conversion, so the two paths
    produce numerically identical matrices.
    """

    def __init__(self) -> None:
        self.rows: List[int] = []
        self.cols: List[int] = []
        self.values: List[float] = []

    def add(self, row: int, col: int, value: float) -> None:
        self.rows.append(row)
        self.cols.append(col)
        self.values.append(float(value))

    def stamp_two_terminal(
        self, index: Dict[str, int], node_pos: str, node_neg: str, value: float
    ) -> None:
        """Conductance-style stamp of a two-terminal element."""
        if node_pos != GROUND:
            i = index[node_pos]
            self.add(i, i, value)
        if node_neg != GROUND:
            j = index[node_neg]
            self.add(j, j, value)
        if node_pos != GROUND and node_neg != GROUND:
            i, j = index[node_pos], index[node_neg]
            self.add(i, j, -value)
            self.add(j, i, -value)

    def to_dense(self, shape: Tuple[int, int]) -> np.ndarray:
        matrix = np.zeros(shape)
        if self.rows:
            np.add.at(matrix, (np.array(self.rows), np.array(self.cols)), self.values)
        return matrix

    def to_csr(self, shape: Tuple[int, int]) -> "scipy.sparse.csr_matrix":
        if not self.rows:
            return scipy.sparse.csr_matrix(shape, dtype=float)
        rows = np.asarray(self.rows)
        cols = np.asarray(self.cols)
        values = np.asarray(self.values)
        # Deterministic duplicate handling: a *stable* sort keeps duplicate
        # stamps in insertion order and reduceat sums them sequentially —
        # bitwise identical to the dense path's in-order accumulation
        # (scipy's own sum_duplicates gives no such ordering guarantee).
        permutation = np.lexsort((cols, rows))
        rows, cols, values = rows[permutation], cols[permutation], values[permutation]
        keys = rows.astype(np.int64) * shape[1] + cols
        new_group = keys[1:] != keys[:-1]
        starts = np.flatnonzero(np.concatenate(([True], new_group)))
        group_ids = np.cumsum(np.concatenate(([0], new_group.astype(np.int64))))
        summed = np.zeros(starts.size)
        # Sequential accumulation (np.add.at is unbuffered and in-order), the
        # same rounding as the dense path; reduceat would sum pairwise.
        np.add.at(summed, group_ids, values)
        coo = scipy.sparse.coo_matrix(
            (summed, (rows[starts], cols[starts])), shape=shape, dtype=float
        )
        return coo.tocsr()


def assemble_mna(netlist: Netlist, sparse: bool = False) -> MnaModel:
    """Assemble the impedance-form MNA descriptor system of a netlist.

    Parameters
    ----------
    sparse:
        When true, assemble the pencil stamps ``E``/``A`` as ``scipy.sparse``
        CSR matrices via a triplet (COO) accumulation — O(elements) time and
        memory instead of O(n^2) — and return a sparse-backed
        :class:`~repro.descriptor.system.DescriptorSystem`.  Both paths stamp
        the same triplet sequence, so the assembled matrices are numerically
        identical; only the storage differs.
    """
    netlist.validate()
    index = netlist.node_index
    n_nodes = netlist.n_nodes
    n_inductors = len(netlist.inductors)
    n_ports = len(netlist.ports)
    order = n_nodes + n_inductors

    e_stamps = _TripletStamper()
    a_stamps = _TripletStamper()
    for resistor in netlist.resistors:
        # A carries -G: stamp the negated conductance directly.
        a_stamps.stamp_two_terminal(
            index, resistor.node_pos, resistor.node_neg, -1.0 / resistor.value
        )
    for capacitor in netlist.capacitors:
        e_stamps.stamp_two_terminal(
            index, capacitor.node_pos, capacitor.node_neg, capacitor.value
        )

    inductor_index = {}
    for k, inductor in enumerate(netlist.inductors):
        current = n_nodes + k
        e_stamps.add(current, current, inductor.value)
        for node, sign in ((inductor.node_pos, 1.0), (inductor.node_neg, -1.0)):
            if node != GROUND:
                i = index[node]
                a_stamps.add(i, current, -sign)
                a_stamps.add(current, i, sign)
        inductor_index[inductor.name] = current

    b_matrix = np.zeros((order, n_ports))
    for k, port in enumerate(netlist.ports):
        b_matrix[:n_nodes, k] = _incidence_column(
            n_nodes, index, port.node_pos, port.node_neg
        )
    c_matrix = b_matrix.T
    d_matrix = np.zeros((n_ports, n_ports))

    shape = (order, order)
    if sparse:
        e_matrix = e_stamps.to_csr(shape)
        a_matrix = a_stamps.to_csr(shape)
    else:
        e_matrix = e_stamps.to_dense(shape)
        a_matrix = a_stamps.to_dense(shape)

    system = DescriptorSystem(e_matrix, a_matrix, b_matrix, c_matrix, d_matrix)
    return MnaModel(system=system, node_index=dict(index), inductor_index=inductor_index)
