"""Modified nodal analysis (MNA): netlist -> descriptor system.

The unknown vector is ``x = [node voltages; inductor currents]`` and the
inputs are the port currents, outputs the port voltages, i.e. the assembled
transfer function is the port impedance matrix ``Z(s)``.  The matrices are ::

    E = [[C_nodal, 0],      A = [[-G_nodal, -A_L],      B = [[A_P],   C = B^T
         [0,       L ]]          [ A_L^T,     0 ]]           [ 0 ]]

with ``C_nodal``/``G_nodal`` the capacitance/conductance stamps, ``A_L`` the
inductor incidence matrix and ``A_P`` the port incidence matrix.  This is the
standard passive-by-construction MNA form used by the interconnect-modeling
literature the paper cites: ``E = E^T >= 0``, ``A + A^T <= 0``, ``C = B^T``,
``D = 0``, so the LMI (Eq. 4) is satisfied with ``X = I``.

``E`` is singular whenever a node carries no capacitance; such nodes create
nondynamic modes, and nodes attached *only* to inductors/ports create the
index-2 (impulsive) behaviour the paper's experiments exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.circuits.netlist import GROUND, Netlist
from repro.descriptor.system import DescriptorSystem

__all__ = ["MnaModel", "assemble_mna"]


@dataclass(frozen=True)
class MnaModel:
    """Result of MNA assembly.

    Attributes
    ----------
    system:
        The descriptor system in impedance form.
    node_index:
        Mapping node label -> index in the voltage part of the state vector.
    inductor_index:
        Mapping inductor name -> index (offset by the number of nodes) of its
        current in the state vector.
    """

    system: DescriptorSystem
    node_index: Dict[str, int]
    inductor_index: Dict[str, int]


def _stamp_two_terminal(
    matrix: np.ndarray, index: Dict[str, int], node_pos: str, node_neg: str, value: float
) -> None:
    """Add the conductance-style stamp of a two-terminal element in place."""
    if node_pos != GROUND:
        i = index[node_pos]
        matrix[i, i] += value
    if node_neg != GROUND:
        j = index[node_neg]
        matrix[j, j] += value
    if node_pos != GROUND and node_neg != GROUND:
        i, j = index[node_pos], index[node_neg]
        matrix[i, j] -= value
        matrix[j, i] -= value


def _incidence_column(
    n_nodes: int, index: Dict[str, int], node_pos: str, node_neg: str
) -> np.ndarray:
    column = np.zeros(n_nodes)
    if node_pos != GROUND:
        column[index[node_pos]] = 1.0
    if node_neg != GROUND:
        column[index[node_neg]] = -1.0
    return column


def assemble_mna(netlist: Netlist) -> MnaModel:
    """Assemble the impedance-form MNA descriptor system of a netlist."""
    netlist.validate()
    index = netlist.node_index
    n_nodes = netlist.n_nodes
    n_inductors = len(netlist.inductors)
    n_ports = len(netlist.ports)

    conductance = np.zeros((n_nodes, n_nodes))
    capacitance = np.zeros((n_nodes, n_nodes))
    for resistor in netlist.resistors:
        _stamp_two_terminal(
            conductance, index, resistor.node_pos, resistor.node_neg, 1.0 / resistor.value
        )
    for capacitor in netlist.capacitors:
        _stamp_two_terminal(
            capacitance, index, capacitor.node_pos, capacitor.node_neg, capacitor.value
        )

    inductor_incidence = np.zeros((n_nodes, n_inductors))
    inductance = np.zeros((n_inductors, n_inductors))
    inductor_index = {}
    for k, inductor in enumerate(netlist.inductors):
        inductor_incidence[:, k] = _incidence_column(
            n_nodes, index, inductor.node_pos, inductor.node_neg
        )
        inductance[k, k] = inductor.value
        inductor_index[inductor.name] = n_nodes + k

    port_incidence = np.zeros((n_nodes, n_ports))
    for k, port in enumerate(netlist.ports):
        port_incidence[:, k] = _incidence_column(
            n_nodes, index, port.node_pos, port.node_neg
        )

    order = n_nodes + n_inductors
    e_matrix = np.zeros((order, order))
    e_matrix[:n_nodes, :n_nodes] = capacitance
    e_matrix[n_nodes:, n_nodes:] = inductance

    a_matrix = np.zeros((order, order))
    a_matrix[:n_nodes, :n_nodes] = -conductance
    a_matrix[:n_nodes, n_nodes:] = -inductor_incidence
    a_matrix[n_nodes:, :n_nodes] = inductor_incidence.T

    b_matrix = np.zeros((order, n_ports))
    b_matrix[:n_nodes, :] = port_incidence
    c_matrix = b_matrix.T
    d_matrix = np.zeros((n_ports, n_ports))

    system = DescriptorSystem(e_matrix, a_matrix, b_matrix, c_matrix, d_matrix)
    return MnaModel(system=system, node_index=dict(index), inductor_index=inductor_index)
