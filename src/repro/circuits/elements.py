"""Circuit element definitions for the MNA model generator.

Only the element types needed to reproduce the paper's workloads are modelled:
resistors, capacitors, inductors and current-injection ports.  All values are
stored in SI units; the generators in :mod:`repro.circuits.generators` scale
them so that the resulting descriptor matrices are reasonably equilibrated
(which every rank-decision based algorithm appreciates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DimensionError

__all__ = ["Resistor", "Capacitor", "Inductor", "Port", "CircuitElement"]


@dataclass(frozen=True)
class _TwoTerminal:
    """Common base for two-terminal elements.

    Attributes
    ----------
    name:
        Unique element name (used in error messages only).
    node_pos, node_neg:
        Node labels; the label ``"0"`` denotes the reference (ground) node.
    value:
        Element value (ohms, farads or henries).
    """

    name: str
    node_pos: str
    node_neg: str
    value: float

    def __post_init__(self) -> None:
        if self.node_pos == self.node_neg:
            raise DimensionError(
                f"element {self.name} connects node {self.node_pos} to itself"
            )
        if self.value <= 0:
            raise DimensionError(
                f"element {self.name} must have a positive value, got {self.value}"
            )


class Resistor(_TwoTerminal):
    """A linear resistor (value in ohms)."""


class Capacitor(_TwoTerminal):
    """A linear capacitor (value in farads)."""


class Inductor(_TwoTerminal):
    """A linear inductor (value in henries)."""


@dataclass(frozen=True)
class Port:
    """A current-injection port.

    The port current is an input of the generated descriptor system and the
    port voltage is the corresponding output, so the transfer function of the
    assembled model is the impedance matrix ``Z(s)`` — positive real whenever
    the network contains only positive R, L, C values.
    """

    name: str
    node_pos: str
    node_neg: str = "0"

    def __post_init__(self) -> None:
        if self.node_pos == self.node_neg:
            raise DimensionError(f"port {self.name} connects a node to itself")


CircuitElement = object
