"""RLC/MNA circuit modelling: netlists, MNA assembly and workload generators."""

from repro.circuits.elements import Capacitor, Inductor, Port, Resistor
from repro.circuits.netlist import Netlist
from repro.circuits.mna import MnaModel, assemble_mna
from repro.circuits.generators import (
    feedthrough_perturbation,
    impulsive_rlc_ladder,
    negative_resistor_perturbation,
    paper_benchmark_model,
    random_passive_descriptor,
    rc_line,
    rlc_ladder,
)

__all__ = [
    "Resistor",
    "Capacitor",
    "Inductor",
    "Port",
    "Netlist",
    "MnaModel",
    "assemble_mna",
    "rlc_ladder",
    "impulsive_rlc_ladder",
    "rc_line",
    "paper_benchmark_model",
    "random_passive_descriptor",
    "negative_resistor_perturbation",
    "feedthrough_perturbation",
]
