"""RLC/MNA circuit modelling: netlists, MNA assembly and workload generators."""

from repro.circuits.elements import Capacitor, Inductor, Port, Resistor
from repro.circuits.netlist import Netlist
from repro.circuits.mna import MnaModel, assemble_mna
from repro.circuits.generators import (
    corner_family,
    coupled_line_bus,
    feedthrough_perturbation,
    impulsive_rlc_ladder,
    negative_resistor_perturbation,
    paper_benchmark_model,
    perturb_system,
    random_coupled_bus,
    random_passive_descriptor,
    rc_grid,
    rc_line,
    rlc_grid,
    rlc_grid_corners,
    rlc_ladder,
)

__all__ = [
    "Resistor",
    "Capacitor",
    "Inductor",
    "Port",
    "Netlist",
    "MnaModel",
    "assemble_mna",
    "rlc_ladder",
    "impulsive_rlc_ladder",
    "rc_line",
    "rc_grid",
    "rlc_grid",
    "coupled_line_bus",
    "random_coupled_bus",
    "paper_benchmark_model",
    "random_passive_descriptor",
    "negative_resistor_perturbation",
    "feedthrough_perturbation",
    "perturb_system",
    "corner_family",
    "rlc_grid_corners",
]
