"""``python -m repro.service`` — run the reference passivity HTTP server.

Starts a :class:`~repro.service.PassivityService` with the requested worker
pool and serves the JSON-over-HTTP contract of :mod:`repro.service.http`
until interrupted::

    PYTHONPATH=src python -m repro.service --port 8123 --workers 4

    # elsewhere:
    curl -s -X POST localhost:8123/jobs -d "$(python - <<'EOF'
    import json
    from repro.circuits import rlc_ladder
    from repro.service import system_to_jsonable
    print(json.dumps({"system": system_to_jsonable(rlc_ladder(8).system)}))
    EOF
    )"
    curl -s localhost:8123/jobs/<job_id>/result
    curl -s localhost:8123/stats
"""

from __future__ import annotations

import argparse
import signal

from repro.service.http import serve
from repro.service.service import PassivityService


def main(argv=None) -> int:
    """Parse arguments, start the service and serve until interrupted."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Reference HTTP front-end of the repro passivity service.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8123, help="bind port")
    parser.add_argument(
        "--workers", type=int, default=2, help="worker pool size"
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="default per-job timeout in seconds (unset: no timeout)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="execution mode: in-process thread pool, or a process pool "
        "whose workers share decompositions through --store",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="bound on queued jobs; beyond it POST /jobs answers 429 "
        "(unset: unbounded)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent decomposition/job store directory (e.g. "
        "./.repro-store); decompositions and completed results then "
        "survive restarts",
    )
    parser.add_argument(
        "--store-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="LRU size budget of --store in bytes (unset: unbounded)",
    )
    parser.add_argument(
        "--transport",
        choices=("auto", "shm", "pickle"),
        default="auto",
        help="array transport of --executor process: ship payloads through "
        "POSIX shared memory when available (auto/shm) or always pickle",
    )
    parser.add_argument(
        "--batch-small-systems",
        choices=("auto", "on", "off"),
        default="auto",
        help="micro-batch waiting small dense jobs several-per-worker "
        "dispatch (process executor only)",
    )
    parser.add_argument(
        "--small-system-order",
        type=int,
        default=100,
        metavar="N",
        help="largest system order the micro-batch policy treats as small",
    )
    parser.add_argument(
        "--max-batch-size",
        type=int,
        default=8,
        metavar="N",
        help="most jobs one micro-batch dispatch may carry",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="sweep-aware dispatch: same-family jobs warm-start from the "
        "family's latest cold-run system through the perturbation-aware "
        "incremental tier (falling back cold whenever a validity bound "
        "fails; verdicts never weaken)",
    )
    parser.add_argument(
        "--journal",
        nargs="?",
        const=True,
        default=None,
        metavar="PATH",
        help="write-ahead job journal: accepted submissions are fsynced "
        "and replayed on restart, so kill -9 loses no accepted work; "
        "without PATH the journal lives under --store (which is then "
        "required)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=1,
        metavar="N",
        help="times a job is re-queued after a process-pool worker crash "
        "before it fails (the pool itself is always rebuilt)",
    )
    parser.add_argument(
        "--sse",
        dest="sse",
        action="store_true",
        default=True,
        help="serve the GET /scenarios/<id>/events Server-Sent-Events "
        "stream (the default; see --no-sse)",
    )
    parser.add_argument(
        "--no-sse",
        dest="sse",
        action="store_false",
        help="disable event streaming; scenario clients poll "
        "GET /scenarios/<id> instead",
    )
    parser.add_argument(
        "--metrics",
        dest="metrics",
        action="store_true",
        default=True,
        help="serve the GET /metrics Prometheus exposition (per-stage "
        "latency histograms and service gauges; the default, see "
        "--no-metrics)",
    )
    parser.add_argument(
        "--no-metrics",
        dest="metrics",
        action="store_false",
        help="disable the GET /metrics exposition (404)",
    )
    args = parser.parse_args(argv)

    store = None
    if args.store is not None:
        from repro.store import DecompositionStore

        store = DecompositionStore(args.store, size_budget=args.store_budget)
    batch_policy = {"auto": "auto", "on": True, "off": False}[args.batch_small_systems]
    service = PassivityService(
        max_workers=args.workers,
        default_timeout=args.job_timeout,
        executor=args.executor,
        max_queue=args.max_queue,
        store=store,
        transport=args.transport,
        batch_small_systems=batch_policy,
        small_system_order=args.small_system_order,
        max_batch_size=args.max_batch_size,
        incremental=args.incremental,
        journal=args.journal,
        max_retries=args.max_retries,
    )
    server = serve(
        service,
        host=args.host,
        port=args.port,
        sse=args.sse,
        metrics=args.metrics,
    )
    host, port = server.server_address[:2]
    print(f"repro passivity service listening on http://{host}:{port}")
    print(
        "endpoints: POST /jobs, GET /jobs/<id>[/result|/trace], "
        "DELETE /jobs/<id>, GET /stats"
        + (", GET /metrics" if args.metrics else "")
    )
    print(
        "scenarios: POST /scenarios, GET /scenarios/<id>"
        + ("[/events]" if args.sse else "")
        + ", DELETE /scenarios/<id>"
    )
    # Clean shutdown on SIGTERM (`kill`, container stop), not just Ctrl-C:
    # without this, a process-pool service dies leaving its forked workers
    # orphaned — and since they inherit the listening socket, the port
    # would stay bound against the next incarnation.  The handler raises on
    # the serving thread, unwinding into the same cleanup as Ctrl-C
    # (server.shutdown() must not be called from this thread — it would
    # wait on the serve_forever loop the handler is interrupting).
    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
