"""``python -m repro.service`` — run the reference passivity HTTP server.

Starts a :class:`~repro.service.PassivityService` with the requested worker
pool and serves the JSON-over-HTTP contract of :mod:`repro.service.http`
until interrupted::

    PYTHONPATH=src python -m repro.service --port 8123 --workers 4

    # elsewhere:
    curl -s -X POST localhost:8123/jobs -d "$(python - <<'EOF'
    import json
    from repro.circuits import rlc_ladder
    from repro.service import system_to_jsonable
    print(json.dumps({"system": system_to_jsonable(rlc_ladder(8).system)}))
    EOF
    )"
    curl -s localhost:8123/jobs/<job_id>/result
    curl -s localhost:8123/stats
"""

from __future__ import annotations

import argparse
import signal

from repro.service.http import serve
from repro.service.service import PassivityService


def main(argv=None) -> int:
    """Parse arguments, start the service and serve until interrupted."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Reference HTTP front-end of the repro passivity service.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8123, help="bind port")
    parser.add_argument(
        "--workers", type=int, default=2, help="worker pool size"
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="default per-job timeout in seconds (unset: no timeout)",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default="thread",
        help="execution mode: in-process thread pool, or a process pool "
        "whose workers share decompositions through --store",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="bound on queued jobs; beyond it POST /jobs answers 429 "
        "(unset: unbounded)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent decomposition/job store directory (e.g. "
        "./.repro-store); decompositions and completed results then "
        "survive restarts",
    )
    parser.add_argument(
        "--store-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="LRU size budget of --store in bytes (unset: unbounded)",
    )
    args = parser.parse_args(argv)

    store = None
    if args.store is not None:
        from repro.store import DecompositionStore

        store = DecompositionStore(args.store, size_budget=args.store_budget)
    service = PassivityService(
        max_workers=args.workers,
        default_timeout=args.job_timeout,
        executor=args.executor,
        max_queue=args.max_queue,
        store=store,
    )
    server = serve(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"repro passivity service listening on http://{host}:{port}")
    print("endpoints: POST /jobs, GET /jobs/<id>[/result], DELETE /jobs/<id>, GET /stats")
    # Clean shutdown on SIGTERM (`kill`, container stop), not just Ctrl-C:
    # without this, a process-pool service dies leaving its forked workers
    # orphaned — and since they inherit the listening socket, the port
    # would stay bound against the next incarnation.  The handler raises on
    # the serving thread, unwinding into the same cleanup as Ctrl-C
    # (server.shutdown() must not be called from this thread — it would
    # wait on the serve_forever loop the handler is interrupting).
    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
