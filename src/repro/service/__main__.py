"""``python -m repro.service`` — run the reference passivity HTTP server.

Starts a :class:`~repro.service.PassivityService` with the requested worker
pool and serves the JSON-over-HTTP contract of :mod:`repro.service.http`
until interrupted::

    PYTHONPATH=src python -m repro.service --port 8123 --workers 4

    # elsewhere:
    curl -s -X POST localhost:8123/jobs -d "$(python - <<'EOF'
    import json
    from repro.circuits import rlc_ladder
    from repro.service import system_to_jsonable
    print(json.dumps({"system": system_to_jsonable(rlc_ladder(8).system)}))
    EOF
    )"
    curl -s localhost:8123/jobs/<job_id>/result
    curl -s localhost:8123/stats
"""

from __future__ import annotations

import argparse

from repro.service.http import serve
from repro.service.service import PassivityService


def main(argv=None) -> int:
    """Parse arguments, start the service and serve until interrupted."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Reference HTTP front-end of the repro passivity service.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8123, help="bind port")
    parser.add_argument(
        "--workers", type=int, default=2, help="worker pool size"
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="default per-job timeout in seconds (unset: no timeout)",
    )
    args = parser.parse_args(argv)

    service = PassivityService(
        max_workers=args.workers, default_timeout=args.job_timeout
    )
    server = serve(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(f"repro passivity service listening on http://{host}:{port}")
    print("endpoints: POST /jobs, GET /jobs/<id>[/result], DELETE /jobs/<id>, GET /stats")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
