"""JSON-able wire forms of descriptor systems and passivity reports.

The service sits behind arbitrary transports (the reference HTTP front-end,
a message queue, files on disk), so systems and reports need a faithful,
dependency-free representation built from JSON primitives only.  Two
conventions keep the round trip lossless:

* **Sparse stays sparse.**  A sparse-backed :class:`DescriptorSystem`
  serializes its pencil stamps as canonical CSR triplets
  (``data``/``indices``/``indptr``) and deserializes back to a sparse-backed
  system — the payload is O(nnz), nothing densifies in transit, and the
  reconstructed system has the *same cache fingerprint* (the fingerprint
  hashes exactly these triplets), so server-side deduplication works across
  the wire.
* **Complex numbers are tagged.**  JSON has no complex type; complex scalars
  become ``{"__complex__": [re, im]}`` and are revived on load (report
  diagnostics carry eigenvalues).  NumPy arrays become nested lists, NumPy
  scalars become Python scalars — numeric content survives, array-ness does
  not (a diagnostics array returns as a list).

Every document carries a ``"kind"`` tag; :func:`from_jsonable` dispatches on
it, and malformed documents raise
:class:`~repro.exceptions.SerializationError` rather than ``KeyError``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

import numpy as np
import scipy.sparse

from repro.descriptor.system import DescriptorSystem
from repro.exceptions import SerializationError
from repro.passivity.result import PassivityReport, TestStep

__all__ = [
    "looks_like_shm_payload",
    "system_to_jsonable",
    "system_from_jsonable",
    "report_to_jsonable",
    "report_from_jsonable",
    "job_record_to_jsonable",
    "job_record_from_jsonable",
    "to_jsonable",
    "from_jsonable",
]

SYSTEM_KIND = "descriptor_system"
REPORT_KIND = "passivity_report"
JOB_RECORD_KIND = "service_job_record"


def _plain_float(value: float) -> Any:
    """A float as a JSON-safe scalar: non-finite values become strings.

    Strict JSON has no ``Infinity``/``NaN`` tokens (``json.dumps`` would
    emit them anyway and break standards-compliant clients), so non-finite
    values travel as the strings ``"inf"``/``"-inf"``/``"nan"`` that
    ``float()`` parses back.
    """
    return value if math.isfinite(value) else str(value)


def _plain(value: Any) -> Any:
    """Recursively convert a value to *strict* JSON primitives.

    Complex scalars are tagged (``{"__complex__": [re, im]}``), non-finite
    floats are tagged (``{"__float__": "inf"}``) — both revive losslessly.
    """
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, np.ndarray):
        return _plain(value.tolist())
    if isinstance(value, complex):
        return {
            "__complex__": [
                _plain_float(float(value.real)),
                _plain_float(float(value.imag)),
            ]
        }
    if isinstance(value, np.generic):
        return _plain(value.item())
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        return {"__float__": str(value)}
    # Last resort for exotic diagnostics payloads: keep a readable trace
    # instead of refusing the whole report.
    return repr(value)


def _revive(value: Any) -> Any:
    """Inverse of :func:`_plain` (revives tagged complex/non-finite scalars)."""
    if isinstance(value, dict):
        if set(value) == {"__complex__"}:
            real, imag = value["__complex__"]
            return complex(float(real), float(imag))
        if set(value) == {"__float__"}:
            return float(value["__float__"])
        return {key: _revive(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_revive(item) for item in value]
    return value


def looks_like_shm_payload(payload: Any) -> bool:
    """True when a journaled system payload is a shared-memory descriptor.

    A system that travelled through the zero-copy transport may leave an
    :class:`~repro.engine.shm.ArrayShipment`-shaped document (``segment`` +
    ``specs``) in a journal instead of the inline wire form.  After a crash
    the segment is gone with the arena, so replay must detect the shape and
    fall back to the journaled wire payload (``system_wire``) instead of
    failing the record.
    """
    if not isinstance(payload, dict):
        return False
    if payload.get("kind") == "array_shipment":
        return True
    return "segment" in payload and "specs" in payload and "kind" not in payload


def _csr_to_jsonable(matrix: "scipy.sparse.csr_matrix") -> Dict[str, Any]:
    """Canonical CSR triplets of one pencil stamp."""
    return {
        "shape": [int(matrix.shape[0]), int(matrix.shape[1])],
        "data": np.asarray(matrix.data, dtype=float).tolist(),
        "indices": np.asarray(matrix.indices, dtype=int).tolist(),
        "indptr": np.asarray(matrix.indptr, dtype=int).tolist(),
    }


def _csr_from_jsonable(payload: Dict[str, Any], label: str) -> "scipy.sparse.csr_matrix":
    """Rebuild one CSR pencil stamp, validating the triplet structure."""
    try:
        shape = tuple(int(size) for size in payload["shape"])
        matrix = scipy.sparse.csr_matrix(
            (
                np.asarray(payload["data"], dtype=float),
                np.asarray(payload["indices"], dtype=np.int32),
                np.asarray(payload["indptr"], dtype=np.int32),
            ),
            shape=shape,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(
            f"malformed CSR payload for {label}: {type(error).__name__}: {error}"
        ) from error
    return matrix


def system_to_jsonable(system: DescriptorSystem) -> Dict[str, Any]:
    """Serialize a :class:`DescriptorSystem` to a JSON-able dict.

    Sparse-backed systems keep CSR stamps (``format: "csr"``, O(nnz)
    payload); dense systems ship nested lists (``format: "dense"``).  The
    thin ``B``/``C``/``D`` blocks are always dense lists, matching how the
    system stores them.
    """
    if not isinstance(system, DescriptorSystem):
        raise SerializationError(
            f"expected a DescriptorSystem, got {type(system).__name__}"
        )
    payload: Dict[str, Any] = {"kind": SYSTEM_KIND, "order": system.order}
    if system.is_sparse:
        payload["format"] = "csr"
        payload["e"] = _csr_to_jsonable(system.sparse_e)
        payload["a"] = _csr_to_jsonable(system.sparse_a)
    else:
        payload["format"] = "dense"
        payload["e"] = np.asarray(system.e, dtype=float).tolist()
        payload["a"] = np.asarray(system.a, dtype=float).tolist()
    payload["b"] = np.asarray(system.b, dtype=float).tolist()
    payload["c"] = np.asarray(system.c, dtype=float).tolist()
    payload["d"] = np.asarray(system.d, dtype=float).tolist()
    return payload


def system_from_jsonable(payload: Dict[str, Any]) -> DescriptorSystem:
    """Rebuild a :class:`DescriptorSystem` from :func:`system_to_jsonable`.

    A ``format: "csr"`` payload reconstructs a sparse-backed system with the
    same canonical stamps — and therefore the same cache fingerprint — as
    the original.

    Raises
    ------
    SerializationError
        When the payload is not a well-formed system document.
    """
    if not isinstance(payload, dict):
        raise SerializationError(
            f"expected a system document (dict), got {type(payload).__name__}"
        )
    if payload.get("kind") != SYSTEM_KIND:
        raise SerializationError(
            f"expected kind {SYSTEM_KIND!r}, got {payload.get('kind')!r}"
        )
    fmt = payload.get("format")
    try:
        if fmt == "csr":
            e = _csr_from_jsonable(payload["e"], "E")
            a = _csr_from_jsonable(payload["a"], "A")
        elif fmt == "dense":
            e = np.asarray(payload["e"], dtype=float)
            a = np.asarray(payload["a"], dtype=float)
        else:
            raise SerializationError(
                f"unknown system format {fmt!r} (expected 'dense' or 'csr')"
            )
        b = np.asarray(payload["b"], dtype=float)
        c = np.asarray(payload["c"], dtype=float)
        d = np.asarray(payload["d"], dtype=float)
    except SerializationError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(
            f"malformed system payload: {type(error).__name__}: {error}"
        ) from error
    try:
        return DescriptorSystem(e, a, b, c, d)
    except Exception as error:  # dimension/validation errors -> typed
        raise SerializationError(
            f"system payload does not describe a valid descriptor system: "
            f"{type(error).__name__}: {error}"
        ) from error


def report_to_jsonable(report: PassivityReport) -> Dict[str, Any]:
    """Serialize a :class:`~repro.passivity.PassivityReport` to a dict.

    Steps and diagnostics are normalized to JSON primitives: NumPy arrays
    become nested lists, complex scalars become tagged pairs (see the module
    docstring); the schema-unified ``diagnostics["engine"]`` block travels
    as-is.
    """
    if not isinstance(report, PassivityReport):
        raise SerializationError(
            f"expected a PassivityReport, got {type(report).__name__}"
        )
    return {
        "kind": REPORT_KIND,
        "is_passive": bool(report.is_passive),
        "method": report.method,
        "failure_reason": report.failure_reason,
        "elapsed_seconds": float(report.elapsed_seconds),
        "steps": [
            {
                "name": step.name,
                "description": step.description,
                "passed": step.passed,
                "details": _plain(step.details),
            }
            for step in report.steps
        ],
        "diagnostics": _plain(report.diagnostics),
    }


def report_from_jsonable(payload: Dict[str, Any]) -> PassivityReport:
    """Rebuild a :class:`~repro.passivity.PassivityReport` from its dict form.

    Numeric content is preserved (complex tags are revived); diagnostics
    that were NumPy arrays return as plain lists.

    Raises
    ------
    SerializationError
        When the payload is not a well-formed report document.
    """
    if not isinstance(payload, dict):
        raise SerializationError(
            f"expected a report document (dict), got {type(payload).__name__}"
        )
    if payload.get("kind") != REPORT_KIND:
        raise SerializationError(
            f"expected kind {REPORT_KIND!r}, got {payload.get('kind')!r}"
        )
    try:
        report = PassivityReport(
            is_passive=bool(payload["is_passive"]),
            method=str(payload["method"]),
            failure_reason=payload.get("failure_reason"),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            diagnostics=_revive(payload.get("diagnostics", {})),
        )
        for step in payload.get("steps", []):
            report.steps.append(
                TestStep(
                    name=str(step["name"]),
                    description=str(step["description"]),
                    passed=step.get("passed"),
                    details=_revive(step.get("details", {})),
                )
            )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(
            f"malformed report payload: {type(error).__name__}: {error}"
        ) from error
    return report


def job_record_to_jsonable(
    status: Any, report: Optional[PassivityReport]
) -> Dict[str, Any]:
    """Serialize a terminal job's status snapshot plus report to a dict.

    The persistence form :class:`~repro.service.PassivityService` writes to
    its store so completed results survive a restart: the
    :class:`~repro.service.JobStatus` scheduling fields travel as-is and the
    report (when the job produced one) as its
    :func:`report_to_jsonable` document.
    """
    record = dict(status.to_jsonable())
    record["kind"] = JOB_RECORD_KIND
    record["report"] = report_to_jsonable(report) if report is not None else None
    return record


def job_record_from_jsonable(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Validate and revive a persisted job record.

    Returns the record as a plain dict with the ``"report"`` value replaced
    by a revived :class:`~repro.passivity.PassivityReport` (or ``None``).
    The service turns the dict into its internal terminal job records on
    startup.

    Raises
    ------
    SerializationError
        When the payload is not a well-formed job-record document.
    """
    if not isinstance(payload, dict):
        raise SerializationError(
            f"expected a job-record document (dict), got {type(payload).__name__}"
        )
    if payload.get("kind") != JOB_RECORD_KIND:
        raise SerializationError(
            f"expected kind {JOB_RECORD_KIND!r}, got {payload.get('kind')!r}"
        )
    record = dict(payload)
    for field in ("job_id", "state", "method", "fingerprint"):
        if not isinstance(record.get(field), str) or not record[field]:
            raise SerializationError(
                f"job record field {field!r} missing or not a string"
            )
    report_payload = record.get("report")
    record["report"] = (
        report_from_jsonable(report_payload) if report_payload is not None else None
    )
    return record


def to_jsonable(obj: Any) -> Dict[str, Any]:
    """Serialize a supported object (system or report) to a tagged dict."""
    if isinstance(obj, DescriptorSystem):
        return system_to_jsonable(obj)
    if isinstance(obj, PassivityReport):
        return report_to_jsonable(obj)
    raise SerializationError(
        f"no JSON-able form for {type(obj).__name__} (supported: "
        f"DescriptorSystem, PassivityReport)"
    )


def from_jsonable(payload: Dict[str, Any]) -> Any:
    """Rebuild a supported object from a tagged dict (dispatch on ``kind``)."""
    if not isinstance(payload, dict):
        raise SerializationError(
            f"expected a tagged document (dict), got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind == SYSTEM_KIND:
        return system_from_jsonable(payload)
    if kind == REPORT_KIND:
        return report_from_jsonable(payload)
    raise SerializationError(
        f"unknown document kind {kind!r} (supported: {SYSTEM_KIND!r}, "
        f"{REPORT_KIND!r})"
    )
