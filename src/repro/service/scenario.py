"""First-class *scenario* jobs: one submission, many streamed verdicts.

The ROADMAP's "millions of users" front door is not one check at a time —
it is one sweep submission fanning out into thousands of nearby per-corner
verdicts.  This module turns that workload into a first-class service
citizen:

* :class:`ScenarioSpec` describes a whole sweep — a multiplicative
  *corner family* of one base system (the incremental tier's canonical
  workload), an explicit *portfolio* of systems, or a *frequency sweep*
  partitioned into sampling bands — in one JSON-able document
  (:func:`scenario_to_jsonable` / :func:`scenario_from_jsonable`).
* :meth:`ScenarioSpec.expand` turns the spec into per-corner
  :class:`ScenarioCell` work items **server-side**; the service dispatches
  them through its existing priority queue (so dedup, micro-batching,
  shared-memory transport and the process pool all apply unchanged) with
  *incremental ancestor chaining*: the family root runs cold first, and
  every other corner warm-starts from it through the perturbation-aware
  incremental tier.
* Results are **pushed**, not polled: every terminal corner emits a
  ``corner`` event (verdict, violation bands, timing) followed by a
  ``progress`` event (done/total, ETA), and the scenario closes with a
  terminal ``summary`` (or ``cancelled``) event.  Events carry monotonic
  per-scenario ids, are retained in a bounded history for
  ``Last-Event-ID`` resume, and reach subscribers through bounded
  per-subscriber buffers with drop-to-snapshot backpressure
  (:class:`ScenarioSubscription`).

The HTTP front-end (:mod:`repro.service.http`) maps this onto Server-Sent
Events over stdlib chunked responses — ``POST /scenarios``,
``GET /scenarios/<id>/events`` — and the deterministic async/streaming
test harness (``tests/service/harness.py``) drives the same subscription
objects in-process, no sockets or sleeps required.
"""

from __future__ import annotations

import enum
import itertools
import json
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from repro.descriptor.system import DescriptorSystem
from repro.exceptions import DimensionError, SerializationError
from repro.passivity.result import PassivityReport
from repro.service.jobs import JobState
from repro.service.serialization import (
    _plain,
    _revive,
    system_from_jsonable,
    system_to_jsonable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.service import PassivityService

__all__ = [
    "ScenarioSpec",
    "ScenarioCell",
    "ScenarioState",
    "ScenarioStatus",
    "ScenarioEvent",
    "ScenarioSubscription",
    "ScenarioHandle",
    "Scenario",
    "scenario_to_jsonable",
    "scenario_from_jsonable",
    "format_sse_event",
    "extract_violations",
    "SCENARIO_KIND",
]

SCENARIO_KIND = "scenario"

#: Scenario families the expansion understands.
FAMILIES = ("corners", "portfolio", "frequency_sweep")

#: Default per-scenario bounded event history (``Last-Event-ID`` replay window).
DEFAULT_EVENT_HISTORY = 1024

#: Default bounded per-subscriber buffer (drop-to-snapshot beyond it).
DEFAULT_SUBSCRIBER_BUFFER = 256

#: Default bound on concurrent subscribers per scenario (503 + Retry-After
#: beyond it — the slow-consumer backpressure's admission-control sibling).
DEFAULT_MAX_SUBSCRIBERS = 64


# ----------------------------------------------------------------------
# Specification and expansion
# ----------------------------------------------------------------------
@dataclass
class ScenarioCell:
    """One server-side expanded work item of a scenario.

    Attributes
    ----------
    index / label:
        Position and human-readable name inside the scenario (``nominal``,
        ``corner-7``, ``band-3``...).
    system:
        The descriptor system this cell certifies.
    method / options:
        Forwarded to the engine exactly like a plain job submission.
    ancestor:
        Index of the cell whose completed system warm-starts this one
        through the incremental tier (``None`` for cold cells and roots).
    defer:
        True when the cell must not dispatch until its ancestor completed —
        the chaining that turns an N-corner sweep into one cold
        factorization plus N-1 certified updates.
    """

    index: int
    label: str
    system: DescriptorSystem
    method: str = "auto"
    options: Dict[str, Any] = field(default_factory=dict)
    ancestor: Optional[int] = None
    defer: bool = False


@dataclass
class ScenarioSpec:
    """Declarative description of one streaming scenario.

    Three families are understood:

    ``"corners"``
        ``n_corners`` multiplicative perturbation corners of ``system``
        (:func:`~repro.circuits.perturb_system` semantics: ``scale``,
        ``seed``, ``pattern``), the nominal system first.  The nominal cell
        is the family root; every corner chains off it incrementally.
    ``"portfolio"``
        An explicit list of ``systems`` checked independently.  When every
        member shares the five matrix shapes, the expansion picks a family
        root (:func:`~repro.engine.incremental.choose_family_root`) and
        chains the rest off it; otherwise all cells run cold.
    ``"frequency_sweep"``
        The ``sampling`` method applied to ``system`` over ``n_bands``
        logarithmically spaced bands of ``[omega_min, omega_max]``
        (``points_per_band`` grid points each) — per-band violation events
        stream out as the bands finish.

    ``method``/``options``/``priority``/``timeout`` apply to every expanded
    cell (the frequency sweep forces ``method="sampling"``).
    """

    family: str
    system: Optional[DescriptorSystem] = None
    systems: Optional[List[DescriptorSystem]] = None
    n_corners: int = 8
    scale: float = 2e-4
    seed: int = 0
    pattern: str = "a"
    omega_min: float = 1e-4
    omega_max: float = 1e4
    n_bands: int = 8
    points_per_band: int = 64
    method: str = "auto"
    options: Dict[str, Any] = field(default_factory=dict)
    priority: int = 0
    timeout: Optional[float] = None
    #: Opt-in: emit a per-cell ``trace`` event (the job's span tree) right
    #: after each ``corner`` event.  Off by default so existing consumers'
    #: pinned event sequences are unchanged.
    trace: bool = False

    def validate(self) -> None:
        """Raise :class:`~repro.exceptions.DimensionError` on a bad spec."""
        if self.family not in FAMILIES:
            raise DimensionError(
                f"unknown scenario family {self.family!r}; "
                f"expected one of {', '.join(FAMILIES)}"
            )
        if self.family == "portfolio":
            if not self.systems:
                raise DimensionError("a portfolio scenario needs 'systems'")
            for member in self.systems:
                if not isinstance(member, DescriptorSystem):
                    raise DimensionError(
                        "portfolio members must be DescriptorSystem instances"
                    )
        else:
            if not isinstance(self.system, DescriptorSystem):
                raise DimensionError(
                    f"a {self.family} scenario needs a base 'system'"
                )
        if self.family == "corners" and self.n_corners < 1:
            raise DimensionError("n_corners must be at least 1")
        if self.family == "frequency_sweep":
            if self.n_bands < 1:
                raise DimensionError("n_bands must be at least 1")
            if self.points_per_band < 2:
                raise DimensionError("points_per_band must be at least 2")
            if not 0 < self.omega_min < self.omega_max:
                raise DimensionError(
                    "the frequency sweep needs 0 < omega_min < omega_max"
                )

    @property
    def n_cells(self) -> int:
        """Number of cells :meth:`expand` will produce."""
        if self.family == "corners":
            return self.n_corners
        if self.family == "portfolio":
            return len(self.systems or [])
        return self.n_bands

    def expand(self) -> List[ScenarioCell]:
        """Expand the spec into its per-corner cells (server-side).

        Corner families come back nominal-first with every corner chained
        off cell 0 (``defer=True``); shape-uniform portfolios chain off the
        :func:`~repro.engine.incremental.choose_family_root` pick; frequency
        sweeps partition the band and force the ``sampling`` method.
        """
        self.validate()
        if self.family == "corners":
            from repro.circuits import corner_family

            systems = corner_family(
                self.system,
                self.n_corners,
                scale=self.scale,
                seed=self.seed,
                pattern=self.pattern,
            )
            cells = [
                ScenarioCell(0, "nominal", systems[0], self.method, dict(self.options))
            ]
            for index, corner in enumerate(systems[1:], start=1):
                cells.append(
                    ScenarioCell(
                        index,
                        f"corner-{index}",
                        corner,
                        self.method,
                        dict(self.options),
                        ancestor=0,
                        defer=True,
                    )
                )
            return cells
        if self.family == "portfolio":
            systems = list(self.systems)
            root = self._portfolio_root(systems)
            cells = []
            for index, member in enumerate(systems):
                chained = root is not None and index != root
                cells.append(
                    ScenarioCell(
                        index,
                        f"member-{index}",
                        member,
                        self.method,
                        dict(self.options),
                        ancestor=root if chained else None,
                        defer=chained,
                    )
                )
            if root is not None and root != 0:
                # The root dispatches first regardless of its position.
                cells.insert(0, cells.pop(root))
            return cells
        # frequency_sweep: log-spaced band edges, one sampling cell per band.
        edges = np.logspace(
            np.log10(self.omega_min), np.log10(self.omega_max), self.n_bands + 1
        )
        cells = []
        for index in range(self.n_bands):
            options = dict(self.options)
            options.update(
                omega_min=float(edges[index]),
                omega_max=float(edges[index + 1]),
                n_samples=int(self.points_per_band),
                include_zero=index == 0,
            )
            cells.append(
                ScenarioCell(
                    index,
                    f"band-{index}",
                    self.system,
                    "sampling",
                    options,
                )
            )
        return cells

    @staticmethod
    def _portfolio_root(systems: List[DescriptorSystem]) -> Optional[int]:
        """Family-root index for a shape-uniform portfolio, else ``None``."""
        if len(systems) < 2:
            return None
        shapes = {
            (
                tuple(member.e.shape),
                tuple(member.b.shape),
                tuple(member.c.shape),
                tuple(member.d.shape),
            )
            for member in systems
        }
        if len(shapes) != 1 or any(member.is_sparse for member in systems):
            return None
        from repro.engine.incremental import choose_family_root

        try:
            return choose_family_root(systems)
        except Exception:  # noqa: BLE001 - chaining is an optimization only
            return None


def scenario_to_jsonable(spec: ScenarioSpec) -> Dict[str, Any]:
    """Serialize a :class:`ScenarioSpec` to its JSON-able wire document.

    Base systems travel as :func:`~repro.service.system_to_jsonable`
    documents (dense or CSR — fingerprints survive), so a journaled
    scenario replays on byte-identical matrices.
    """
    if not isinstance(spec, ScenarioSpec):
        raise SerializationError(
            f"expected a ScenarioSpec, got {type(spec).__name__}"
        )
    spec.validate()
    document: Dict[str, Any] = {
        "kind": SCENARIO_KIND,
        "family": spec.family,
        "method": spec.method,
        "options": _plain(dict(spec.options)),
        "priority": spec.priority,
        "timeout": spec.timeout,
        "trace": bool(spec.trace),
    }
    if spec.family == "portfolio":
        document["systems"] = [system_to_jsonable(s) for s in spec.systems]
    else:
        document["system"] = system_to_jsonable(spec.system)
    if spec.family == "corners":
        document.update(
            n_corners=spec.n_corners,
            scale=spec.scale,
            seed=spec.seed,
            pattern=spec.pattern,
        )
    if spec.family == "frequency_sweep":
        document.update(
            omega_min=spec.omega_min,
            omega_max=spec.omega_max,
            n_bands=spec.n_bands,
            points_per_band=spec.points_per_band,
        )
    return document


def scenario_from_jsonable(payload: Dict[str, Any]) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from :func:`scenario_to_jsonable`.

    Raises
    ------
    SerializationError
        When the payload is not a well-formed scenario document.
    """
    if not isinstance(payload, dict):
        raise SerializationError(
            f"expected a scenario document (dict), got {type(payload).__name__}"
        )
    if payload.get("kind") != SCENARIO_KIND:
        raise SerializationError(
            f"expected kind {SCENARIO_KIND!r}, got {payload.get('kind')!r}"
        )
    family = payload.get("family")
    if family not in FAMILIES:
        raise SerializationError(
            f"unknown scenario family {family!r}; "
            f"expected one of {', '.join(FAMILIES)}"
        )
    options = _revive(payload.get("options") or {})
    if not isinstance(options, dict):
        raise SerializationError("scenario 'options' must be a JSON object")
    try:
        spec = ScenarioSpec(
            family=family,
            method=str(payload.get("method", "auto")),
            options=options,
            priority=int(payload.get("priority", 0)),
            timeout=(
                None
                if payload.get("timeout") is None
                else float(payload["timeout"])
            ),
            trace=bool(payload.get("trace", False)),
        )
        if family == "portfolio":
            members = payload.get("systems")
            if not isinstance(members, list) or not members:
                raise SerializationError(
                    "a portfolio scenario document needs a 'systems' list"
                )
            spec.systems = [system_from_jsonable(doc) for doc in members]
        else:
            spec.system = system_from_jsonable(payload.get("system"))
        if family == "corners":
            spec.n_corners = int(payload.get("n_corners", 8))
            spec.scale = float(payload.get("scale", 2e-4))
            spec.seed = int(payload.get("seed", 0))
            spec.pattern = str(payload.get("pattern", "a"))
        if family == "frequency_sweep":
            spec.omega_min = float(payload.get("omega_min", 1e-4))
            spec.omega_max = float(payload.get("omega_max", 1e4))
            spec.n_bands = int(payload.get("n_bands", 8))
            spec.points_per_band = int(payload.get("points_per_band", 64))
        spec.validate()
    except SerializationError:
        raise
    except Exception as error:  # noqa: BLE001 - malformed documents -> typed
        raise SerializationError(
            f"malformed scenario payload: {type(error).__name__}: {error}"
        ) from error
    return spec


# ----------------------------------------------------------------------
# Events and subscriptions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioEvent:
    """One pushed scenario event.

    ``event_id`` is the per-scenario monotonic id (``None`` for transient
    per-subscriber events — drop-recovery and resume-gap snapshots — which
    deliberately do not advance the client's ``Last-Event-ID``); ``event``
    is the taxonomy name (``corner`` / ``progress`` / ``snapshot`` /
    ``summary`` / ``cancelled``); ``data`` the JSON-able payload.
    """

    event_id: Optional[int]
    event: str
    data: Dict[str, Any]
    at: float = 0.0

    @property
    def terminal(self) -> bool:
        """True for the stream-closing events (``summary`` / ``cancelled``)."""
        return self.event in ("summary", "cancelled")


def format_sse_event(event: ScenarioEvent) -> bytes:
    """Render one event as a Server-Sent-Events frame (UTF-8 bytes).

    The wire shape the golden-transcript tests pin::

        id: 7\\n
        event: corner\\n
        data: {"index": 3, ...}\\n
        \\n

    Transient events (``event_id is None``) omit the ``id:`` line so they
    never advance the client's ``Last-Event-ID``.
    """
    lines = []
    if event.event_id is not None:
        lines.append(f"id: {event.event_id}")
    lines.append(f"event: {event.event}")
    lines.append("data: " + json.dumps(event.data, separators=(",", ":")))
    return ("\n".join(lines) + "\n\n").encode("utf-8")


class ScenarioSubscription:
    """Bounded per-subscriber event buffer with drop-to-snapshot backpressure.

    The service's loop thread pushes events; the consumer (an HTTP request
    thread, or the test harness's in-process client) pops them with
    :meth:`get`.  When the consumer falls behind and the buffer fills, the
    queued backlog is **dropped** (counted in ``dropped``) and the next
    delivered event is a transient ``snapshot`` carrying the full current
    scenario state — the consumer loses intermediate events, never
    correctness.  Terminal events are never dropped.
    """

    def __init__(self, scenario_id: str, buffer: int = DEFAULT_SUBSCRIBER_BUFFER) -> None:
        if buffer < 2:
            raise ValueError("subscriber buffer must hold at least 2 events")
        self.scenario_id = scenario_id
        self.buffer = int(buffer)
        self._queue: "queue.Queue[Optional[ScenarioEvent]]" = queue.Queue(
            maxsize=self.buffer
        )
        #: Events discarded from this subscriber's buffer (slow consumer).
        self.dropped = 0
        #: Set once the terminal event (or an unsubscribe) was enqueued.
        self.closed = False
        #: Highest numbered event id delivered into the buffer.
        self.last_event_id = 0

    # -- producer side (service loop thread) ---------------------------
    def _offer(self, event: ScenarioEvent) -> bool:
        """Enqueue one event; False when the buffer was full (nothing queued)."""
        if self.closed:
            return True
        try:
            self._queue.put_nowait(event)
        except queue.Full:
            return False
        if event.event_id is not None:
            self.last_event_id = event.event_id
        return True

    def _drop_backlog(self) -> int:
        """Discard every buffered event; returns the number dropped."""
        cleared = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is not None:
                cleared += 1
        self.dropped += cleared
        return cleared

    def _force(self, event: Optional[ScenarioEvent]) -> int:
        """Enqueue dropping backlog as needed (terminal events, sentinels)."""
        cleared = 0
        while True:
            try:
                self._queue.put_nowait(event)
                break
            except queue.Full:
                cleared += self._drop_backlog()
        if event is not None and event.event_id is not None:
            self.last_event_id = event.event_id
        return cleared

    def _close(self) -> None:
        """Terminate the subscription (idempotent): wake blocked consumers."""
        if self.closed:
            return
        self.closed = True
        self._force(None)

    # -- consumer side -------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Optional[ScenarioEvent]:
        """Pop the next event, blocking up to ``timeout`` seconds.

        Returns ``None`` on timeout *and* on end-of-stream; distinguish via
        :attr:`closed` (the HTTP front-end sends a heartbeat comment on
        timeout and closes the response on end-of-stream).
        """
        try:
            event = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        return event

    def events(self, timeout: Optional[float] = None):
        """Iterate events until the stream closes (terminal event included)."""
        while True:
            event = self.get(timeout=timeout)
            if event is None:
                if self.closed and self._queue.empty():
                    return
                if timeout is not None:
                    return
                continue
            yield event
            if event.terminal:
                return


# ----------------------------------------------------------------------
# Scenario state
# ----------------------------------------------------------------------
class ScenarioState(str, enum.Enum):
    """Lifecycle states of a scenario (``str`` mixin: JSON-friendly)."""

    RUNNING = "running"
    DONE = "done"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        """True once the scenario will emit no further events."""
        return self is not ScenarioState.RUNNING


@dataclass
class ScenarioStatus:
    """Immutable snapshot of one scenario's progress (JSON-able)."""

    scenario_id: str
    state: ScenarioState
    family: str
    n_cells: int
    n_done: int
    n_failed: int
    n_cancelled: int
    n_timed_out: int
    n_passive: int
    created_at: float
    finished_at: Optional[float]
    last_event_id: int
    subscribers: int
    cells: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def n_terminal(self) -> int:
        """Cells that reached a terminal state."""
        return self.n_done + self.n_failed + self.n_cancelled + self.n_timed_out

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-dict form of the snapshot for transport front-ends."""
        return {
            "scenario_id": self.scenario_id,
            "state": self.state.value,
            "family": self.family,
            "n_cells": self.n_cells,
            "n_done": self.n_done,
            "n_failed": self.n_failed,
            "n_cancelled": self.n_cancelled,
            "n_timed_out": self.n_timed_out,
            "n_passive": self.n_passive,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "last_event_id": self.last_event_id,
            "subscribers": self.subscribers,
            "cells": list(self.cells),
        }


@dataclass
class Scenario:
    """Service-internal record of one streaming scenario (loop thread only).

    Holds the expanded cell table, the bounded numbered-event history the
    ``Last-Event-ID`` resume replays from, the live subscriber list, and
    the deferred (held) corner jobs waiting for the family root.  All
    mutation happens on the service's event-loop thread; ``done_event`` is
    the only cross-thread signal.
    """

    scenario_id: str
    family: str
    n_cells: int
    priority: int = 0
    state: ScenarioState = ScenarioState.RUNNING
    created_at: float = 0.0
    started_monotonic: float = 0.0
    finished_at: Optional[float] = None
    #: cell index -> {"label", "job_id", "state", "is_passive", ...}.
    cells: List[Dict[str, Any]] = field(default_factory=list)
    #: Held corner jobs (service ``Job`` objects) awaiting the family root.
    deferred: List[Any] = field(default_factory=list)
    #: Index of the family-root cell whose completion releases ``deferred``.
    root_index: Optional[int] = None
    #: The root's completed system (the ancestor handed to chained cells).
    root_system: Optional[DescriptorSystem] = None
    #: The root system packed once into the shm arena (process transport).
    root_shipment: Optional[Any] = None
    n_done: int = 0
    n_failed: int = 0
    n_cancelled: int = 0
    n_timed_out: int = 0
    n_passive: int = 0
    #: Cells whose job reached a terminal state (counts suppressed ones).
    n_terminal: int = 0
    #: Opt-in per-cell ``trace`` events (mirrors ``ScenarioSpec.trace``).
    trace: bool = False
    events: deque = field(default_factory=lambda: deque(maxlen=DEFAULT_EVENT_HISTORY))
    next_event_id: Any = None
    last_event_id: int = 0
    subscribers: List[ScenarioSubscription] = field(default_factory=list)
    done_event: threading.Event = field(default_factory=threading.Event)

    def __post_init__(self) -> None:
        if self.next_event_id is None:
            self.next_event_id = itertools.count(1)

    def snapshot(self) -> ScenarioStatus:
        """Build the public :class:`ScenarioStatus` view of this record."""
        return ScenarioStatus(
            scenario_id=self.scenario_id,
            state=self.state,
            family=self.family,
            n_cells=self.n_cells,
            n_done=self.n_done,
            n_failed=self.n_failed,
            n_cancelled=self.n_cancelled,
            n_timed_out=self.n_timed_out,
            n_passive=self.n_passive,
            created_at=self.created_at,
            finished_at=self.finished_at,
            last_event_id=self.last_event_id,
            subscribers=len(self.subscribers),
            cells=[dict(cell) for cell in self.cells],
        )


class ScenarioHandle:
    """Client-side view of a submitted scenario.

    Returned by :meth:`~repro.service.PassivityService.submit_scenario`;
    wraps the scenario id together with the owning service so callers can
    poll progress, stream events, wait for the terminal summary and cancel
    without touching service internals.
    """

    def __init__(self, service: "PassivityService", scenario_id: str) -> None:
        self._service = service
        self.scenario_id = scenario_id

    def status(self) -> ScenarioStatus:
        """Current :class:`ScenarioStatus` snapshot."""
        return self._service.scenario_status(self.scenario_id)

    @property
    def done(self) -> bool:
        """True once the scenario reached a terminal state."""
        return self.status().state.is_terminal

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the scenario is terminal; True when it finished."""
        return self._service.wait_scenario(self.scenario_id, timeout=timeout)

    def subscribe(
        self,
        last_event_id: Optional[int] = None,
        buffer: int = DEFAULT_SUBSCRIBER_BUFFER,
    ) -> ScenarioSubscription:
        """Open a push subscription (the in-process form of the SSE feed)."""
        return self._service.subscribe_scenario(
            self.scenario_id, last_event_id=last_event_id, buffer=buffer
        )

    def cancel(self) -> bool:
        """Cancel the scenario; True when it transitioned to ``cancelled``."""
        return self._service.cancel_scenario(self.scenario_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ScenarioHandle({self.scenario_id!r})"


# ----------------------------------------------------------------------
# Verdict post-processing
# ----------------------------------------------------------------------
def extract_violations(report: Optional[PassivityReport]) -> List[Dict[str, Any]]:
    """Extract JSON-able violation bands from a passivity report.

    Two shapes are understood: Hamiltonian/SHH imaginary-axis crossings
    (step details carrying ``imaginary_eigenvalues`` — consecutive
    crossings pair into ``[omega_lo, omega_hi]`` bands, an odd tail opens
    an unbounded band), and sampling-grid minima (``min_eigenvalue`` /
    ``argmin_omega`` step details on non-passive reports).  Passive
    reports yield an empty list.
    """
    if report is None or report.is_passive:
        return []
    bands: List[Dict[str, Any]] = []
    for step in report.steps:
        details = step.details or {}
        crossings = details.get("imaginary_eigenvalues")
        if crossings is not None:
            omegas = sorted(
                {abs(float(np.imag(w)) or float(np.real(w))) for w in np.atleast_1d(crossings)}
            )
            for lo, hi in zip(omegas[0::2], omegas[1::2]):
                bands.append({"omega_lo": lo, "omega_hi": hi})
            if len(omegas) % 2:
                bands.append({"omega_lo": omegas[-1], "omega_hi": None})
        elif "min_eigenvalue" in details and details.get("passed") is not True:
            min_eig = details.get("min_eigenvalue")
            argmin = details.get("argmin_omega")
            if min_eig is not None and float(min_eig) < 0:
                bands.append(
                    {
                        "omega": None if argmin is None else float(argmin),
                        "min_eigenvalue": float(min_eig),
                    }
                )
    if not bands and report.failure_reason:
        bands.append({"reason": report.failure_reason})
    return bands


def cell_event_data(
    scenario: Scenario,
    cell: Dict[str, Any],
    state: JobState,
    report: Optional[PassivityReport],
    error: Optional[str],
) -> Dict[str, Any]:
    """Assemble the ``corner`` event payload for one terminal cell."""
    data: Dict[str, Any] = {
        "scenario_id": scenario.scenario_id,
        "index": cell["index"],
        "label": cell["label"],
        "job_id": cell["job_id"],
        "state": state.value,
        "is_passive": None if report is None else bool(report.is_passive),
        "violations": extract_violations(report),
        "error": error,
    }
    if report is not None:
        engine = report.diagnostics.get("engine", {})
        data["method"] = report.method
        data["seconds"] = float(report.elapsed_seconds)
        data["incremental"] = bool(engine.get("incremental"))
    return data


def trace_event_data(
    scenario: Scenario, cell: Dict[str, Any], spans: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Assemble the opt-in ``trace`` event payload for one terminal cell.

    ``spans`` is the job's span forest in the
    :meth:`~repro.obs.JobTrace.to_jsonable` wire shape — the same tree
    ``GET /jobs/<id>/trace`` serves.
    """
    return {
        "scenario_id": scenario.scenario_id,
        "index": cell["index"],
        "label": cell["label"],
        "job_id": cell["job_id"],
        "spans": spans,
    }


def progress_event_data(scenario: Scenario, elapsed: float) -> Dict[str, Any]:
    """Assemble the ``progress`` event payload (done/total, ETA)."""
    done = scenario.n_terminal
    total = scenario.n_cells
    eta: Optional[float] = None
    if 0 < done < total and elapsed > 0:
        eta = elapsed / done * (total - done)
    return {
        "scenario_id": scenario.scenario_id,
        "done": done,
        "total": total,
        "failed": scenario.n_failed,
        "cancelled": scenario.n_cancelled,
        "timed_out": scenario.n_timed_out,
        "passive": scenario.n_passive,
        "elapsed_seconds": elapsed,
        "eta_seconds": eta,
    }


def summary_event_data(scenario: Scenario, elapsed: float) -> Dict[str, Any]:
    """Assemble the terminal ``summary`` event payload."""
    return {
        "scenario_id": scenario.scenario_id,
        "state": scenario.state.value,
        "n_cells": scenario.n_cells,
        "n_done": scenario.n_done,
        "n_passive": scenario.n_passive,
        "n_nonpassive": scenario.n_done - scenario.n_passive,
        "n_failed": scenario.n_failed,
        "n_cancelled": scenario.n_cancelled,
        "n_timed_out": scenario.n_timed_out,
        "elapsed_seconds": elapsed,
    }


def snapshot_event_data(scenario: Scenario, dropped: int) -> Dict[str, Any]:
    """Assemble a ``snapshot`` payload (drop recovery / resume gap fill).

    ``through_id`` names the highest numbered event the snapshot covers:
    a consumer that resumes with it as ``Last-Event-ID`` misses nothing.
    """
    status = scenario.snapshot()
    return {
        "scenario_id": scenario.scenario_id,
        "dropped": dropped,
        "through_id": scenario.last_event_id,
        "scenario": status.to_jsonable(),
    }


#: Type of the injectable time source (the test harness passes a fake).
Clock = Callable[[], float]


def default_clock() -> float:
    """The service's default wall-clock time source (``time.time``)."""
    return time.time()
