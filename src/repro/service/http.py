"""Reference stdlib HTTP front-end for :class:`PassivityService`.

A minimal, dependency-free JSON-over-HTTP transport demonstrating how the
service sits behind a network boundary.  It is deliberately small — real
deployments would front the service with their framework of choice; the
value here is the frozen wire contract:

=========  ======================  ==========================================
Method     Path                    Meaning
=========  ======================  ==========================================
``POST``   ``/jobs``               Submit ``{"system": <system document>,
                                   "method", "priority", "timeout",
                                   "options"}``; responds ``202`` with
                                   ``{"job_id": ...}``; ``429`` (with
                                   ``Retry-After``) when the service's
                                   bounded queue is full.
``GET``    ``/jobs/<id>``          Status snapshot (``JobStatus`` fields).
``GET``    ``/jobs/<id>/result``   ``200`` with the report document when
                                   done; ``202`` with the status while
                                   pending; ``404`` unknown id; ``410``
                                   cancelled; ``500`` failed/timed out.
``GET``    ``/jobs/<id>/trace``    ``200`` with the job's pipeline trace
                                   (``{"job_id", "state", "spans"}`` — the
                                   span tree of queue wait, transport and
                                   worker-side stages) once terminal;
                                   ``202`` with the status while pending;
                                   ``404`` unknown id.
``DELETE`` ``/jobs/<id>``          Cancel; ``{"cancelled": true|false}``.
``POST``   ``/scenarios``          Submit a scenario document (a
                                   :func:`scenario_to_jsonable` spec, bare
                                   or wrapped as ``{"scenario": ...}``);
                                   responds ``202`` with
                                   ``{"scenario_id", "n_cells"}``; ``429``
                                   when the expansion does not fit the
                                   bounded queue.
``GET``    ``/scenarios/<id>``     Progress snapshot (``ScenarioStatus``).
``GET``    ``/scenarios/<id>/events``  Server-Sent Events stream of the
                                   scenario's ``corner`` / ``progress`` /
                                   ``snapshot`` / ``summary`` events
                                   (chunked ``text/event-stream``; resumes
                                   from ``Last-Event-ID`` header or
                                   ``?last_event_id=``; ``503`` with
                                   ``Retry-After`` at the subscriber
                                   limit; ``404`` when streaming is off).
``DELETE`` ``/scenarios/<id>``     Cancel; ``{"cancelled": true|false}``.
``GET``    ``/stats``              Service telemetry (``ServiceStats``),
                                   including per-stage latency quantiles
                                   under ``stages``.
``GET``    ``/metrics``            Prometheus text exposition (format
                                   0.0.4) of the process-wide metrics
                                   registry: per-stage latency histograms
                                   (``repro_stage_seconds``) plus service
                                   gauges; ``404`` when disabled
                                   (``metrics=False`` / ``--no-metrics``).
``GET``    ``/healthz``            Liveness probe: ``200`` with the
                                   :meth:`PassivityService.health` snapshot
                                   (executor heartbeat, queue depth,
                                   journal lag) while alive, ``503`` when
                                   the service is dead or its process pool
                                   stopped answering.
=========  ======================  ==========================================

System and report documents are the :mod:`repro.service.serialization`
forms.  Errors map the typed :mod:`repro.exceptions` service hierarchy onto
status codes, so clients never see a raw traceback for a bad id.

Run the reference server with ``python -m repro.service`` (see
:mod:`repro.service.__main__`) or embed it::

    from repro.service import PassivityService, serve

    with PassivityService(max_workers=4) as service:
        server = serve(service, host="127.0.0.1", port=8123)
        server.serve_forever()
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import (
    JobCancelledError,
    JobFailedError,
    JobNotReadyError,
    QueueFullError,
    ReproError,
    SerializationError,
    ServiceError,
    UnknownJobError,
    UnknownScenarioError,
)
from repro.obs.log import get_logger
from repro.service.scenario import format_sse_event
from repro.service.serialization import report_to_jsonable, system_from_jsonable
from repro.service.service import PassivityService

__all__ = ["PassivityHTTPServer", "PassivityRequestHandler", "serve"]


class PassivityHTTPServer(ThreadingHTTPServer):
    """Threading HTTP server bound to one :class:`PassivityService`.

    Each request runs on its own thread and talks to the (thread-safe)
    service; the server does not own the service's lifecycle — start and
    close the service around the server's ``serve_forever`` loop.
    """

    daemon_threads = True

    def __init__(
        self,
        service: PassivityService,
        address: Tuple[str, int] = ("127.0.0.1", 8123),
        sse: bool = True,
        metrics: bool = True,
    ) -> None:
        self.service = service
        #: Streaming switch: with it off, ``GET /scenarios/<id>/events``
        #: answers 404 and clients fall back to polling the snapshot.
        self.sse_enabled = bool(sse)
        #: Metrics switch: with it off, ``GET /metrics`` answers 404.
        self.metrics_enabled = bool(metrics)
        super().__init__(address, PassivityRequestHandler)


class PassivityRequestHandler(BaseHTTPRequestHandler):
    """Maps the HTTP wire contract onto the service API (see module docs)."""

    server_version = "repro-passivity-service/1.0"
    #: HTTP/1.1 so the SSE feed can use chunked transfer encoding (the
    #: stream's length is unknowable); plain endpoints still send
    #: Content-Length, so keep-alive semantics are unchanged.
    protocol_version = "HTTP/1.1"
    #: Seconds of event silence before the SSE feed writes a heartbeat
    #: comment (keeps NATs and proxies from reaping an idle stream).
    sse_heartbeat = 15.0
    #: Request-log verbosity alias (historical name): ``False`` (default)
    #: logs requests at DEBUG — invisible under the default INFO level —
    #: and ``True`` lifts them to INFO.
    verbose = False

    @property
    def service(self) -> PassivityService:
        """The service owned by the bound :class:`PassivityHTTPServer`."""
        return self.server.service

    def log_message(self, format: str, *args: Any) -> None:
        """Route per-request logging through the structured JSON logger.

        Replaces the stdlib handler's ad-hoc stderr lines with one
        ``http_request`` event on the ``repro.http`` logger.  The
        :attr:`verbose` class attribute keeps its historical meaning as an
        alias: ``True`` emits at INFO (visible by default), ``False``
        at DEBUG (visible under ``REPRO_LOG_LEVEL=DEBUG``).
        """
        logger = get_logger("repro.http")
        emit = logger.info if self.verbose else logger.debug
        emit(
            "http_request",
            client=self.address_string(),
            request=format % args,
        )

    # ------------------------------------------------------------------
    def _send_json(
        self,
        code: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """Write one JSON response (``extra_headers`` ride along verbatim)."""
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, code: int, error: Exception) -> None:
        """Write one JSON error response carrying the typed error name."""
        self._send_json(
            code, {"error": type(error).__name__, "message": str(error)}
        )

    def _read_json(self) -> Dict[str, Any]:
        """Parse the request body as a JSON object."""
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length) if length else b""
        try:
            document = json.loads(raw.decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SerializationError(f"request body is not valid JSON: {error}")
        if not isinstance(document, dict):
            raise SerializationError("request body must be a JSON object")
        return document

    def _route(self, collection: str) -> Optional[Tuple[str, str]]:
        """Split ``/<collection>/<id>[/tail]`` into ``(id, tail)``."""
        parts = [
            part for part in urlsplit(self.path).path.split("/") if part
        ]
        if len(parts) >= 2 and parts[0] == collection:
            return parts[1], "/".join(parts[2:])
        return None

    def _job_id(self) -> Optional[Tuple[str, str]]:
        """Split ``/jobs/<id>[/result]`` into ``(job_id, tail)``."""
        return self._route("jobs")

    def _last_event_id(self) -> Optional[int]:
        """SSE resume point: ``Last-Event-ID`` header or query parameter."""
        raw = self.headers.get("Last-Event-ID")
        if raw is None:
            values = parse_qs(urlsplit(self.path).query).get("last_event_id")
            raw = values[0] if values else None
        if raw is None:
            return None
        try:
            return int(raw)
        except ValueError:
            return None

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """``POST /jobs`` or ``POST /scenarios``: submit work."""
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/scenarios":
            self._submit_scenario()
            return
        if path != "/jobs":
            self._send_json(404, {"error": "NotFound", "message": self.path})
            return
        try:
            document = self._read_json()
            system = system_from_jsonable(document.get("system"))
            options = document.get("options") or {}
            if not isinstance(options, dict):
                raise SerializationError("'options' must be a JSON object")
            handle = self.service.submit(
                system,
                method=document.get("method", "auto"),
                priority=int(document.get("priority", 0)),
                timeout=document.get("timeout"),
                **options,
            )
        except QueueFullError as error:
            # Backpressure, not a client error: the bounded queue is at
            # capacity.  Clients should honour Retry-After and resubmit.
            self._send_json(
                429,
                {"error": type(error).__name__, "message": str(error)},
                extra_headers={"Retry-After": "1"},
            )
            return
        except (SerializationError, ReproError, TypeError, ValueError) as error:
            self._send_error_json(400, error)
            return
        self._send_json(202, {"job_id": handle.job_id})

    def _submit_scenario(self) -> None:
        """``POST /scenarios``: expand and queue a scenario document."""
        try:
            document = self._read_json()
            # Accept the spec document bare or under a "scenario" wrapper.
            spec = document.get("scenario", document)
            if not isinstance(spec, dict):
                raise SerializationError("'scenario' must be a JSON object")
            handle = self.service.submit_scenario(spec)
            status = handle.status()
        except QueueFullError as error:
            self._send_json(
                429,
                {"error": type(error).__name__, "message": str(error)},
                extra_headers={"Retry-After": "1"},
            )
            return
        except (SerializationError, ReproError, TypeError, ValueError) as error:
            self._send_error_json(400, error)
            return
        self._send_json(
            202,
            {
                "scenario_id": handle.scenario_id,
                "n_cells": status.n_cells,
                "events": f"/scenarios/{handle.scenario_id}/events",
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """``GET /jobs/<id>[/result]``, scenarios, ``/stats``, ``/healthz``."""
        path = urlsplit(self.path).path.rstrip("/")
        if path == "/healthz":
            # The lock-free service health snapshot: 200 while alive, 503
            # once the executor heartbeat is stale (or the service closed),
            # so orchestrators can restart a wedged instance.  The legacy
            # "ok" key is preserved inside the snapshot.
            health = self.service.health()
            self._send_json(200 if health.get("ok") else 503, health)
            return
        if path == "/stats":
            self._send_json(200, self.service.stats().to_jsonable())
            return
        if path == "/metrics":
            self._send_metrics()
            return
        scenario = self._route("scenarios")
        if scenario is not None:
            scenario_id, tail = scenario
            if tail == "events":
                self._stream_scenario_events(scenario_id)
            elif tail == "":
                try:
                    status = self.service.scenario_status(scenario_id)
                except UnknownScenarioError as error:
                    self._send_error_json(404, error)
                else:
                    self._send_json(200, status.to_jsonable())
            else:
                self._send_json(
                    404, {"error": "NotFound", "message": self.path}
                )
            return
        located = self._job_id()
        if located is None:
            self._send_json(404, {"error": "NotFound", "message": self.path})
            return
        job_id, tail = located
        try:
            if tail == "":
                self._send_json(200, self.service.status(job_id).to_jsonable())
            elif tail == "result":
                report = self.service.result(job_id, timeout=0.0)
                self._send_json(200, report_to_jsonable(report))
            elif tail == "trace":
                self._send_json(200, self.service.trace(job_id))
            else:
                self._send_json(404, {"error": "NotFound", "message": self.path})
        except UnknownJobError as error:
            self._send_error_json(404, error)
        except JobNotReadyError:
            # Poll-style contract: not an error, report progress instead.
            # The job can be evicted between result() and status() under a
            # small history bound; degrade to the typed 404 then.
            try:
                snapshot = self.service.status(job_id).to_jsonable()
            except UnknownJobError as error:
                self._send_error_json(404, error)
            else:
                self._send_json(202, snapshot)
        except JobCancelledError as error:
            self._send_error_json(410, error)
        except JobFailedError as error:
            self._send_error_json(500, error)

    def do_DELETE(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        """``DELETE /jobs/<id>`` or ``/scenarios/<id>``: cancel."""
        scenario = self._route("scenarios")
        if scenario is not None and scenario[1] == "":
            try:
                cancelled = self.service.cancel_scenario(scenario[0])
            except UnknownScenarioError as error:
                self._send_error_json(404, error)
                return
            self._send_json(
                200, {"scenario_id": scenario[0], "cancelled": cancelled}
            )
            return
        located = self._job_id()
        if located is None or located[1] != "":
            self._send_json(404, {"error": "NotFound", "message": self.path})
            return
        try:
            cancelled = self.service.cancel(located[0])
        except UnknownJobError as error:
            self._send_error_json(404, error)
            return
        self._send_json(200, {"job_id": located[0], "cancelled": cancelled})

    # ------------------------------------------------------------------
    # Metrics exposition
    # ------------------------------------------------------------------
    def _send_metrics(self) -> None:
        """``GET /metrics``: Prometheus text exposition (format 0.0.4)."""
        if not getattr(self.server, "metrics_enabled", True):
            self._send_json(
                404,
                {
                    "error": "NotFound",
                    "message": "metrics exposition is disabled (--metrics)",
                },
            )
            return
        body = self.service.metrics_text().encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # ------------------------------------------------------------------
    # Server-Sent Events
    # ------------------------------------------------------------------
    def _write_chunk(self, data: bytes) -> None:
        """Write one HTTP/1.1 chunk (empty ``data`` terminates the body)."""
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    def _stream_scenario_events(self, scenario_id: str) -> None:
        """``GET /scenarios/<id>/events``: push the scenario's SSE feed.

        The subscription is opened *before* the response status goes out,
        so a bad id is still a clean 404 and a saturated scenario a 503
        with ``Retry-After``.  The stream then writes one SSE frame per
        event (chunked — its length is unknowable), heartbeat comments
        across quiet stretches, and ends with the terminal event
        (``summary`` or ``cancelled``) followed by the closing chunk.  A
        consumer that reconnects with the last id it saw resumes without
        gaps or duplicates while the event ring still holds the window.
        """
        if not getattr(self.server, "sse_enabled", True):
            self._send_json(
                404,
                {
                    "error": "NotFound",
                    "message": "event streaming is disabled (--sse)",
                },
            )
            return
        try:
            subscription = self.service.subscribe_scenario(
                scenario_id, last_event_id=self._last_event_id()
            )
        except UnknownScenarioError as error:
            self._send_error_json(404, error)
            return
        except QueueFullError as error:
            self._send_json(
                503,
                {"error": type(error).__name__, "message": str(error)},
                extra_headers={"Retry-After": "1"},
            )
            return
        except ServiceError as error:
            self._send_error_json(503, error)
            return
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.send_header("Transfer-Encoding", "chunked")
            self.end_headers()
            # Client reconnect delay hint (standard SSE control line).
            self._write_chunk(b"retry: 1000\n\n")
            while True:
                event = subscription.get(timeout=self.sse_heartbeat)
                if event is None:
                    if subscription.closed:
                        break  # end of stream (terminal event delivered)
                    self._write_chunk(b": heartbeat\n\n")
                    continue
                self._write_chunk(format_sse_event(event))
                if event.terminal:
                    break
            self._write_chunk(b"")
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # consumer went away mid-stream; unsubscribe below
        finally:
            # A finished stream must not be reused for a next request: the
            # consumer-side SSE contract is one stream per connection.
            self.close_connection = True
            self.service.unsubscribe_scenario(scenario_id, subscription)


def serve(
    service: PassivityService,
    host: str = "127.0.0.1",
    port: int = 8123,
    sse: bool = True,
    metrics: bool = True,
) -> PassivityHTTPServer:
    """Bind a :class:`PassivityHTTPServer` to ``(host, port)`` and return it.

    The caller owns both lifecycles: call ``server.serve_forever()`` (and
    ``server.shutdown()``), and close the service when done.  Port 0 picks a
    free ephemeral port (``server.server_address`` reports it), which is how
    the integration tests run hermetically.  ``sse=False`` turns the
    ``GET /scenarios/<id>/events`` stream off (clients poll instead);
    ``metrics=False`` turns the ``GET /metrics`` exposition off.
    """
    service.start()
    return PassivityHTTPServer(service, (host, port), sse=sse, metrics=metrics)
