"""Durable write-ahead job journal of the passivity service.

:class:`JobJournal` is the crash-safety tier under
:class:`~repro.service.PassivityService`: every *accepted* submission is
appended to an fsynced JSONL file **before** it is acknowledged, and every
terminal transition is appended when it happens.  On construction the
journal replays the file, so a service that died hard — ``kill -9``, OOM,
power loss — can requeue exactly the accepted-but-unfinished jobs and lose
no work.  This upgrades the store's completed-job persistence (results
survive restarts) to full queue durability (pending work survives too).

File format
-----------
One JSON object per line (JSONL), three event shapes::

    {"event": "submitted", "job_id": ..., "system": <system document>,
     "method": ..., "options": {...}, "priority": 0, "timeout": null,
     "submitted_at": <unix time>}
    {"event": "started",  "job_id": ..., "at": <unix time>}
    {"event": "finished", "job_id": ..., "state": "done", "at": <unix time>}

The ``system`` document is the :func:`~repro.service.serialization.
system_to_jsonable` wire form (dense or CSR — fingerprints survive the
round trip), so a replayed job re-executes on byte-identical matrices.

Durability and tolerance
------------------------
* **Appends are fsynced** (one ``write`` + ``flush`` + ``os.fsync`` per
  event, disable with ``fsync=False`` for tests/benchmarks), so an
  acknowledged submission is on stable storage before the caller's
  ``submit()`` returns.
* **A torn tail is tolerated**: a crash mid-append leaves at most one
  partial final line, which replay silently drops (``n_truncated``).
  Undecodable *interior* lines are skipped and counted (``n_corrupt``) —
  a damaged journal degrades to replaying fewer jobs, never to a failed
  service start.
* **Terminal records are recorded at most once per job**:
  :meth:`record_finished` on an unknown or already-finished id is a no-op
  returning ``False``, so replayed jobs cannot double-append their
  terminal event.

Compaction
----------
Finished jobs leave dead lines behind.  :attr:`lag` counts them; when it
exceeds ``compact_threshold`` the journal rewrites itself (atomic
tmp-file + ``os.replace``) keeping only the pending ``submitted`` records.
``GET /healthz`` surfaces the lag so operators can see a journal that is
growing faster than it compacts.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.exceptions import JournalError
from repro.obs.trace import trace_span

__all__ = ["JobJournal"]

#: Default number of dead (compactable) lines tolerated before the journal
#: rewrites itself on the next terminal record.
DEFAULT_COMPACT_THRESHOLD = 256


class JobJournal:
    """Append-only, fsynced JSONL journal of service job lifecycles.

    Parameters
    ----------
    path:
        The journal file.  A directory is accepted and resolves to
        ``<dir>/journal.jsonl``; missing parents are created.  The file is
        replayed on construction — :meth:`pending` then lists every
        submitted-but-unfinished record.
    fsync:
        When true (default) every append is flushed and fsynced before
        returning — the durability the write-ahead contract requires.
        ``False`` trades the guarantee for speed (tests, benchmarks).
    compact_threshold:
        Dead-line budget: once :attr:`lag` exceeds it, the next
        :meth:`record_finished` triggers :meth:`compact`.  ``None``
        disables automatic compaction.

    Notes
    -----
    Thread-safe (one internal lock).  The journal is an *availability*
    component: appends after construction are best-effort from the
    service's point of view (the service swallows journal I/O errors
    rather than failing jobs), but construction on an unusable path raises
    :class:`~repro.exceptions.JournalError` so misconfiguration surfaces
    at startup, not at the first crash.
    """

    def __init__(
        self,
        path: "os.PathLike[str]",
        *,
        fsync: bool = True,
        compact_threshold: Optional[int] = DEFAULT_COMPACT_THRESHOLD,
    ) -> None:
        if compact_threshold is not None and compact_threshold < 1:
            raise JournalError(
                f"compact_threshold must be a positive count or None, "
                f"got {compact_threshold!r}"
            )
        path = Path(path)
        if path.is_dir():
            path = path / "journal.jsonl"
        self.path = path
        self.fsync = bool(fsync)
        self.compact_threshold = compact_threshold
        self._lock = threading.Lock()
        #: ``job_id -> submitted record`` for jobs with no terminal event,
        #: in submission order (dict preserves insertion order).
        self._pending: Dict[str, Dict[str, Any]] = {}
        #: Pending jobs that also have a ``started`` line on disk.
        self._started: set = set()
        #: Total journal lines currently on disk.
        self._lines = 0
        self.n_corrupt = 0
        self.n_truncated = 0
        self.n_appends = 0
        self.n_compactions = 0
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._replay()
            self._handle = open(self.path, "ab")
        except OSError as error:
            raise JournalError(
                f"cannot open job journal at {self.path}: {error}"
            ) from error
        self._closed = False

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def _replay(self) -> None:
        """Scan the file into the in-memory pending table (init only).

        Also repairs a torn tail so subsequent appends stay line-aligned:
        an unparsable final fragment (crash mid-append, never acknowledged)
        is truncated away, while a parsable final record that merely lost
        its newline is sealed with one — either way the next append starts
        on a fresh line instead of concatenating into the fragment.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return
        if not raw:
            return
        lines = raw.split(b"\n")
        # A file that does not end in a newline was torn mid-append: the
        # final fragment is parsed opportunistically (the payload may be
        # complete, only the newline missing) and dropped when it is not.
        for position, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            last = position == len(lines) - 1 and not raw.endswith(b"\n")
            try:
                record = json.loads(stripped.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("journal line is not a JSON object")
            except (ValueError, UnicodeDecodeError):
                if last:
                    self.n_truncated += 1
                    # Drop the fragment from disk: it was never fsynced to
                    # completion, so no caller was told it is durable.
                    with open(self.path, "r+b") as handle:
                        handle.truncate(len(raw) - len(lines[-1]))
                else:
                    self.n_corrupt += 1
                continue
            self._lines += 1
            self._apply(record)
        if not raw.endswith(b"\n") and self.n_truncated == 0:
            # Complete final record missing only its newline: seal it.
            with open(self.path, "ab") as handle:
                handle.write(b"\n")

    def _apply(self, record: Dict[str, Any]) -> None:
        """Fold one parsed journal record into the pending table."""
        event = record.get("event")
        job_id = record.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            self.n_corrupt += 1
            return
        if event == "submitted":
            self._pending[job_id] = record
        elif event == "started":
            if job_id in self._pending:
                self._started.add(job_id)
        elif event == "finished":
            self._pending.pop(job_id, None)
            self._started.discard(job_id)
        else:
            self.n_corrupt += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> List[Dict[str, Any]]:
        """Submitted records with no terminal event, in submission order."""
        with self._lock:
            return [dict(record) for record in self._pending.values()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def lag(self) -> int:
        """Dead journal lines a compaction would remove.

        Every line that is neither a pending job's ``submitted`` record nor
        a pending job's ``started`` marker is dead weight — the quantity
        ``GET /healthz`` reports as ``journal.lag``.
        """
        with self._lock:
            return self._lag_locked()

    def _lag_locked(self) -> int:
        live = len(self._pending) + len(self._started)
        return max(0, self._lines - live)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        # Caller holds the lock.  One write syscall per event keeps a torn
        # append confined to the final line.
        data = json.dumps(record).encode("utf-8") + b"\n"
        with trace_span("journal.fsync", fsync=self.fsync, bytes=len(data)):
            self._handle.write(data)
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
        self._lines += 1
        self.n_appends += 1

    def record_submitted(self, job_id: str, payload: Dict[str, Any]) -> None:
        """Journal one accepted submission (the write-ahead record).

        ``payload`` carries the replay ingredients — the system wire
        document, method, options, priority, timeout — and is stored
        verbatim under the ``submitted`` event.
        """
        record = dict(payload)
        record["event"] = "submitted"
        record["job_id"] = job_id
        record.setdefault("submitted_at", time.time())
        with self._lock:
            self._check_open()
            self._append(record)
            self._pending[job_id] = record

    def record_started(self, job_id: str) -> None:
        """Journal a job's transition to RUNNING (diagnostic marker)."""
        with self._lock:
            self._check_open()
            if job_id not in self._pending:
                return
            self._append({"event": "started", "job_id": job_id, "at": time.time()})
            self._started.add(job_id)

    def record_finished(self, job_id: str, state: str) -> bool:
        """Journal a job's terminal state; returns False for duplicates.

        Unknown or already-finished ids are no-ops, so a job can never
        acquire two terminal records — the invariant the replay acceptance
        test pins.  May trigger automatic compaction (see ``lag``).
        """
        with self._lock:
            self._check_open()
            if job_id not in self._pending:
                return False
            self._append(
                {
                    "event": "finished",
                    "job_id": job_id,
                    "state": str(state),
                    "at": time.time(),
                }
            )
            del self._pending[job_id]
            self._started.discard(job_id)
            if (
                self.compact_threshold is not None
                and self._lag_locked() >= self.compact_threshold
            ):
                self._compact_locked()
            return True

    # ------------------------------------------------------------------
    # Compaction / lifecycle
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Rewrite the journal keeping only pending ``submitted`` records.

        Atomic (tmp file + ``os.replace``), fsynced, and a no-op when the
        rewrite fails for I/O reasons — the old journal stays valid.
        """
        with self._lock:
            self._check_open()
            self._compact_locked()

    def _compact_locked(self) -> None:
        tmp = self.path.with_name(self.path.name + f".{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as handle:
                for record in self._pending.values():
                    handle.write(json.dumps(record).encode("utf-8") + b"\n")
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            new_handle = open(self.path, "ab")
        except OSError:
            # Best-effort: keep appending to the (larger but valid) file.
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        try:
            self._handle.close()
        except OSError:
            pass
        self._handle = new_handle
        self._lines = len(self._pending)
        self._started.clear()
        self.n_compactions += 1

    def _check_open(self) -> None:
        if self._closed:
            raise JournalError(f"journal {self.path} has been closed")

    def close(self) -> None:
        """Close the append handle (idempotent); the file stays on disk."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._handle.close()
            except OSError:
                pass

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobJournal(path={str(self.path)!r}, pending={len(self._pending)}, "
            f"lag={self._lag_locked()})"
        )
