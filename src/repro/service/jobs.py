"""Job records, states and handles of the passivity service.

A submission to :class:`~repro.service.PassivityService` becomes a
:class:`Job` — the service-internal record holding the system, the requested
method, the scheduling parameters and, once the job ran, its outcome.  The
caller never sees the record directly: ``submit()`` returns a
:class:`JobHandle` (a thin client-side view that can poll, wait, fetch and
cancel), and ``status()`` returns :class:`JobStatus` snapshots that are
plain data and safe to serialize.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.passivity.result import PassivityReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.descriptor.system import DescriptorSystem
    from repro.service.service import PassivityService

__all__ = ["JobState", "JobStatus", "JobHandle"]


class JobState(str, enum.Enum):
    """Lifecycle states of a service job.

    A job moves ``QUEUED -> RUNNING -> one of the terminal states``; a
    coalesced duplicate stays ``QUEUED`` until its primary finishes and then
    adopts the primary's terminal state.  The ``str`` mixin makes the states
    JSON-friendly (``state.value`` is the wire form).
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"

    @property
    def is_terminal(self) -> bool:
        """True when the job will never change state again."""
        return self in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.TIMED_OUT,
        )


@dataclass
class JobStatus:
    """Immutable snapshot of one job's scheduling state.

    Attributes
    ----------
    job_id:
        The service-assigned identifier.
    state:
        Current :class:`JobState`.
    method:
        The requested method name (``"auto"`` before dispatch; the resolved
        method is recorded on the report's engine diagnostics).
    priority:
        Scheduling priority (lower runs first).
    fingerprint:
        The system's cache fingerprint — jobs sharing it share
        decompositions (and, with deduplication on, the whole execution).
    deduplicated:
        True when this job was coalesced onto an identical in-flight job and
        never executed on its own.
    submitted_at / started_at / finished_at:
        Unix timestamps; ``None`` until the corresponding transition.
    retries:
        Times the job was re-queued after its process-pool dispatch died
        with the pool (0 for the common case; bounded by the service's
        ``max_retries`` budget).
    error:
        Failure description for ``FAILED`` / ``TIMED_OUT`` / ``CANCELLED``
        jobs, ``None`` otherwise.
    """

    job_id: str
    state: JobState
    method: str
    priority: int
    fingerprint: str
    deduplicated: bool = False
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    retries: int = 0
    error: Optional[str] = None

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-dict form of the snapshot for transport front-ends."""
        return {
            "job_id": self.job_id,
            "state": self.state.value,
            "method": self.method,
            "priority": self.priority,
            "fingerprint": self.fingerprint,
            "deduplicated": self.deduplicated,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "retries": self.retries,
            "error": self.error,
        }


@dataclass
class Job:
    """Service-internal record of one submission (not part of the public API).

    All mutation happens on the service's event-loop thread; the
    ``done_event`` is the only cross-thread signal (set exactly once, when
    the job reaches a terminal state).  Terminal jobs rehydrated from a
    persistent store carry ``system=None`` — they exist only to serve
    ``status()``/``result()`` polling and never run.
    """

    job_id: str
    system: Optional["DescriptorSystem"]
    method: str
    options: Dict[str, Any]
    priority: int
    timeout: Optional[float]
    fingerprint: str
    key: Tuple[str, str, str]
    seq: int
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    report: Optional[PassivityReport] = None
    error: Optional[str] = None
    coalesced_into: Optional[str] = None
    followers: List[str] = field(default_factory=list)
    #: Re-queues consumed from the broken-pool retry budget.
    retries: int = 0
    #: Set when the job survived a failed batch dispatch: it must be
    #: re-dispatched as a singleton, never drafted into another batch.
    no_batch: bool = False
    #: Owning scenario id and cell index for scenario-expanded cells
    #: (``None`` for plain submissions).  Scenario cells bypass dedup
    #: coalescing so every cell resolves through the scenario hooks.
    scenario_id: Optional[str] = None
    cell_index: Optional[int] = None
    #: Explicit warm-start ancestor (the scenario family root's system),
    #: taking precedence over the service's family-latest tracking.
    ancestor_system: Optional["DescriptorSystem"] = None
    #: True while the cell is registered but deliberately *not* queued —
    #: deferred corners waiting for their family root to complete.
    held: bool = False
    #: The job's pipeline trace: the :meth:`~repro.obs.JobTrace.to_jsonable`
    #: span forest (queue wait, transport, worker-side stages), assembled by
    #: the dispatching worker and served by ``GET /jobs/<id>/trace``.
    trace: Optional[List[Dict[str, Any]]] = None
    done_event: threading.Event = field(default_factory=threading.Event)

    def snapshot(self) -> JobStatus:
        """Build the public :class:`JobStatus` view of this record."""
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            method=self.method,
            priority=self.priority,
            fingerprint=self.fingerprint,
            deduplicated=self.coalesced_into is not None,
            submitted_at=self.submitted_at,
            started_at=self.started_at,
            finished_at=self.finished_at,
            retries=self.retries,
            error=self.error,
        )


class JobHandle:
    """Client-side view of a submitted job.

    Returned by :meth:`~repro.service.PassivityService.submit`; wraps the job
    id together with the owning service so callers can poll, block, fetch the
    report and cancel without holding a reference to the internal record.
    """

    def __init__(self, service: "PassivityService", job_id: str) -> None:
        self._service = service
        self.job_id = job_id

    def status(self) -> JobStatus:
        """Current :class:`JobStatus` snapshot of the job."""
        return self._service.status(self.job_id)

    @property
    def done(self) -> bool:
        """True when the job reached a terminal state."""
        return self.status().state.is_terminal

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; True when it finished in time."""
        return self._service.wait(self.job_id, timeout=timeout)

    def result(self, timeout: Optional[float] = None) -> PassivityReport:
        """Block until the job finishes and return its report.

        Unlike the poll-style :meth:`PassivityService.result` (whose default
        is non-blocking), the handle waits: ``timeout=None`` waits forever.

        Raises
        ------
        JobNotReadyError
            When ``timeout`` expires before the job finishes.
        JobCancelledError
            When the job was cancelled.
        JobFailedError
            When the job raised or timed out on the service side.
        """
        return self._service.result(self.job_id, timeout=timeout)

    def cancel(self) -> bool:
        """Cancel the job if it has not started; True when it was cancelled."""
        return self._service.cancel(self.job_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobHandle({self.job_id!r})"
