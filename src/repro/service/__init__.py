"""Serving layer: an async job-queue front-end over the passivity engine.

The package turns the batch-oriented engine into a long-lived service for
heavy concurrent traffic:

* :mod:`repro.service.service` — :class:`PassivityService`, the asyncio
  job queue: ``submit(system, method="auto") -> JobHandle``, poll-style
  ``status()`` / ``result()`` / ``stats()``, priorities, per-job timeouts,
  cancellation, and fingerprint-level deduplication of identical concurrent
  submissions through the engine's shared decomposition cache,
* :mod:`repro.service.jobs` — :class:`JobHandle`, :class:`JobStatus` and
  the :class:`JobState` lifecycle,
* :mod:`repro.service.scenario` — first-class streaming sweep jobs:
  ``submit_scenario(ScenarioSpec(...)) -> ScenarioHandle`` expands a
  corner family, portfolio or frequency sweep server-side, chains the
  corners to their family root through the incremental tier, and *pushes*
  per-corner verdicts, progress/ETA and the terminal summary to
  subscribers (in-process :class:`ScenarioSubscription` queues, or the
  ``GET /scenarios/<id>/events`` Server-Sent-Events feed) with bounded
  buffers, drop-to-snapshot backpressure and ``Last-Event-ID`` resume,
* :mod:`repro.service.journal` — :class:`JobJournal`, the fsynced
  write-ahead journal that makes accepted-but-unfinished work survive a
  ``kill -9`` (the service replays it on restart),
* :mod:`repro.service.serialization` — lossless JSON-able wire forms of
  dense and sparse :class:`~repro.DescriptorSystem` objects and
  :class:`~repro.PassivityReport` results,
* :mod:`repro.service.http` — the reference stdlib JSON-over-HTTP
  front-end (``python -m repro.service``).

With a :class:`~repro.store.DecompositionStore` attached
(``PassivityService(store=...)``) the service gains restart persistence of
completed results and, under ``executor="process"``, a process-pool mode
whose workers share decompositions fleet-wide through the on-disk L2 tier;
``max_queue`` bounds the backlog and surfaces overflow as
:class:`~repro.exceptions.QueueFullError` (HTTP ``429``).

See ``docs/architecture.md`` for where the service sits in the stack and
``docs/api.md`` for the frozen public API.
"""

from repro.service.jobs import JobHandle, JobState, JobStatus
from repro.service.journal import JobJournal
from repro.service.scenario import (
    ScenarioEvent,
    ScenarioHandle,
    ScenarioSpec,
    ScenarioState,
    ScenarioStatus,
    ScenarioSubscription,
    format_sse_event,
    scenario_from_jsonable,
    scenario_to_jsonable,
)
from repro.service.serialization import (
    from_jsonable,
    job_record_from_jsonable,
    job_record_to_jsonable,
    report_from_jsonable,
    report_to_jsonable,
    system_from_jsonable,
    system_to_jsonable,
    to_jsonable,
)
from repro.service.service import PassivityService, ServiceStats
from repro.service.http import PassivityHTTPServer, PassivityRequestHandler, serve

__all__ = [
    "PassivityService",
    "ServiceStats",
    "JobJournal",
    "JobHandle",
    "JobState",
    "JobStatus",
    "ScenarioSpec",
    "ScenarioHandle",
    "ScenarioState",
    "ScenarioStatus",
    "ScenarioSubscription",
    "ScenarioEvent",
    "scenario_to_jsonable",
    "scenario_from_jsonable",
    "format_sse_event",
    "system_to_jsonable",
    "system_from_jsonable",
    "report_to_jsonable",
    "report_from_jsonable",
    "job_record_to_jsonable",
    "job_record_from_jsonable",
    "to_jsonable",
    "from_jsonable",
    "PassivityHTTPServer",
    "PassivityRequestHandler",
    "serve",
]
